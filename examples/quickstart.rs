//! Quickstart: build a social graph, run the actual multi-threaded store,
//! post a few events and read a feed, then simulate a day of traffic and
//! compare DynaSoRe against the Random baseline.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use dynasore::prelude::*;

fn main() -> Result<(), Error> {
    // ── 1. A small social world ────────────────────────────────────────────
    let users = 2_000;
    let graph = SocialGraph::generate(GraphPreset::TwitterLike, users, 42)?;
    println!(
        "social graph: {} users, {} follow links",
        graph.user_count(),
        graph.edge_count()
    );

    // ── 2. The live store: threads, channels, persistent backing ──────────
    let topology = Topology::tree(2, 2, 5, 1)?;
    let mut cluster = Cluster::spawn(&graph, topology.clone(), StoreConfig::default())?;

    let author = UserId::new(0);
    cluster.write(author, b"hello, social world!".to_vec())?;
    cluster.write(author, b"second post".to_vec())?;

    if let Some(&reader) = graph.followers(author).first() {
        let feed = cluster.read_feed(reader)?;
        println!(
            "user {reader} follows {author}; her feed has {} events, newest: {:?}",
            feed.len(),
            feed.first()
                .map(|e| String::from_utf8_lossy(e.payload()).into_owned())
        );
    }
    let stats = cluster.stats();
    println!(
        "store stats: {} cache hits, {} misses, {} cached views",
        stats.cache_hits, stats.cache_misses, stats.cached_views
    );
    cluster.shutdown().unwrap();

    // ── 3. The simulator: one day of traffic, DynaSoRe vs Random ──────────
    let budget = MemoryBudget::with_extra_percent(users, 30);

    let random = StaticPlacement::random(&graph, &topology, 7)?;
    let trace = SyntheticTraceGenerator::paper_defaults(&graph, 1, 7)?;
    let random_report = Simulation::new(topology.clone(), random, &graph).run(trace)?;

    let dynasore = DynaSoReEngine::builder()
        .topology(topology.clone())
        .budget(budget)
        .initial_placement(InitialPlacement::HierarchicalMetis { seed: 7 })
        .build(&graph)?;
    let trace = SyntheticTraceGenerator::paper_defaults(&graph, 1, 7)?;
    let dynasore_report = Simulation::new(topology, dynasore, &graph).run(trace)?;

    println!(
        "top-switch traffic: random = {} units, dynasore = {} units ({:.0}% reduction)",
        random_report.top_switch_total(),
        dynasore_report.top_switch_total(),
        100.0 * (1.0 - dynasore_report.normalized_top_traffic(&random_report))
    );
    Ok(())
}
