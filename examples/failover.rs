//! Rack failure during a social-feed workload: the headline scenario of the
//! cluster-dynamics subsystem. A day of synthetic feed traffic runs over the
//! paper's tree while a whole rack crashes mid-morning and returns in the
//! evening. DynaSoRe re-creates every lost master from the durable tier
//! (§3.3 makes cache servers disposable) and keeps serving — the run prints
//! the availability, the recovery traffic the failure cost, and how the
//! placement absorbed the outage.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example failover
//! ```

use dynasore::prelude::*;
use dynasore::types::{ClusterEvent, RackId, TimedClusterEvent};

fn main() -> Result<(), Error> {
    let users = 2_000;
    let seed = 42;
    let graph = SocialGraph::generate(GraphPreset::FacebookLike, users, seed)?;
    let topology = Topology::tree(3, 3, 6, 1)?; // 9 racks, 45 servers.

    let engine = DynaSoReEngine::builder()
        .topology(topology.clone())
        .budget(MemoryBudget::with_extra_percent(users, 40))
        .initial_placement(InitialPlacement::HierarchicalMetis { seed })
        .build(&graph)?;

    // One simulated day of feed traffic; rack 0 dies at 08:00 and is
    // repaired at 18:00.
    let trace = SyntheticTraceGenerator::paper_defaults(&graph, 1, seed)?;
    let failure_schedule = vec![
        TimedClusterEvent {
            time: SimTime::from_hours(8),
            event: ClusterEvent::RackDown {
                rack: RackId::new(0),
            },
        },
        TimedClusterEvent {
            time: SimTime::from_hours(18),
            event: ClusterEvent::RackUp {
                rack: RackId::new(0),
            },
        },
    ];

    let mut sim = Simulation::new(topology, engine, &graph).with_cluster_events(failure_schedule);
    let report = sim.run(trace)?;

    println!("rack failure during one day of feed traffic ({users} users):");
    println!(
        "  requests executed      : {} reads, {} writes",
        report.read_count(),
        report.write_count()
    );
    println!(
        "  availability           : {:.4}% ({} of {} read targets unreachable)",
        100.0 * report.availability(),
        report.unreachable_reads(),
        report.reliability().read_targets
    );
    println!(
        "  recovery traffic       : {} persistent-tier messages to re-create lost masters",
        report.recovery_messages()
    );
    println!(
        "  top-switch traffic     : {} units ({} application / {} protocol)",
        report.top_switch_total(),
        report.top_switch_traffic().application,
        report.top_switch_traffic().protocol
    );
    println!(
        "  memory at end of run   : {} views in {} slots ({:.1}% full)",
        report.memory_usage().used_slots,
        report.memory_usage().capacity_slots,
        100.0 * report.memory_usage().occupancy()
    );

    assert!(
        report.recovery_messages() > 0,
        "losing a rack must cost recovery traffic"
    );
    assert_eq!(
        report.availability(),
        1.0,
        "every lost master should be re-created before it is read"
    );
    println!("the store survived a rack outage with 100% availability");
    Ok(())
}
