//! Social-feed workload walkthrough: the scenario the paper's introduction
//! motivates. A Facebook-like friendship graph is served by the live store;
//! active users post status updates while their friends poll their feeds,
//! and we watch DynaSoRe replicate the hottest views and keep feed reads
//! cheap.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example social_feed
//! ```

use dynasore::prelude::*;

fn main() -> Result<(), Error> {
    let users = 1_500;
    let graph = SocialGraph::generate(GraphPreset::FacebookLike, users, 11)?;
    let topology = Topology::tree(2, 3, 4, 1)?;
    let mut cluster = Cluster::spawn(
        &graph,
        topology,
        StoreConfig {
            extra_memory_percent: 50,
            placement: InitialPlacement::HierarchicalMetis { seed: 11 },
            seed: 11,
        },
    )?;

    // The most-followed users are the celebrities of this small world.
    let mut by_followers: Vec<UserId> = graph.users().collect();
    by_followers.sort_by_key(|&u| std::cmp::Reverse(graph.followers(u).len()));
    let celebrities: Vec<UserId> = by_followers.into_iter().take(5).collect();

    // Celebrities post, everyone else refreshes their feed repeatedly.
    for round in 0..20u32 {
        for &celebrity in &celebrities {
            cluster.write(celebrity, format!("status update #{round}").into_bytes())?;
        }
        for &celebrity in &celebrities {
            for &fan in graph.followers(celebrity).iter().take(40) {
                let _ = cluster.read_feed(fan)?;
            }
        }
    }

    println!("celebrity view replication after 20 rounds of activity:");
    for &celebrity in &celebrities {
        println!(
            "  {celebrity}: {} followers → {} replicas",
            graph.followers(celebrity).len(),
            cluster.replica_count(celebrity)
        );
    }

    let stats = cluster.stats();
    let total_reads = stats.cache_hits + stats.cache_misses;
    println!(
        "served {} view reads: {:.1}% from cache ({} misses filled from the persistent store)",
        total_reads,
        100.0 * stats.cache_hits as f64 / total_reads.max(1) as f64,
        stats.cache_misses
    );
    println!(
        "persistent store saw {} writes and {} reads",
        stats.persistent_writes, stats.persistent_reads
    );

    cluster.shutdown().unwrap();
    Ok(())
}
