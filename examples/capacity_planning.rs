//! Capacity planning: how much extra memory is worth buying?
//!
//! The paper's headline result (Figure 3) is that DynaSoRe turns a modest
//! memory overhead into a large reduction of core-network traffic. This
//! example sweeps the extra-memory budget on a scaled-down cluster and
//! prints the normalised top-switch traffic of every strategy, which is the
//! table an operator would look at when sizing a deployment.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example capacity_planning
//! ```

use dynasore::prelude::*;

fn run<E: PlacementEngine>(
    topology: &Topology,
    engine: E,
    graph: &SocialGraph,
    days: u64,
) -> Result<SimReport, Error> {
    let trace = SyntheticTraceGenerator::paper_defaults(graph, days, 5)?;
    Simulation::new(topology.clone(), engine, graph).run(trace)
}

fn main() -> Result<(), Error> {
    let users = 2_000;
    let days = 2;
    let graph = SocialGraph::generate(GraphPreset::TwitterLike, users, 5)?;
    let topology = Topology::tree(3, 3, 4, 1)?;

    // The normalisation baseline: static random placement.
    let random = StaticPlacement::random(&graph, &topology, 5)?;
    let random_report = run(&topology, random, &graph, days)?;
    println!(
        "baseline (random placement): {} top-switch units over {days} day(s)",
        random_report.top_switch_total()
    );
    println!();
    println!(
        "{:>12} {:>10} {:>22} {:>12}",
        "extra memory", "SPAR", "DynaSoRe (from hMETIS)", "mem used"
    );

    for extra in [0u32, 30, 50, 100, 150] {
        let budget = MemoryBudget::with_extra_percent(users, extra);

        let spar = SparEngine::new(&graph, &topology, budget, 5)?;
        let spar_report = run(&topology, spar, &graph, days)?;

        let dynasore = DynaSoReEngine::builder()
            .topology(topology.clone())
            .budget(budget)
            .initial_placement(InitialPlacement::HierarchicalMetis { seed: 5 })
            .build(&graph)?;
        let dynasore_report = run(&topology, dynasore, &graph, days)?;

        println!(
            "{:>11}% {:>10.3} {:>22.3} {:>11.0}%",
            extra,
            spar_report.normalized_top_traffic(&random_report),
            dynasore_report.normalized_top_traffic(&random_report),
            100.0 * dynasore_report.memory_usage().occupancy(),
        );
    }

    println!();
    println!("traffic is normalised to the random baseline (lower is better).");
    Ok(())
}
