//! Flash-event walkthrough (§4.6 of the paper): a user suddenly gains 100
//! followers, DynaSoRe replicates her view near the new readers, and evicts
//! the extra replicas once the spike is over.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example flash_event
//! ```

use dynasore::prelude::*;
use dynasore::workload::TimedMutation;

fn main() -> Result<(), Error> {
    let users = 2_000;
    let graph = SocialGraph::generate(GraphPreset::FacebookLike, users, 21)?;
    let topology = Topology::tree(3, 3, 4, 1)?;
    let budget = MemoryBudget::with_extra_percent(users, 30);

    // The flash event: user 42 gains 100 random followers at day 2 and loses
    // them at day 7, exactly as in the paper.
    let target = UserId::new(42);
    let plan = FlashEventPlan::paper_defaults(&graph, target, 21)?;
    let mutations: Vec<TimedMutation> = plan.mutations();

    let engine = DynaSoReEngine::builder()
        .topology(topology.clone())
        .budget(budget)
        .initial_placement(InitialPlacement::HierarchicalMetis { seed: 21 })
        .build(&graph)?;

    let trace = SyntheticTraceGenerator::paper_defaults(&graph, 10, 21)?;
    let mut sim = Simulation::new(topology, engine, &graph).with_mutations(mutations);

    // Probe the replica count of the target view every 6 simulated hours.
    let mut series: Vec<(SimTime, usize)> = Vec::new();
    let report = sim.run_with_probe(trace, 6 * 3_600, |time, engine, _graph| {
        series.push((time, engine.replica_count(target)));
    })?;

    println!("flash event for {target}: +100 followers at day 2, removed at day 7");
    println!("{:>10} {:>9}", "time", "replicas");
    for (time, replicas) in &series {
        println!("{:>10} {:>9}", time.to_string(), replicas);
    }

    let during = series
        .iter()
        .filter(|(t, _)| *t >= plan.start() && *t < plan.end())
        .map(|&(_, r)| r)
        .max()
        .unwrap_or(1);
    let after = series.last().map(|&(_, r)| r).unwrap_or(1);
    println!(
        "peak replication during the spike: {during}; replicas after the spike ended: {after}"
    );
    println!(
        "simulated {} reads / {} writes, top-switch traffic {} units",
        report.read_count(),
        report.write_count(),
        report.top_switch_total()
    );
    Ok(())
}
