//! Vendored, offline-compatible subset of the `parking_lot` API.
//!
//! Wraps the standard-library locks but exposes `parking_lot`'s ergonomics:
//! `lock()`, `read()` and `write()` return guards directly (no
//! `Result`/poisoning). A poisoned std lock is recovered transparently — the
//! data is still protected, and DynaSoRe's lock-held sections don't panic
//! mid-update in normal operation.
//!
//! ```
//! use parking_lot::{Mutex, RwLock};
//!
//! let m = Mutex::new(1);
//! *m.lock() += 1;
//! assert_eq!(*m.lock(), 2);
//!
//! let l = RwLock::new(vec![1, 2]);
//! l.write().push(3);
//! assert_eq!(l.read().len(), 3);
//! ```

#![forbid(unsafe_code)]

use std::sync;

/// A mutual-exclusion lock whose `lock` returns the guard directly.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// RAII guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// A reader-writer lock whose `read`/`write` return guards directly.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// RAII read guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// RAII write guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock protecting `value`.
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquires exclusive write access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_round_trip() {
        let m = Arc::new(Mutex::new(0u32));
        let clones: Vec<_> = (0..4)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for c in clones {
            c.join().unwrap();
        }
        assert_eq!(*m.lock(), 4000);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(5);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(*a + *b, 10);
        }
        *l.write() = 7;
        assert_eq!(*l.read(), 7);
        assert_eq!(l.into_inner(), 7);
    }
}
