//! Vendored, offline-compatible subset of the `proptest` API.
//!
//! Supports the surface used by `tests/property_invariants.rs`: the
//! [`proptest!`] macro with `#![proptest_config(...)]`, range and tuple
//! strategies, [`collection::vec`], [`bool::ANY`], [`prop_assert!`] and
//! [`prop_assert_eq!`]. Cases are generated from a deterministic per-case
//! seed; there is **no shrinking** — on failure the macro panics with the
//! case number so the run can be reproduced.

#![forbid(unsafe_code)]

use std::fmt;
use std::ops::Range;

/// Runner configuration, mirroring `proptest::test_runner::Config`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Error produced by a failing `prop_assert!`.
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Deterministic per-case random source (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a source whose stream is fully determined by `seed`.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Returns the next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// A source of random values of one type.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = (rng.next_u64() as u128) % span;
                (self.start as i128 + draw as i128) as $t
            }
        }
    )*};
}

int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng))
    }
}

pub mod bool {
    //! Boolean strategies.

    use super::{Strategy, TestRng};

    /// Strategy producing `true` or `false` with equal probability.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// The unbiased boolean strategy.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy producing a `Vec` of values with a length in a range.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Produces vectors whose elements come from `element` and whose length
    /// is uniform in `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.size.clone().sample(rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod prelude {
    //! One-stop import mirroring `proptest::prelude`.
    pub use crate::{
        prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy, TestCaseError,
    };
}

/// Asserts a condition inside a property, failing the current case (not the
/// whole process) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: `{:?}` == `{:?}`",
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)*);
    }};
}

/// Declares property tests, mirroring `proptest::proptest!`.
///
/// Each property runs `config.cases` times with values drawn from the
/// argument strategies; the case seed is derived deterministically from the
/// case index, so failures are reproducible.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident ( $( $arg:ident in $strat:expr ),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                for case in 0..config.cases {
                    let mut rng = $crate::TestRng::new(0xD15A_50F3_u64 ^ ((case as u64) << 17));
                    $( let $arg = $crate::Strategy::sample(&($strat), &mut rng); )+
                    let outcome = (|| -> ::core::result::Result<(), $crate::TestCaseError> {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                    if let ::core::result::Result::Err(e) = outcome {
                        panic!("property {} failed at case {}: {}", stringify!($name), case, e);
                    }
                }
            }
        )*
    };
    ( $($rest:tt)* ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $($rest)*
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_and_vecs_in_bounds(
            x in 3u32..9,
            pair in (0u64..5, 0u64..5),
            flags in crate::collection::vec(crate::bool::ANY, 2..10),
            v in crate::collection::vec((0u32..4, 0u32..4), 1..6),
        ) {
            prop_assert!((3..9).contains(&x));
            prop_assert!(pair.0 < 5 && pair.1 < 5);
            prop_assert!(flags.len() >= 2 && flags.len() < 10);
            prop_assert!(!v.is_empty() && v.len() < 6);
            for (a, b) in v {
                prop_assert!(a < 4, "a = {}", a);
                prop_assert_eq!(b.min(3), b);
            }
        }
    }

    #[test]
    #[should_panic(expected = "property")]
    fn failing_property_panics_with_case_number() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            fn inner(x in 0u32..10) {
                prop_assert!(x >= 10, "x = {}", x);
            }
        }
        inner();
    }
}
