//! Vendored, offline-compatible subset of the `rand` 0.8 API.
//!
//! The build environment has no access to crates.io, so this crate
//! re-implements exactly the surface the DynaSoRe workspace uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], [`Rng::gen_range`],
//! [`Rng::gen_bool`] and [`seq::SliceRandom`]. The generator is
//! xoshiro256++ seeded through SplitMix64 — deterministic for a given seed,
//! statistically solid for simulation work, and *not* suitable for
//! cryptography (neither is the real `StdRng` contractually stable across
//! versions, so no caller may rely on identical streams).
//!
//! ```
//! use rand::{rngs::StdRng, Rng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(42);
//! let x = rng.gen_range(0..10u32);
//! assert!(x < 10);
//! let p = rng.gen_range(0.0f64..1.0f64);
//! assert!((0.0..1.0).contains(&p));
//! ```

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of randomness: a stream of `u64` words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A random generator constructible from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range`.
    ///
    /// Supports the half-open (`a..b`) and inclusive (`a..=b`) ranges of the
    /// integer and float types used in this workspace. Panics when the range
    /// is empty, matching `rand`.
    fn gen_range<T, R: distributions::SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// Panics when `p` is not in `[0, 1]`, matching `rand`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0, 1]");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Maps 64 random bits onto a uniform `f64` in `[0, 1)` (53-bit precision).
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++
    /// seeded through SplitMix64.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ step.
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub mod distributions {
    //! Range sampling support for [`Rng::gen_range`](crate::Rng::gen_range).

    use super::{unit_f64, Range, RangeInclusive, RngCore};

    /// A range that [`Rng::gen_range`](crate::Rng::gen_range) can sample from.
    pub trait SampleRange<T> {
        /// Draws one uniform sample from the range.
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
    }

    macro_rules! int_range {
        ($($t:ty),*) => {$(
            impl SampleRange<$t> for Range<$t> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "gen_range: empty range");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let draw = (rng.next_u64() as u128) % span;
                    (self.start as i128 + draw as i128) as $t
                }
            }
            impl SampleRange<$t> for RangeInclusive<$t> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "gen_range: empty range");
                    let span = (end as i128 - start as i128) as u128 + 1;
                    let draw = (rng.next_u64() as u128) % span;
                    (start as i128 + draw as i128) as $t
                }
            }
        )*};
    }

    int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! float_range {
        ($($t:ty),*) => {$(
            impl SampleRange<$t> for Range<$t> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "gen_range: empty range");
                    let unit = unit_f64(rng.next_u64()) as $t;
                    self.start + unit * (self.end - self.start)
                }
            }
            impl SampleRange<$t> for RangeInclusive<$t> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "gen_range: empty range");
                    let unit = unit_f64(rng.next_u64()) as $t;
                    start + unit * (end - start)
                }
            }
        )*};
    }

    float_range!(f32, f64);
}

pub mod seq {
    //! Sequence-related extensions (shuffling, choosing).

    use super::{Rng, RngCore};

    /// Extension methods on slices, mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// The element type of the slice.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Returns a uniformly chosen element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let a: Vec<u32> = {
            let mut r = StdRng::seed_from_u64(9);
            (0..8).map(|_| r.gen_range(0..1000u32)).collect()
        };
        let b: Vec<u32> = {
            let mut r = StdRng::seed_from_u64(9);
            (0..8).map(|_| r.gen_range(0..1000u32)).collect()
        };
        assert_eq!(a, b);
        let c: Vec<u32> = {
            let mut r = StdRng::seed_from_u64(10);
            (0..8).map(|_| r.gen_range(0..1000u32)).collect()
        };
        assert_ne!(a, c);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = r.gen_range(5..17i64);
            assert!((5..17).contains(&x));
            let y = r.gen_range(-2.5..=2.5f64);
            assert!((-2.5..=2.5).contains(&y));
            let z = r.gen_range(0.0f64..1.0f64);
            assert!((0.0..1.0).contains(&z));
        }
    }

    #[test]
    fn gen_bool_matches_probability_roughly() {
        let mut r = StdRng::seed_from_u64(3);
        let hits = (0..100_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((20_000..30_000).contains(&hits), "hits = {hits}");
        assert!((0..100).all(|_| !r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = StdRng::seed_from_u64(4);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }
}
