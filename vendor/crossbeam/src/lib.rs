//! Vendored, offline-compatible subset of the `crossbeam` channel API.
//!
//! Crossbeam's key ergonomic difference from `std::sync::mpsc` is that
//! bounded and unbounded channels share one [`channel::Sender`] type (and
//! receivers are cloneable in real crossbeam — not needed here). This wrapper
//! unifies `std`'s `Sender`/`SyncSender` behind one enum so DynaSoRe's store
//! code written against crossbeam compiles unchanged.
//!
//! ```
//! use crossbeam::channel::{bounded, unbounded};
//!
//! let (tx, rx) = unbounded();
//! tx.send(1).unwrap();
//! assert_eq!(rx.recv(), Ok(1));
//!
//! let (btx, brx) = bounded(1);
//! btx.send("hi").unwrap();
//! assert_eq!(brx.recv(), Ok("hi"));
//! ```

#![forbid(unsafe_code)]

pub mod channel {
    //! Multi-producer single-consumer channels with a unified sender type.

    use std::sync::mpsc;

    pub use std::sync::mpsc::{RecvError, SendError, TryRecvError};

    /// Sending half of a channel; clonable, works for bounded and unbounded.
    #[derive(Debug)]
    pub struct Sender<T>(Inner<T>);

    #[derive(Debug)]
    enum Inner<T> {
        Unbounded(mpsc::Sender<T>),
        Bounded(mpsc::SyncSender<T>),
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(match &self.0 {
                Inner::Unbounded(s) => Inner::Unbounded(s.clone()),
                Inner::Bounded(s) => Inner::Bounded(s.clone()),
            })
        }
    }

    impl<T> Sender<T> {
        /// Sends `value`, blocking if the channel is bounded and full.
        ///
        /// Returns `Err` when the receiving side has been dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            match &self.0 {
                Inner::Unbounded(s) => s.send(value),
                Inner::Bounded(s) => s.send(value),
            }
        }
    }

    /// Receiving half of a channel.
    #[derive(Debug)]
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        /// Blocks until a value arrives or every sender is dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv()
        }

        /// Returns a pending value without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv()
        }

        /// Iterates over received values until every sender is dropped.
        pub fn iter(&self) -> mpsc::Iter<'_, T> {
            self.0.iter()
        }
    }

    /// Creates a channel of unlimited capacity.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(Inner::Unbounded(tx)), Receiver(rx))
    }

    /// Creates a channel holding at most `cap` in-flight values
    /// (`cap == 0` gives a rendezvous channel).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender(Inner::Bounded(tx)), Receiver(rx))
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn unbounded_round_trip_across_threads() {
            let (tx, rx) = unbounded();
            let tx2 = tx.clone();
            let a = std::thread::spawn(move || tx2.send(41).unwrap());
            let b = std::thread::spawn(move || tx.send(1).unwrap());
            let sum: i32 = [rx.recv().unwrap(), rx.recv().unwrap()].iter().sum();
            assert_eq!(sum, 42);
            // Join so both Sender halves are dropped before asserting
            // disconnection — recv() returning does not imply the sending
            // threads have finished and released their handles.
            a.join().unwrap();
            b.join().unwrap();
            assert!(matches!(rx.try_recv(), Err(TryRecvError::Disconnected)));
        }

        #[test]
        fn bounded_reply_channel() {
            let (tx, rx) = bounded(1);
            tx.send("reply").unwrap();
            assert_eq!(rx.recv(), Ok("reply"));
            drop(tx);
            assert!(rx.recv().is_err());
        }
    }
}
