//! Vendored, offline-compatible subset of the `criterion` benchmarking API.
//!
//! Implements the surface used by `crates/bench/benches/microbench.rs`:
//! [`Criterion`], [`criterion_group!`], [`criterion_main!`],
//! `bench_function`, `benchmark_group`, `Bencher::iter`,
//! `Bencher::iter_batched` and [`BatchSize`]. Instead of criterion's
//! statistical machinery it runs a fixed warm-up plus `sample_size` timed
//! samples and prints the median per-iteration time — enough to eyeball hot
//! paths and to keep `cargo bench` runnable without network access.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Opaque value barrier; prevents the optimiser from deleting benched code.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How much setup output to hold per batch in [`Bencher::iter_batched`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration state: batch many iterations per setup.
    SmallInput,
    /// Large per-iteration state: one setup per iteration.
    LargeInput,
    /// Explicit number of iterations per batch.
    NumIterations(u64),
}

impl BatchSize {
    fn iterations(self) -> u64 {
        match self {
            BatchSize::SmallInput => 16,
            BatchSize::LargeInput => 1,
            BatchSize::NumIterations(n) => n.max(1),
        }
    }
}

/// Timing context passed to every benchmark closure.
#[derive(Debug)]
pub struct Bencher {
    sample_size: usize,
    samples: Vec<Duration>,
}

impl Bencher {
    fn new(sample_size: usize) -> Self {
        Bencher {
            sample_size,
            samples: Vec::new(),
        }
    }

    /// Times `routine` over `sample_size` samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up.
        black_box(routine());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }

    /// Times `routine` on fresh values produced by `setup`; only the routine
    /// is timed.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let per_batch = size.iterations();
        black_box(routine(setup()));
        for _ in 0..self.sample_size {
            let inputs: Vec<I> = (0..per_batch).map(|_| setup()).collect();
            let start = Instant::now();
            for input in inputs {
                black_box(routine(input));
            }
            self.samples.push(start.elapsed() / per_batch as u32);
        }
    }

    fn median(&mut self) -> Option<Duration> {
        if self.samples.is_empty() {
            return None;
        }
        self.samples.sort_unstable();
        Some(self.samples[self.samples.len() / 2])
    }
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut bencher = Bencher::new(self.sample_size);
        f(&mut bencher);
        match bencher.median() {
            Some(t) => println!("bench {id:<50} median {t:>12.2?}/iter"),
            None => println!("bench {id:<50} (no samples)"),
        }
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        self.criterion.bench_function(&full, f);
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// Declares a benchmark group, mirroring `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark entry point, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_records_samples() {
        let mut c = Criterion::default().sample_size(3);
        let mut runs = 0u32;
        c.bench_function("noop", |b| b.iter(|| runs += 1));
        // 1 warm-up + 3 samples.
        assert_eq!(runs, 4);
    }

    #[test]
    fn iter_batched_runs_setup_per_batch() {
        let mut c = Criterion::default().sample_size(2);
        let mut group = c.benchmark_group("g");
        group.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 8], |v| v.len(), BatchSize::LargeInput)
        });
        group.finish();
    }
}
