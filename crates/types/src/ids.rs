//! Strongly-typed identifiers for users, machines and cluster locations.
//!
//! All identifiers are thin newtypes over unsigned integers so they are
//! `Copy`, hashable and cheap to store in the large routing and statistics
//! tables the system maintains, while still preventing accidental mix-ups
//! between, e.g., a server index and a user id.

use std::fmt;

/// Identifier of a user of the social application.
///
/// Users both produce events (written to their own view) and consume the
/// views of their social connections.
///
/// # Example
///
/// ```
/// use dynasore_types::UserId;
/// let u = UserId::new(42);
/// assert_eq!(u.index(), 42);
/// assert_eq!(u.to_string(), "u42");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct UserId(u32);

impl UserId {
    /// Creates a user id from its dense index.
    pub fn new(index: u32) -> Self {
        UserId(index)
    }

    /// Returns the dense index of this user.
    ///
    /// Graphs, traces and placement tables index their per-user arrays with
    /// this value, so ids are expected to be dense in `0..user_count`.
    pub fn index(self) -> u32 {
        self.0
    }

    /// Returns the index as a `usize`, convenient for array indexing.
    pub fn as_usize(self) -> usize {
        self.0 as usize
    }
}

impl From<u32> for UserId {
    fn from(v: u32) -> Self {
        UserId(v)
    }
}

impl From<UserId> for u32 {
    fn from(v: UserId) -> Self {
        v.0
    }
}

impl fmt::Display for UserId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "u{}", self.0)
    }
}

/// Identifier of a physical machine in the cluster (either a server or a
/// broker).
///
/// Machines are numbered densely in `0..machine_count` by the topology that
/// creates them; the topology also knows which rack each machine belongs to
/// and whether it acts as a view server or as a broker.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct MachineId(u32);

impl MachineId {
    /// Sentinel id for the durable persistent tier (§3.3 of the paper). It
    /// is not a cluster machine — topologies never contain it — but it can
    /// appear as a message endpoint so that recovery and demand-fill traffic
    /// is charged to the switches between a cache machine and the store,
    /// which attaches above the core switch.
    pub const PERSISTENT: MachineId = MachineId(u32::MAX);

    /// Creates a machine id from its dense index.
    pub fn new(index: u32) -> Self {
        MachineId(index)
    }

    /// Whether this is the persistent-tier sentinel rather than a cluster
    /// machine.
    pub fn is_persistent(self) -> bool {
        self == MachineId::PERSISTENT
    }

    /// Returns the dense index of this machine.
    pub fn index(self) -> u32 {
        self.0
    }

    /// Returns the index as a `usize`, convenient for array indexing.
    pub fn as_usize(self) -> usize {
        self.0 as usize
    }
}

impl From<u32> for MachineId {
    fn from(v: u32) -> Self {
        MachineId(v)
    }
}

impl From<MachineId> for u32 {
    fn from(v: MachineId) -> Self {
        v.0
    }
}

impl fmt::Display for MachineId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "m{}", self.0)
    }
}

/// The role a machine plays in the cluster (§2.1 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MachineKind {
    /// Stores user views; has a bounded capacity in views.
    Server,
    /// Executes read/write requests and hosts per-user proxies.
    Broker,
}

impl fmt::Display for MachineKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MachineKind::Server => write!(f, "server"),
            MachineKind::Broker => write!(f, "broker"),
        }
    }
}

/// Identifier of a view server. A thin wrapper over [`MachineId`] that is
/// only handed out for machines whose kind is [`MachineKind::Server`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ServerId(MachineId);

impl ServerId {
    /// Wraps a machine id that is known to be a server.
    pub fn new(machine: MachineId) -> Self {
        ServerId(machine)
    }

    /// Returns the underlying machine id.
    pub fn machine(self) -> MachineId {
        self.0
    }

    /// Returns the dense machine index.
    pub fn index(self) -> u32 {
        self.0.index()
    }
}

impl fmt::Display for ServerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0.index())
    }
}

/// Identifier of a broker. A thin wrapper over [`MachineId`] that is only
/// handed out for machines whose kind is [`MachineKind::Broker`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BrokerId(MachineId);

impl BrokerId {
    /// Wraps a machine id that is known to be a broker.
    pub fn new(machine: MachineId) -> Self {
        BrokerId(machine)
    }

    /// Returns the underlying machine id.
    pub fn machine(self) -> MachineId {
        self.0
    }

    /// Returns the dense machine index.
    pub fn index(self) -> u32 {
        self.0.index()
    }
}

impl fmt::Display for BrokerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b{}", self.0.index())
    }
}

/// Identifier of a rack (the edge tier of the network tree).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct RackId(u32);

impl RackId {
    /// Creates a rack id from its dense index.
    pub fn new(index: u32) -> Self {
        RackId(index)
    }

    /// Returns the dense index of this rack.
    pub fn index(self) -> u32 {
        self.0
    }

    /// Returns the index as a `usize`.
    pub fn as_usize(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for RackId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rack{}", self.0)
    }
}

/// Identifier of a sub-tree of the cluster (a switch together with everything
/// below it).
///
/// DynaSoRe records access origins and makes replication decisions at the
/// granularity of sub-trees: a replica serves either the whole cluster or the
/// machines under one switch (§3.2, *Access statistics*).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SubtreeId {
    /// The whole cluster (rooted at the top switch).
    Root,
    /// The sub-tree rooted at an intermediate switch.
    Intermediate(u32),
    /// The sub-tree rooted at a rack switch.
    Rack(u32),
    /// A single machine (leaf).
    Machine(u32),
}

impl SubtreeId {
    /// Returns `true` if this sub-tree is a single machine.
    pub fn is_machine(self) -> bool {
        matches!(self, SubtreeId::Machine(_))
    }

    /// Returns `true` if this sub-tree is the whole cluster.
    pub fn is_root(self) -> bool {
        matches!(self, SubtreeId::Root)
    }
}

impl fmt::Display for SubtreeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SubtreeId::Root => write!(f, "root"),
            SubtreeId::Intermediate(i) => write!(f, "inter{i}"),
            SubtreeId::Rack(r) => write!(f, "rack{r}"),
            SubtreeId::Machine(m) => write!(f, "machine{m}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn user_id_round_trip() {
        let u = UserId::new(7);
        assert_eq!(u.index(), 7);
        assert_eq!(u.as_usize(), 7usize);
        assert_eq!(u32::from(u), 7);
        assert_eq!(UserId::from(7u32), u);
    }

    #[test]
    fn ids_are_hashable_and_distinct() {
        let mut set = HashSet::new();
        for i in 0..100 {
            set.insert(UserId::new(i));
        }
        assert_eq!(set.len(), 100);
    }

    #[test]
    fn machine_wrappers_preserve_index() {
        let m = MachineId::new(12);
        assert_eq!(ServerId::new(m).index(), 12);
        assert_eq!(BrokerId::new(m).index(), 12);
        assert_eq!(ServerId::new(m).machine(), m);
        assert_eq!(BrokerId::new(m).machine(), m);
    }

    #[test]
    fn display_formats() {
        assert_eq!(UserId::new(3).to_string(), "u3");
        assert_eq!(MachineId::new(4).to_string(), "m4");
        assert_eq!(ServerId::new(MachineId::new(4)).to_string(), "s4");
        assert_eq!(BrokerId::new(MachineId::new(5)).to_string(), "b5");
        assert_eq!(RackId::new(2).to_string(), "rack2");
        assert_eq!(SubtreeId::Root.to_string(), "root");
        assert_eq!(SubtreeId::Intermediate(1).to_string(), "inter1");
        assert_eq!(SubtreeId::Rack(9).to_string(), "rack9");
        assert_eq!(SubtreeId::Machine(8).to_string(), "machine8");
    }

    #[test]
    fn subtree_kind_predicates() {
        assert!(SubtreeId::Root.is_root());
        assert!(!SubtreeId::Root.is_machine());
        assert!(SubtreeId::Machine(1).is_machine());
        assert!(!SubtreeId::Rack(1).is_machine());
    }

    #[test]
    fn ids_order_by_index() {
        assert!(UserId::new(1) < UserId::new(2));
        assert!(RackId::new(0) < RackId::new(5));
        assert!(MachineId::new(3) < MachineId::new(30));
    }
}
