//! On-disk encoding of the durable tier's log records.
//!
//! The file-backed persistent store (`dynasore-store`) writes an append-only
//! log of these records. Each record is *framed*: a little-endian `u32`
//! length, a CRC-32 checksum of the body, then the body itself. A crash can
//! truncate the log at any byte offset; on replay the frame makes the torn
//! tail detectable — a short frame, an impossible length or a checksum
//! mismatch all mean "the log ends here", never a half-applied record.
//!
//! ```text
//! ┌──────────┬──────────┬────────────────────────────────┐
//! │ len: u32 │ crc: u32 │ body (len bytes)               │
//! └──────────┴──────────┴────────────────────────────────┘
//! body = [kind: u8][kind-specific fields, little-endian]
//! ```
//!
//! Four record kinds exist: [`DurableRecord::Event`] (one appended event,
//! the normal write path), [`DurableRecord::Batch`] (many events committed
//! as one frame — the group-commit unit: its single checksum covers every
//! entry, so a crash mid-write tears the *whole* batch, never a prefix of
//! it), [`DurableRecord::Snapshot`] (a full view, written by compaction to
//! supersede every earlier record of that user) and
//! [`DurableRecord::Tombstone`] (the user's view was deleted).
//!
//! Batch frames are built *incrementally* with [`DurableRecord::batch_begin`]
//! / [`batch_push`](DurableRecord::batch_push) /
//! [`batch_finish`](DurableRecord::batch_finish) so a writer can accumulate
//! acknowledged events straight into one reusable buffer and patch the
//! length, checksum and count in place at commit time — no per-commit
//! re-encoding, no intermediate allocations.

use crate::{Error, Event, Result, SimTime, UserId, View};

/// Upper bound on a record body. Frames announcing more than this are treated
/// as torn tails (a partially written length prefix can decode to garbage).
pub const MAX_RECORD_BYTES: usize = 1 << 24;

/// Bytes of the frame header (length prefix + checksum).
pub const RECORD_HEADER_BYTES: usize = 8;

const KIND_EVENT: u8 = 1;
const KIND_SNAPSHOT: u8 = 2;
const KIND_TOMBSTONE: u8 = 3;
const KIND_BATCH: u8 = 4;

/// Bytes a batch body spends before the first entry: the kind byte plus the
/// entry count.
const BATCH_PREFIX_BYTES: usize = 5;

/// CRC-32 (IEEE 802.3 polynomial, reflected) of `bytes`.
///
/// This is the checksum guarding every durable-log record; it is exposed so
/// tests and tooling can validate frames independently. Group commit runs
/// this over megabyte-scale batch frames on every commit (and replay runs
/// it again over every frame read back), so the implementation is
/// slicing-by-8 — eight table lookups per 8 input bytes instead of one per
/// byte — which is severalfold faster than the classic byte-at-a-time loop
/// while computing the identical checksum.
pub fn crc32(bytes: &[u8]) -> u32 {
    const fn tables() -> [[u32; 256]; 8] {
        let mut t = [[0u32; 256]; 8];
        let mut i = 0;
        while i < 256 {
            let mut c = i as u32;
            let mut k = 0;
            while k < 8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
                k += 1;
            }
            t[0][i] = c;
            i += 1;
        }
        let mut n = 1;
        while n < 8 {
            let mut i = 0;
            while i < 256 {
                t[n][i] = (t[n - 1][i] >> 8) ^ t[0][(t[n - 1][i] & 0xFF) as usize];
                i += 1;
            }
            n += 1;
        }
        t
    }
    static TABLES: [[u32; 256]; 8] = tables();
    let mut crc = 0xFFFF_FFFFu32;
    let mut chunks = bytes.chunks_exact(8);
    for chunk in &mut chunks {
        let lo = crc ^ u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        let hi = u32::from_le_bytes([chunk[4], chunk[5], chunk[6], chunk[7]]);
        crc = TABLES[7][(lo & 0xFF) as usize]
            ^ TABLES[6][((lo >> 8) & 0xFF) as usize]
            ^ TABLES[5][((lo >> 16) & 0xFF) as usize]
            ^ TABLES[4][(lo >> 24) as usize]
            ^ TABLES[3][(hi & 0xFF) as usize]
            ^ TABLES[2][((hi >> 8) & 0xFF) as usize]
            ^ TABLES[1][((hi >> 16) & 0xFF) as usize]
            ^ TABLES[0][(hi >> 24) as usize];
    }
    for &b in chunks.remainder() {
        crc = TABLES[0][((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

/// One record of the durable tier's append-only log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DurableRecord {
    /// A single event appended to `user`'s view — the normal write path.
    Event {
        /// The view the event belongs to.
        user: UserId,
        /// The event's timestamp.
        timestamp: SimTime,
        /// The opaque application payload.
        payload: Vec<u8>,
    },
    /// Many events committed as one frame — the group-commit unit. The
    /// frame's single checksum covers every entry, so a crash mid-write
    /// tears the whole batch at once: replay either applies all of its
    /// events or none of them, never a prefix.
    Batch {
        /// The batched events, in acknowledgement order (entries may belong
        /// to different users).
        events: Vec<Event>,
    },
    /// A full view, superseding every earlier record of the same user.
    /// Written by compaction so replay can drop the superseded history.
    Snapshot {
        /// The complete view, including its version counter.
        view: View,
    },
    /// The user's view was deleted; replay forgets everything before this.
    Tombstone {
        /// The deleted view's owner.
        user: UserId,
    },
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Cursor over a record body during decoding. Every read is bounds-checked:
/// running out of body bytes with a *valid* checksum means the writer was
/// buggy, which decoding reports as [`Error::CorruptRecord`].
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.bytes.len());
        match end {
            Some(end) => {
                let s = &self.bytes[self.pos..end];
                self.pos = end;
                Ok(s)
            }
            None => Err(Error::CorruptRecord(format!(
                "body too short: wanted {n} bytes at offset {}, body is {} bytes",
                self.pos,
                self.bytes.len()
            ))),
        }
    }

    fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn finish(self) -> Result<()> {
        if self.pos == self.bytes.len() {
            Ok(())
        } else {
            Err(Error::CorruptRecord(format!(
                "{} trailing bytes after record body",
                self.bytes.len() - self.pos
            )))
        }
    }
}

impl DurableRecord {
    /// Appends the framed encoding of this record to `buf` and returns the
    /// number of bytes written. On error, `buf` is restored to its previous
    /// length (no partial frame is left behind).
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] when the record body would exceed
    /// [`MAX_RECORD_BYTES`] — a frame that large could never be replayed, so
    /// it is rejected before any byte reaches the log.
    pub fn encode_into(&self, buf: &mut Vec<u8>) -> Result<usize> {
        let frame_start = buf.len();
        put_u32(buf, 0); // length placeholder
        put_u32(buf, 0); // crc placeholder
        let body_start = buf.len();
        match self {
            DurableRecord::Event {
                user,
                timestamp,
                payload,
            } => {
                buf.push(KIND_EVENT);
                put_u32(buf, user.index());
                put_u64(buf, timestamp.as_secs());
                put_u32(buf, payload.len() as u32);
                buf.extend_from_slice(payload);
            }
            DurableRecord::Batch { events } => {
                if events.is_empty() {
                    buf.truncate(frame_start);
                    return Err(Error::invalid_config(
                        "a batch record must hold at least one event",
                    ));
                }
                buf.push(KIND_BATCH);
                put_u32(buf, events.len() as u32);
                for event in events {
                    put_u32(buf, event.author().index());
                    put_u64(buf, event.timestamp().as_secs());
                    put_u32(buf, event.payload().len() as u32);
                    buf.extend_from_slice(event.payload());
                }
            }
            DurableRecord::Snapshot { view } => {
                buf.push(KIND_SNAPSHOT);
                put_u32(buf, view.owner().index());
                put_u64(buf, view.version());
                put_u32(buf, view.capacity() as u32);
                put_u32(buf, view.len() as u32);
                for event in view.iter() {
                    put_u32(buf, event.author().index());
                    put_u64(buf, event.timestamp().as_secs());
                    put_u32(buf, event.payload().len() as u32);
                    buf.extend_from_slice(event.payload());
                }
            }
            DurableRecord::Tombstone { user } => {
                buf.push(KIND_TOMBSTONE);
                put_u32(buf, user.index());
            }
        }
        let body_len = buf.len() - body_start;
        if body_len > MAX_RECORD_BYTES {
            buf.truncate(frame_start);
            return Err(Error::invalid_config(format!(
                "durable record body of {body_len} bytes exceeds the {MAX_RECORD_BYTES}-byte \
                 frame cap"
            )));
        }
        let crc = crc32(&buf[body_start..]);
        buf[frame_start..frame_start + 4].copy_from_slice(&(body_len as u32).to_le_bytes());
        buf[frame_start + 4..frame_start + 8].copy_from_slice(&crc.to_le_bytes());
        Ok(buf.len() - frame_start)
    }

    /// Attempts to decode one framed record from the start of `bytes`.
    ///
    /// Returns `Ok(Some((record, consumed)))` for a valid frame,
    /// `Ok(None)` for a *torn tail* — too few bytes for a frame, an
    /// impossible length, or a checksum mismatch, all of which a crash mid-
    /// write legitimately produces and replay treats as the end of the log.
    ///
    /// # Errors
    ///
    /// Returns [`Error::CorruptRecord`] when the checksum is valid but the
    /// body is malformed (unknown kind, inconsistent inner lengths): the
    /// record was written whole, so this is writer corruption, not a crash.
    pub fn decode(bytes: &[u8]) -> Result<Option<(DurableRecord, usize)>> {
        if bytes.len() < RECORD_HEADER_BYTES {
            return Ok(None);
        }
        let len = u32::from_le_bytes(bytes[0..4].try_into().unwrap()) as usize;
        if len == 0 || len > MAX_RECORD_BYTES {
            return Ok(None);
        }
        let expected_crc = u32::from_le_bytes(bytes[4..8].try_into().unwrap());
        let Some(body) = bytes.get(RECORD_HEADER_BYTES..RECORD_HEADER_BYTES + len) else {
            return Ok(None);
        };
        if crc32(body) != expected_crc {
            return Ok(None);
        }
        let mut cursor = Cursor {
            bytes: body,
            pos: 0,
        };
        let record = match cursor.u8()? {
            KIND_EVENT => {
                let user = UserId::new(cursor.u32()?);
                let timestamp = SimTime::from_secs(cursor.u64()?);
                let payload_len = cursor.u32()? as usize;
                let payload = cursor.take(payload_len)?.to_vec();
                DurableRecord::Event {
                    user,
                    timestamp,
                    payload,
                }
            }
            KIND_BATCH => {
                let count = cursor.u32()?;
                if count == 0 {
                    return Err(Error::CorruptRecord(
                        "batch record with zero entries".into(),
                    ));
                }
                let mut events = Vec::with_capacity((count as usize).min(1024));
                for _ in 0..count {
                    let author = UserId::new(cursor.u32()?);
                    let timestamp = SimTime::from_secs(cursor.u64()?);
                    let payload_len = cursor.u32()? as usize;
                    let payload = cursor.take(payload_len)?.to_vec();
                    events.push(Event::new(author, timestamp, payload));
                }
                DurableRecord::Batch { events }
            }
            KIND_SNAPSHOT => {
                let owner = UserId::new(cursor.u32()?);
                let version = cursor.u64()?;
                let capacity = cursor.u32()? as usize;
                if capacity == 0 {
                    return Err(Error::CorruptRecord(
                        "snapshot with zero view capacity".into(),
                    ));
                }
                let count = cursor.u32()? as usize;
                let mut events = Vec::with_capacity(count.min(1024));
                for _ in 0..count {
                    let author = UserId::new(cursor.u32()?);
                    let timestamp = SimTime::from_secs(cursor.u64()?);
                    let payload_len = cursor.u32()? as usize;
                    let payload = cursor.take(payload_len)?.to_vec();
                    events.push(Event::new(author, timestamp, payload));
                }
                DurableRecord::Snapshot {
                    view: View::from_saved(owner, capacity, version, events),
                }
            }
            KIND_TOMBSTONE => DurableRecord::Tombstone {
                user: UserId::new(cursor.u32()?),
            },
            kind => return Err(Error::CorruptRecord(format!("unknown record kind {kind}"))),
        };
        cursor.finish()?;
        Ok(Some((record, RECORD_HEADER_BYTES + len)))
    }

    /// Appends the framed encoding of one [`DurableRecord::Event`] directly
    /// from a borrowed payload — the write hot path. Skips constructing the
    /// record value entirely, so the caller keeps ownership of the payload
    /// (typically to move it into the in-memory index afterwards) and the
    /// bytes are copied exactly once, into `buf`.
    ///
    /// # Errors
    ///
    /// Same as [`DurableRecord::encode_into`]: [`Error::InvalidConfig`] when
    /// the body would exceed [`MAX_RECORD_BYTES`]; `buf` is restored.
    pub fn encode_event_into(
        buf: &mut Vec<u8>,
        user: UserId,
        timestamp: SimTime,
        payload: &[u8],
    ) -> Result<usize> {
        let frame_start = buf.len();
        let body_len = 17 + payload.len(); // kind + user + timestamp + len + payload
        if body_len > MAX_RECORD_BYTES {
            return Err(Error::invalid_config(format!(
                "durable record body of {body_len} bytes exceeds the {MAX_RECORD_BYTES}-byte \
                 frame cap"
            )));
        }
        buf.reserve(RECORD_HEADER_BYTES + body_len);
        put_u32(buf, body_len as u32);
        put_u32(buf, 0); // crc placeholder
        buf.push(KIND_EVENT);
        put_u32(buf, user.index());
        put_u64(buf, timestamp.as_secs());
        put_u32(buf, payload.len() as u32);
        buf.extend_from_slice(payload);
        let crc = crc32(&buf[frame_start + RECORD_HEADER_BYTES..]);
        buf[frame_start + 4..frame_start + 8].copy_from_slice(&crc.to_le_bytes());
        Ok(buf.len() - frame_start)
    }

    /// Starts an incremental [`DurableRecord::Batch`] frame in `buf`
    /// (clearing it first): the frame header, the kind byte and the entry
    /// count are laid down as placeholders that
    /// [`batch_finish`](DurableRecord::batch_finish) patches in place.
    pub fn batch_begin(buf: &mut Vec<u8>) {
        buf.clear();
        put_u32(buf, 0); // length placeholder
        put_u32(buf, 0); // crc placeholder
        buf.push(KIND_BATCH);
        put_u32(buf, 0); // count placeholder
    }

    /// Appends one event entry to an open batch frame, copying the payload
    /// exactly once. On error `buf` is untouched, so the caller can commit
    /// the batch built so far and retry in a fresh one.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidConfig`] when the entry would push the batch body past
    /// [`MAX_RECORD_BYTES`] — an unreplayable frame must never be started.
    pub fn batch_push(
        buf: &mut Vec<u8>,
        user: UserId,
        timestamp: SimTime,
        payload: &[u8],
    ) -> Result<()> {
        debug_assert!(
            buf.len() >= RECORD_HEADER_BYTES + BATCH_PREFIX_BYTES,
            "batch_push before batch_begin"
        );
        let entry_len = 16 + payload.len(); // user + timestamp + len + payload
        let body_len = buf.len() - RECORD_HEADER_BYTES + entry_len;
        if body_len > MAX_RECORD_BYTES {
            return Err(Error::invalid_config(format!(
                "batch body of {body_len} bytes would exceed the {MAX_RECORD_BYTES}-byte \
                 frame cap"
            )));
        }
        put_u32(buf, user.index());
        put_u64(buf, timestamp.as_secs());
        put_u32(buf, payload.len() as u32);
        buf.extend_from_slice(payload);
        Ok(())
    }

    /// Seals an open batch frame: patches the entry count, the body length
    /// and the checksum in place, and returns the total frame size. After
    /// this, `buf` holds one complete [`DurableRecord::Batch`] frame ready
    /// to be appended to the log.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidConfig`] for an empty batch (`count` 0): an empty
    /// batch frame is indistinguishable from writer corruption on replay,
    /// so it must never be written.
    pub fn batch_finish(buf: &mut [u8], count: u32) -> Result<usize> {
        if count == 0 {
            return Err(Error::invalid_config(
                "a batch record must hold at least one event",
            ));
        }
        debug_assert!(
            buf.len() >= RECORD_HEADER_BYTES + BATCH_PREFIX_BYTES,
            "batch_finish before batch_begin"
        );
        let count_at = RECORD_HEADER_BYTES + 1;
        buf[count_at..count_at + 4].copy_from_slice(&count.to_le_bytes());
        let body_len = buf.len() - RECORD_HEADER_BYTES;
        buf[0..4].copy_from_slice(&(body_len as u32).to_le_bytes());
        let crc = crc32(&buf[RECORD_HEADER_BYTES..]);
        buf[4..8].copy_from_slice(&crc.to_le_bytes());
        Ok(buf.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_records() -> Vec<DurableRecord> {
        let u = UserId::new(7);
        let mut view = View::with_capacity(u, 4);
        view.push(Event::new(u, SimTime::from_secs(1), b"a".to_vec()));
        view.push(Event::new(u, SimTime::from_secs(2), b"bb".to_vec()));
        vec![
            DurableRecord::Event {
                user: u,
                timestamp: SimTime::from_secs(3),
                payload: b"hello".to_vec(),
            },
            DurableRecord::Snapshot { view },
            DurableRecord::Tombstone { user: u },
            DurableRecord::Batch {
                events: vec![
                    Event::new(UserId::new(1), SimTime::from_secs(4), b"x".to_vec()),
                    Event::new(UserId::new(2), SimTime::from_secs(5), Vec::new()),
                    Event::new(UserId::new(1), SimTime::from_secs(6), b"yz".to_vec()),
                ],
            },
            DurableRecord::Event {
                user: UserId::new(0),
                timestamp: SimTime::ZERO,
                payload: Vec::new(),
            },
        ]
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE test vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn crc32_slicing_matches_bitwise_reference_at_every_alignment() {
        // Canonical bit-at-a-time CRC-32: the slowest, most obviously
        // correct formulation, checked against the slicing-by-8 fast path.
        fn bitwise(bytes: &[u8]) -> u32 {
            let mut crc = 0xFFFF_FFFFu32;
            for &b in bytes {
                crc ^= b as u32;
                for _ in 0..8 {
                    crc = if crc & 1 != 0 {
                        0xEDB8_8320 ^ (crc >> 1)
                    } else {
                        crc >> 1
                    };
                }
            }
            !crc
        }
        // Lengths 0..=24 cover every chunks_exact remainder; the pattern
        // exercises all byte values.
        let data: Vec<u8> = (0..=255u8).cycle().take(1024).collect();
        for len in 0..=24 {
            assert_eq!(crc32(&data[..len]), bitwise(&data[..len]), "len {len}");
        }
        assert_eq!(crc32(&data), bitwise(&data));
    }

    #[test]
    fn records_round_trip() {
        let mut buf = Vec::new();
        let records = sample_records();
        let mut sizes = Vec::new();
        for r in &records {
            sizes.push(r.encode_into(&mut buf).unwrap());
        }
        let mut decoded = Vec::new();
        let mut offset = 0usize;
        while offset < buf.len() {
            let (record, consumed) = DurableRecord::decode(&buf[offset..])
                .unwrap()
                .expect("valid record");
            decoded.push(record);
            offset += consumed;
        }
        assert_eq!(decoded, records);
        assert_eq!(sizes.iter().sum::<usize>(), buf.len());
    }

    #[test]
    fn snapshot_preserves_version_and_capacity() {
        let u = UserId::new(3);
        let mut view = View::with_capacity(u, 2);
        for t in 0..5 {
            view.push(Event::new(u, SimTime::from_secs(t), vec![t as u8]));
        }
        let mut buf = Vec::new();
        DurableRecord::Snapshot { view: view.clone() }
            .encode_into(&mut buf)
            .unwrap();
        let (record, _) = DurableRecord::decode(&buf).unwrap().unwrap();
        let DurableRecord::Snapshot { view: decoded } = record else {
            panic!("expected snapshot");
        };
        assert_eq!(decoded, view);
        assert_eq!(decoded.version(), 5);
        assert_eq!(decoded.capacity(), 2);
    }

    #[test]
    fn every_truncation_is_a_torn_tail() {
        let mut buf = Vec::new();
        for r in sample_records() {
            r.encode_into(&mut buf).unwrap();
        }
        // Whatever prefix of a single record survives, decode must answer
        // "torn", never a record and never corruption.
        let mut one = Vec::new();
        DurableRecord::Event {
            user: UserId::new(9),
            timestamp: SimTime::from_secs(9),
            payload: b"payload".to_vec(),
        }
        .encode_into(&mut one)
        .unwrap();
        for cut in 0..one.len() {
            assert!(
                DurableRecord::decode(&one[..cut]).unwrap().is_none(),
                "prefix of {cut} bytes must be torn"
            );
        }
        assert!(DurableRecord::decode(&one).unwrap().is_some());
    }

    #[test]
    fn bit_flips_fail_the_checksum() {
        let mut buf = Vec::new();
        DurableRecord::Event {
            user: UserId::new(1),
            timestamp: SimTime::from_secs(1),
            payload: b"abcdef".to_vec(),
        }
        .encode_into(&mut buf)
        .unwrap();
        for i in RECORD_HEADER_BYTES..buf.len() {
            let mut copy = buf.clone();
            copy[i] ^= 0x40;
            assert!(
                DurableRecord::decode(&copy).unwrap().is_none(),
                "flip at byte {i} must fail the checksum"
            );
        }
    }

    #[test]
    fn valid_checksum_with_malformed_body_is_corruption() {
        // Hand-build a frame whose checksum is correct but whose kind is
        // unknown: that cannot come from a crash, only a buggy writer.
        let body = [42u8, 0, 0, 0, 0];
        let mut frame = Vec::new();
        frame.extend_from_slice(&(body.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(&body).to_le_bytes());
        frame.extend_from_slice(&body);
        assert!(matches!(
            DurableRecord::decode(&frame),
            Err(Error::CorruptRecord(_))
        ));

        // Trailing garbage inside a checksummed body is equally corrupt.
        let mut event = Vec::new();
        DurableRecord::Tombstone {
            user: UserId::new(1),
        }
        .encode_into(&mut event)
        .unwrap();
        let len = u32::from_le_bytes(event[0..4].try_into().unwrap()) as usize;
        let mut body = event[RECORD_HEADER_BYTES..RECORD_HEADER_BYTES + len].to_vec();
        body.push(0xAA);
        let mut frame = Vec::new();
        frame.extend_from_slice(&(body.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(&body).to_le_bytes());
        frame.extend_from_slice(&body);
        assert!(matches!(
            DurableRecord::decode(&frame),
            Err(Error::CorruptRecord(_))
        ));
    }

    #[test]
    fn incremental_batch_matches_the_record_encoding() {
        // The begin/push/finish path must produce byte-identical frames to
        // encoding a `DurableRecord::Batch` value, so replay cannot tell the
        // two writers apart.
        let events = vec![
            Event::new(UserId::new(3), SimTime::from_secs(10), b"aaa".to_vec()),
            Event::new(UserId::new(9), SimTime::from_secs(11), b"b".to_vec()),
        ];
        let mut incremental = vec![0xEE; 7]; // batch_begin must clear stale content
        DurableRecord::batch_begin(&mut incremental);
        for event in &events {
            DurableRecord::batch_push(
                &mut incremental,
                event.author(),
                event.timestamp(),
                event.payload(),
            )
            .unwrap();
        }
        let frame_len = DurableRecord::batch_finish(&mut incremental, events.len() as u32).unwrap();
        assert_eq!(frame_len, incremental.len());
        let mut whole = Vec::new();
        DurableRecord::Batch { events }
            .encode_into(&mut whole)
            .unwrap();
        assert_eq!(incremental, whole);
    }

    #[test]
    fn direct_event_encoding_matches_the_record_encoding() {
        let (user, ts) = (UserId::new(5), SimTime::from_secs(77));
        let payload = b"tweet-sized".to_vec();
        let mut direct = Vec::new();
        let n = DurableRecord::encode_event_into(&mut direct, user, ts, &payload).unwrap();
        assert_eq!(n, direct.len());
        let mut whole = Vec::new();
        DurableRecord::Event {
            user,
            timestamp: ts,
            payload,
        }
        .encode_into(&mut whole)
        .unwrap();
        assert_eq!(direct, whole);
    }

    #[test]
    fn torn_batch_is_lost_as_a_unit() {
        // Any truncation inside the batch frame loses *every* entry, even
        // when the bytes of the first entries survived intact: the single
        // checksum covers them all.
        let mut buf = Vec::new();
        DurableRecord::batch_begin(&mut buf);
        for i in 0..4u32 {
            DurableRecord::batch_push(
                &mut buf,
                UserId::new(i),
                SimTime::from_secs(i as u64),
                &[i as u8; 20],
            )
            .unwrap();
        }
        DurableRecord::batch_finish(&mut buf, 4).unwrap();
        for cut in 0..buf.len() {
            assert!(
                DurableRecord::decode(&buf[..cut]).unwrap().is_none(),
                "a batch truncated to {cut} bytes must decode as torn, not partially"
            );
        }
        let (record, consumed) = DurableRecord::decode(&buf).unwrap().unwrap();
        assert_eq!(consumed, buf.len());
        let DurableRecord::Batch { events } = record else {
            panic!("expected batch");
        };
        assert_eq!(events.len(), 4);
    }

    #[test]
    fn batch_push_overflow_leaves_the_frame_intact() {
        let mut buf = Vec::new();
        DurableRecord::batch_begin(&mut buf);
        DurableRecord::batch_push(&mut buf, UserId::new(1), SimTime::ZERO, b"ok").unwrap();
        let before = buf.clone();
        let err = DurableRecord::batch_push(
            &mut buf,
            UserId::new(2),
            SimTime::ZERO,
            &vec![0u8; MAX_RECORD_BYTES],
        );
        assert!(matches!(err, Err(Error::InvalidConfig(_))), "{err:?}");
        assert_eq!(buf, before, "a rejected entry must not dirty the frame");
        // The survivors still seal and decode.
        DurableRecord::batch_finish(&mut buf, 1).unwrap();
        assert!(DurableRecord::decode(&buf).unwrap().is_some());
    }

    #[test]
    fn empty_batches_are_rejected_everywhere() {
        let mut buf = Vec::new();
        DurableRecord::batch_begin(&mut buf);
        assert!(matches!(
            DurableRecord::batch_finish(&mut buf, 0),
            Err(Error::InvalidConfig(_))
        ));
        let mut whole = Vec::new();
        assert!(matches!(
            DurableRecord::Batch { events: Vec::new() }.encode_into(&mut whole),
            Err(Error::InvalidConfig(_))
        ));
        assert!(whole.is_empty(), "rejected record must restore the buffer");
        // A hand-built zero-count batch with a valid checksum is writer
        // corruption, not a torn tail.
        let body = [4u8, 0, 0, 0, 0];
        let mut frame = Vec::new();
        frame.extend_from_slice(&(body.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(&body).to_le_bytes());
        frame.extend_from_slice(&body);
        assert!(matches!(
            DurableRecord::decode(&frame),
            Err(Error::CorruptRecord(_))
        ));
    }

    #[test]
    fn zero_and_oversized_lengths_are_torn() {
        let mut frame = vec![0u8; 16];
        assert!(DurableRecord::decode(&frame).unwrap().is_none()); // len 0
        frame[0..4].copy_from_slice(&((MAX_RECORD_BYTES as u32) + 1).to_le_bytes());
        assert!(DurableRecord::decode(&frame).unwrap().is_none());
    }
}
