//! The time-aware network model: latencies, switch service rates and the
//! fixed-footprint histogram the simulator uses for latency percentiles.
//!
//! The paper reports placement quality as *traffic units per switch*; this
//! module adds the time dimension so the same message streams can also be
//! read as *latency*. Every switch is modelled as a deterministic
//! single-server queue (M/D/1-style: deterministic service at the switch's
//! rate, arrivals given by the trace): a message of `u` units arriving at a
//! switch waits for the queued work ahead of it, then occupies the switch
//! for `u / service_rate` seconds. Queues drain deterministically as
//! simulated time advances, so two runs with the same seed observe the same
//! waits — latency is as reproducible as the traffic totals.
//!
//! The degenerate [`NetworkModel::infinite`] model (infinite service rates,
//! zero hop latency) is the classic unit-count mode: queues never build up,
//! every latency sample is zero and traffic accounting is byte-identical to
//! a model-free account.

use std::fmt;
use std::ops::{Add, AddAssign};

/// Nanoseconds per second, the base resolution of [`Latency`].
pub const NANOS_PER_SEC: u64 = 1_000_000_000;

/// A network latency (or queueing delay), measured in whole nanoseconds.
///
/// Stored as an integer so latency arithmetic is exact and deterministic —
/// percentile reports must be byte-identical across runs with the same seed.
///
/// # Example
///
/// ```
/// use dynasore_types::Latency;
///
/// let l = Latency::from_micros(5) + Latency::from_nanos(250);
/// assert_eq!(l.as_nanos(), 5_250);
/// assert_eq!(l.to_string(), "5.250us");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Latency(u64);

impl Latency {
    /// Zero latency (local delivery, or the infinite-capacity model).
    pub const ZERO: Latency = Latency(0);

    /// Creates a latency from whole nanoseconds.
    pub const fn from_nanos(nanos: u64) -> Self {
        Latency(nanos)
    }

    /// Creates a latency from whole microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        Latency(micros * 1_000)
    }

    /// Creates a latency from whole milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        Latency(millis * 1_000_000)
    }

    /// Creates a latency from whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        Latency(secs * NANOS_PER_SEC)
    }

    /// This latency in whole nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// This latency in (fractional) seconds, for human-facing reports.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    /// This latency in (fractional) milliseconds, for human-facing reports.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Saturating difference of two latencies.
    pub fn saturating_sub(self, other: Latency) -> Latency {
        Latency(self.0.saturating_sub(other.0))
    }
}

impl Add for Latency {
    type Output = Latency;

    fn add(self, rhs: Latency) -> Latency {
        Latency(self.0 + rhs.0)
    }
}

impl AddAssign for Latency {
    fn add_assign(&mut self, rhs: Latency) {
        self.0 += rhs.0;
    }
}

impl fmt::Display for Latency {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns < 1_000 {
            write!(f, "{ns}ns")
        } else if ns < 1_000_000 {
            write!(f, "{}.{:03}us", ns / 1_000, ns % 1_000)
        } else if ns < NANOS_PER_SEC {
            write!(f, "{}.{:03}ms", ns / 1_000_000, (ns / 1_000) % 1_000)
        } else {
            write!(f, "{}.{:03}s", ns / NANOS_PER_SEC, (ns / 1_000_000) % 1_000)
        }
    }
}

/// A switch (or link) service rate, in traffic units per second.
///
/// Traffic units are the paper's abstract message sizes (an application
/// message is 10 units, a protocol message 1 unit); calibrating one unit to
/// ≈1 KB makes a 10 Gb/s rack switch about 1.25 million units per second.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Bandwidth(u64);

impl Bandwidth {
    /// Infinite service rate: messages pass through without queueing or
    /// transmission delay. The sentinel of the unit-count degenerate model.
    pub const INFINITE: Bandwidth = Bandwidth(u64::MAX);

    /// Creates a service rate from traffic units per second.
    ///
    /// # Panics
    ///
    /// Panics on a zero rate — a switch that never drains is a configuration
    /// error, not a model.
    pub fn units_per_sec(rate: u64) -> Self {
        assert!(rate > 0, "service rate must be positive");
        Bandwidth(rate)
    }

    /// The rate in traffic units per second ([`u64::MAX`] when infinite).
    pub const fn as_units_per_sec(self) -> u64 {
        self.0
    }

    /// Whether this is the infinite-rate sentinel.
    pub const fn is_infinite(self) -> bool {
        self.0 == u64::MAX
    }

    /// Nanoseconds a single traffic unit occupies the switch: the service
    /// time quantum of the deterministic queue. Zero only for the
    /// [`Bandwidth::INFINITE`] sentinel.
    ///
    /// Finite rates are quantized to the nearest whole nanosecond per unit
    /// and never below 1 ns, so a finite model always keeps its queue
    /// bookkeeping: rates above ~10⁹ units/s behave as 10⁹ units/s (a
    /// calibration that coarse should use larger traffic units instead).
    pub const fn ns_per_unit(self) -> u64 {
        if self.is_infinite() {
            0
        } else {
            let rounded = (NANOS_PER_SEC + self.0 / 2) / self.0;
            if rounded == 0 {
                1
            } else {
                rounded
            }
        }
    }
}

impl fmt::Display for Bandwidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_infinite() {
            write!(f, "inf")
        } else {
            write!(f, "{}u/s", self.0)
        }
    }
}

/// The time model of the switch tree: per-tier service rates, a fixed
/// per-hop forwarding latency, and the queueing-delay threshold past which a
/// run is declared congestion-collapsed.
///
/// The three tiers follow the paper's tree (§2.1): rack (edge) switches,
/// intermediate switches, and the core (top) switch. Capacity normally grows
/// up the tree, mirroring real data-centre fabrics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NetworkModel {
    /// Service rate of the top (core) switch.
    pub top_service: Bandwidth,
    /// Service rate of each intermediate switch.
    pub intermediate_service: Bandwidth,
    /// Service rate of each rack (edge) switch.
    pub rack_service: Bandwidth,
    /// Fixed forwarding latency added per switch hop (propagation plus
    /// lookup), independent of load.
    pub hop_latency: Latency,
    /// A switch whose queue ever holds more than this much drain time is
    /// congestion-collapsed: arrivals outpaced service for long enough that
    /// waiting times stop being meaningful.
    pub collapse_threshold: Latency,
}

impl NetworkModel {
    /// The degenerate unit-count model: infinite service rates and zero hop
    /// latency. Queues never build, every latency sample is zero, and
    /// traffic accounting is byte-identical to a model-free account. This is
    /// the default everywhere, so existing experiments keep their exact
    /// semantics.
    pub const fn infinite() -> Self {
        NetworkModel {
            top_service: Bandwidth::INFINITE,
            intermediate_service: Bandwidth::INFINITE,
            rack_service: Bandwidth::INFINITE,
            hop_latency: Latency::ZERO,
            collapse_threshold: Latency::from_secs(1),
        }
    }

    /// A data-centre-flavoured default, calibrated at one traffic unit ≈
    /// 1 KB: 10 Gb/s rack switches (1.25 M units/s), 40 Gb/s intermediates,
    /// 100 Gb/s core, 5 µs per hop, collapse at one second of queued work.
    pub fn datacenter() -> Self {
        NetworkModel {
            top_service: Bandwidth::units_per_sec(12_500_000),
            intermediate_service: Bandwidth::units_per_sec(5_000_000),
            rack_service: Bandwidth::units_per_sec(1_250_000),
            hop_latency: Latency::from_micros(5),
            collapse_threshold: Latency::from_secs(1),
        }
    }

    /// Whether this is the degenerate unit-count model.
    pub fn is_infinite(&self) -> bool {
        self.top_service.is_infinite()
            && self.intermediate_service.is_infinite()
            && self.rack_service.is_infinite()
            && self.hop_latency == Latency::ZERO
    }
}

impl Default for NetworkModel {
    fn default() -> Self {
        NetworkModel::infinite()
    }
}

/// Number of buckets in a [`LatencyHistogram`]: 8 exact low buckets plus
/// 8 sub-buckets per power of two up to `u64::MAX` nanoseconds.
const HISTOGRAM_BUCKETS: usize = 512;

/// A fixed-footprint log-scale latency histogram (HDR-histogram style:
/// 3 significant bits per power of two, ≤ 12.5% relative bucket width).
///
/// Recording is O(1) with no allocation, so the simulator can take one
/// sample per request on the zero-allocation hot path; percentiles are read
/// at report time as the upper bound of the bucket containing the requested
/// rank.
///
/// # Example
///
/// ```
/// use dynasore_types::{Latency, LatencyHistogram};
///
/// let mut h = LatencyHistogram::new();
/// for us in 1..=100 {
///     h.record(Latency::from_micros(us));
/// }
/// assert_eq!(h.len(), 100);
/// assert!(h.percentile(0.50) >= Latency::from_micros(50));
/// assert!(h.percentile(0.50) <= Latency::from_micros(57)); // ≤12.5% over
/// assert_eq!(h.max(), Latency::from_micros(100));
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct LatencyHistogram {
    counts: [u64; HISTOGRAM_BUCKETS],
    total: u64,
    max: Latency,
}

impl LatencyHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            counts: [0; HISTOGRAM_BUCKETS],
            total: 0,
            max: Latency::ZERO,
        }
    }

    fn bucket_of(nanos: u64) -> usize {
        if nanos < 8 {
            nanos as usize
        } else {
            let log2 = 63 - nanos.leading_zeros() as u64; // ≥ 3
            let minor = (nanos >> (log2 - 3)) & 0b111;
            ((log2 - 3) * 8 + 8 + minor) as usize
        }
    }

    /// Upper bound of a bucket: the largest nanosecond value mapping to it.
    fn bucket_upper_bound(bucket: usize) -> u64 {
        if bucket < 8 {
            bucket as u64
        } else {
            let log2 = (bucket as u64 - 8) / 8 + 3;
            let minor = (bucket as u64 - 8) % 8;
            let low = (1u64 << log2) + minor * (1u64 << (log2 - 3));
            low + (1u64 << (log2 - 3)) - 1
        }
    }

    /// Records one sample.
    pub fn record(&mut self, latency: Latency) {
        self.counts[Self::bucket_of(latency.as_nanos())] += 1;
        self.total += 1;
        if latency > self.max {
            self.max = latency;
        }
    }

    /// Number of samples recorded.
    pub fn len(&self) -> u64 {
        self.total
    }

    /// Whether no sample was recorded yet.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// The exact maximum sample (not bucketed). Zero when empty.
    pub fn max(&self) -> Latency {
        self.max
    }

    /// The latency below which a fraction `p` in `[0, 1]` of the samples
    /// fall, reported as the upper bound of the bucket containing that rank
    /// (≤ 12.5% above the true value). Zero when the histogram is empty.
    pub fn percentile(&self, p: f64) -> Latency {
        if self.total == 0 {
            return Latency::ZERO;
        }
        let p = p.clamp(0.0, 1.0);
        let rank = ((p * self.total as f64).ceil() as u64).max(1);
        let mut cumulative = 0u64;
        for (bucket, &count) in self.counts.iter().enumerate() {
            cumulative += count;
            if cumulative >= rank {
                // Never report past the true maximum.
                return Latency::from_nanos(Self::bucket_upper_bound(bucket)).min(self.max);
            }
        }
        self.max
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (mine, theirs) in self.counts.iter_mut().zip(other.counts.iter()) {
            *mine += theirs;
        }
        self.total += other.total;
        if other.max > self.max {
            self.max = other.max;
        }
    }
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram::new()
    }
}

impl fmt::Debug for LatencyHistogram {
    /// Compact rendering: the 512 raw buckets would drown every report
    /// debug dump, so print the derived quantities (which still pin the
    /// byte-identity of two runs — equal histograms render equally, and
    /// diverging ones differ in at least count/percentile/max).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LatencyHistogram")
            .field("samples", &self.total)
            .field("p50", &self.percentile(0.50))
            .field("p95", &self.percentile(0.95))
            .field("p99", &self.percentile(0.99))
            .field("max", &self.max)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_construction_and_arithmetic() {
        assert_eq!(Latency::from_secs(1).as_nanos(), NANOS_PER_SEC);
        assert_eq!(Latency::from_millis(2).as_nanos(), 2_000_000);
        assert_eq!(Latency::from_micros(3).as_nanos(), 3_000);
        let mut l = Latency::from_nanos(5) + Latency::from_nanos(7);
        l += Latency::from_nanos(1);
        assert_eq!(l.as_nanos(), 13);
        assert_eq!(
            Latency::from_nanos(5).saturating_sub(Latency::from_nanos(9)),
            Latency::ZERO
        );
        assert!((Latency::from_millis(1).as_secs_f64() - 0.001).abs() < 1e-12);
        assert!((Latency::from_micros(1_500).as_millis_f64() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn latency_display_scales_units() {
        assert_eq!(Latency::from_nanos(999).to_string(), "999ns");
        assert_eq!(Latency::from_nanos(5_250).to_string(), "5.250us");
        assert_eq!(Latency::from_micros(1_500).to_string(), "1.500ms");
        assert_eq!(Latency::from_millis(2_030).to_string(), "2.030s");
    }

    #[test]
    fn bandwidth_service_quantum() {
        assert_eq!(Bandwidth::units_per_sec(1_000).ns_per_unit(), 1_000_000);
        assert_eq!(Bandwidth::INFINITE.ns_per_unit(), 0);
        assert!(Bandwidth::INFINITE.is_infinite());
        assert!(!Bandwidth::units_per_sec(5).is_infinite());
        // Finite rates never quantize to a zero service time: a finite
        // model must keep its queue bookkeeping.
        assert_eq!(Bandwidth::units_per_sec(2_000_000_000).ns_per_unit(), 1);
        assert_eq!(Bandwidth::units_per_sec(u64::MAX - 1).ns_per_unit(), 1);
        // In-between rates round to nearest rather than truncating.
        assert_eq!(Bandwidth::units_per_sec(600_000_000).ns_per_unit(), 2);
        assert_eq!(Bandwidth::units_per_sec(7).to_string(), "7u/s");
        assert_eq!(Bandwidth::INFINITE.to_string(), "inf");
    }

    #[test]
    #[should_panic(expected = "service rate must be positive")]
    fn zero_bandwidth_is_rejected() {
        Bandwidth::units_per_sec(0);
    }

    #[test]
    fn model_infinite_and_datacenter() {
        let inf = NetworkModel::infinite();
        assert!(inf.is_infinite());
        assert_eq!(NetworkModel::default(), inf);
        let dc = NetworkModel::datacenter();
        assert!(!dc.is_infinite());
        assert!(dc.top_service > dc.intermediate_service);
        assert!(dc.intermediate_service > dc.rack_service);
        // A nonzero hop latency alone makes the model finite.
        let mut hop_only = NetworkModel::infinite();
        hop_only.hop_latency = Latency::from_micros(1);
        assert!(!hop_only.is_infinite());
    }

    #[test]
    fn histogram_buckets_are_exact_below_16ns() {
        for ns in 0..16u64 {
            assert_eq!(
                LatencyHistogram::bucket_upper_bound(LatencyHistogram::bucket_of(ns)),
                ns
            );
        }
    }

    #[test]
    fn histogram_bucket_bounds_are_consistent() {
        // Every bucket's upper bound maps back to the same bucket, and the
        // next nanosecond maps to the next bucket.
        for ns in [
            1u64,
            7,
            8,
            15,
            16,
            100,
            1_000,
            4_095,
            1 << 20,
            123_456_789,
            u64::MAX / 2,
        ] {
            let b = LatencyHistogram::bucket_of(ns);
            let hi = LatencyHistogram::bucket_upper_bound(b);
            assert!(hi >= ns, "upper bound below sample for {ns}");
            assert_eq!(LatencyHistogram::bucket_of(hi), b, "bound moved bucket");
            // ≤12.5% relative width.
            assert!(
                hi as f64 <= ns as f64 * 1.125 + 1.0,
                "bucket too wide at {ns}"
            );
        }
    }

    #[test]
    fn histogram_percentiles_bound_the_true_rank() {
        let mut h = LatencyHistogram::new();
        for us in 1..=1_000u64 {
            h.record(Latency::from_micros(us));
        }
        assert_eq!(h.len(), 1_000);
        assert!(!h.is_empty());
        for (p, true_value) in [(0.50, 500_000u64), (0.95, 950_000), (0.99, 990_000)] {
            let got = h.percentile(p).as_nanos();
            assert!(got >= true_value, "p{p}: {got} < {true_value}");
            assert!(
                got as f64 <= true_value as f64 * 1.125,
                "p{p}: {got} too far above {true_value}"
            );
        }
        assert_eq!(h.percentile(1.0), Latency::from_micros(1_000));
        assert_eq!(h.max(), Latency::from_micros(1_000));
        assert_eq!(LatencyHistogram::new().percentile(0.5), Latency::ZERO);
    }

    #[test]
    fn histogram_merge_combines_samples() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        a.record(Latency::from_micros(10));
        b.record(Latency::from_micros(20));
        b.record(Latency::from_micros(30));
        a.merge(&b);
        assert_eq!(a.len(), 3);
        assert_eq!(a.max(), Latency::from_micros(30));
        let mut all = LatencyHistogram::new();
        all.record(Latency::from_micros(10));
        all.record(Latency::from_micros(20));
        all.record(Latency::from_micros(30));
        assert_eq!(a, all);
    }

    #[test]
    fn histogram_debug_is_compact() {
        let mut h = LatencyHistogram::new();
        h.record(Latency::from_micros(5));
        let dbg = format!("{h:?}");
        assert!(dbg.contains("samples: 1"), "{dbg}");
        assert!(!dbg.contains("counts"), "{dbg}");
    }
}
