//! Traffic units and message classes.
//!
//! The paper's simulator assumes that *"each application message, i.e.,
//! read, write request and their answer, is 10 times longer than a protocol
//! message"* (§4.3). All traffic accounting in this workspace therefore
//! measures messages in abstract **traffic units**, with an application
//! message worth [`APP_MESSAGE_UNITS`] and a protocol message worth
//! [`PROTOCOL_MESSAGE_UNITS`].

/// Size of an application message (request/response carrying view data), in
/// traffic units.
pub const APP_MESSAGE_UNITS: u64 = 10;

/// Size of a protocol/system message (replication control, notifications,
/// threshold piggybacking), in traffic units.
pub const PROTOCOL_MESSAGE_UNITS: u64 = 1;

/// Number of protocol messages modelling the transfer of one view's data
/// when a replica is created, migrated or recovered. A view transfer carries
/// as much data as an application message (10 protocol units), but it is
/// *system* traffic, so it is accounted as protocol messages (cf. Figure 6,
/// which separates application from system traffic). Shared by every engine
/// so replica creation, drain migration and persistent-tier recovery all
/// cost the same.
pub const VIEW_TRANSFER_PROTOCOL_MESSAGES: usize = 10;

/// Accumulated traffic, in abstract units.
pub type TrafficUnits = u64;

/// Classification of a message for accounting purposes.
///
/// The convergence experiment of the paper (Fig. 6) separates *application
/// traffic* (reads/writes and their answers) from *system traffic* (replica
/// creation, migration and other protocol messages), so the class is tracked
/// alongside every message.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MessageClass {
    /// A read/write request or its answer; carries user data.
    Application,
    /// A control message of the placement protocol; carries no user data.
    Protocol,
}

impl MessageClass {
    /// The size of one message of this class, in traffic units.
    pub fn units(self) -> TrafficUnits {
        match self {
            MessageClass::Application => APP_MESSAGE_UNITS,
            MessageClass::Protocol => PROTOCOL_MESSAGE_UNITS,
        }
    }

    /// Returns `true` for application messages.
    pub fn is_application(self) -> bool {
        matches!(self, MessageClass::Application)
    }
}

impl std::fmt::Display for MessageClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MessageClass::Application => write!(f, "application"),
            MessageClass::Protocol => write!(f, "protocol"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn application_messages_are_ten_times_protocol_messages() {
        assert_eq!(APP_MESSAGE_UNITS, 10 * PROTOCOL_MESSAGE_UNITS);
        assert_eq!(MessageClass::Application.units(), 10);
        assert_eq!(MessageClass::Protocol.units(), 1);
    }

    #[test]
    fn class_predicates_and_display() {
        assert!(MessageClass::Application.is_application());
        assert!(!MessageClass::Protocol.is_application());
        assert_eq!(MessageClass::Application.to_string(), "application");
        assert_eq!(MessageClass::Protocol.to_string(), "protocol");
    }
}
