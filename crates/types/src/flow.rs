//! Serving-plane primitives: typed response status codes and monotone
//! per-user flow budgets.
//!
//! Both types live in the bottom layer because the observability tables in
//! [`crate::obs`] fold served-envelope trace events into metrics (they need
//! [`StatusCode`]) and because budgets are plain data a gossip or
//! replication layer may want to ship between processes without pulling in
//! the serving crate.
//!
//! # Flow budgets
//!
//! A [`FlowBudget`] is a pair of counters with lattice merge semantics:
//! `limit` is a *meet* (merges take the minimum — a budget can only get
//! stricter) and `spent` is a *join* (merges take the maximum — work already
//! charged is never forgotten). Merging is therefore commutative,
//! associative and idempotent: any number of replicas exchanging budgets in
//! any order converge to the same ledger, and no interleaving can un-spend a
//! charge or re-loosen a tightened limit.

/// Typed status of a served request envelope.
///
/// The mapping discipline (borrowed from harmony's 401-vs-500 rule): only a
/// genuine credential failure maps to [`StatusCode::Unauthorized`], only an
/// exhausted flow budget maps to [`StatusCode::Throttled`]; a stage that
/// fails for any internal reason — bad configuration, a poisoned lock, a
/// transform bug — must surface as [`StatusCode::Internal`] so operators
/// never chase an auth incident that is actually a deployment bug.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum StatusCode {
    /// The request was served.
    Ok,
    /// Credential check failed (missing or invalid token).
    Unauthorized,
    /// The requested user does not exist in the social graph.
    NotFound,
    /// The caller's flow budget is exhausted; retry after the next epoch.
    Throttled,
    /// Admission control rejected the request: the cluster is over its
    /// configured load ceiling.
    Overloaded,
    /// The service is draining or shut down; the request was not attempted.
    Unavailable,
    /// A middleware stage or the backend failed internally.
    Internal,
}

impl StatusCode {
    /// Whether the envelope was served successfully.
    #[must_use]
    pub fn is_success(self) -> bool {
        self == StatusCode::Ok
    }

    /// Stable kebab-case name, used in trace JSON and metrics labels.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            StatusCode::Ok => "ok",
            StatusCode::Unauthorized => "unauthorized",
            StatusCode::NotFound => "not-found",
            StatusCode::Throttled => "throttled",
            StatusCode::Overloaded => "overloaded",
            StatusCode::Unavailable => "unavailable",
            StatusCode::Internal => "internal",
        }
    }

    /// The closest HTTP status equivalent, for transports that speak HTTP.
    #[must_use]
    pub fn http_equivalent(self) -> u16 {
        match self {
            StatusCode::Ok => 200,
            StatusCode::Unauthorized => 401,
            StatusCode::NotFound => 404,
            StatusCode::Throttled => 429,
            StatusCode::Overloaded | StatusCode::Unavailable => 503,
            StatusCode::Internal => 500,
        }
    }
}

impl std::fmt::Display for StatusCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A monotone per-user flow-budget ledger.
///
/// `limit` is the cap on cumulative charged cost and only ever decreases
/// ([`FlowBudget::restrict`], merge takes the min); `spent` is cumulative
/// charged cost and only ever increases ([`FlowBudget::charge`], merge takes
/// the max). Determinism follows: the ledger's state is a pure function of
/// the *set* of charges and restrictions applied, not their order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FlowBudget {
    limit: u64,
    spent: u64,
}

impl FlowBudget {
    /// A fresh ledger with `limit` units of capacity and nothing spent.
    #[must_use]
    pub fn new(limit: u64) -> Self {
        FlowBudget { limit, spent: 0 }
    }

    /// The current cap on cumulative charged cost.
    #[must_use]
    pub fn limit(&self) -> u64 {
        self.limit
    }

    /// Cumulative cost charged so far.
    #[must_use]
    pub fn spent(&self) -> u64 {
        self.spent
    }

    /// Capacity still available: `limit - spent`, saturating at zero (a
    /// merge may pull `limit` below an already-charged `spent`).
    #[must_use]
    pub fn remaining(&self) -> u64 {
        self.limit.saturating_sub(self.spent)
    }

    /// Whether no further non-zero charge can succeed.
    #[must_use]
    pub fn exhausted(&self) -> bool {
        self.remaining() == 0
    }

    /// Attempts to charge `cost` units. Succeeds — and records the spend —
    /// only if the whole charge fits under the limit; a failed charge
    /// changes nothing, so callers reject the request *before* any engine
    /// message is produced.
    #[must_use]
    pub fn charge(&mut self, cost: u64) -> bool {
        match self.spent.checked_add(cost) {
            Some(total) if total <= self.limit => {
                self.spent = total;
                true
            }
            _ => false,
        }
    }

    /// Tightens the limit to `min(limit, new_limit)`. Limits are a meet
    /// semilattice: they can only become stricter.
    pub fn restrict(&mut self, new_limit: u64) {
        self.limit = self.limit.min(new_limit);
    }

    /// Merges a replica's ledger: `limit` takes the min (strictest cap
    /// wins), `spent` takes the max (no charge is ever forgotten).
    /// Commutative, associative and idempotent.
    pub fn merge(&mut self, other: &FlowBudget) {
        self.limit = self.limit.min(other.limit);
        self.spent = self.spent.max(other.spent);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn status_code_names_and_http() {
        let all = [
            (StatusCode::Ok, "ok", 200),
            (StatusCode::Unauthorized, "unauthorized", 401),
            (StatusCode::NotFound, "not-found", 404),
            (StatusCode::Throttled, "throttled", 429),
            (StatusCode::Overloaded, "overloaded", 503),
            (StatusCode::Unavailable, "unavailable", 503),
            (StatusCode::Internal, "internal", 500),
        ];
        for (code, name, http) in all {
            assert_eq!(code.as_str(), name);
            assert_eq!(code.to_string(), name);
            assert_eq!(code.http_equivalent(), http);
            assert_eq!(code.is_success(), code == StatusCode::Ok);
        }
    }

    #[test]
    fn charge_is_all_or_nothing() {
        let mut b = FlowBudget::new(10);
        assert!(b.charge(4));
        assert!(b.charge(6));
        assert!(b.exhausted());
        // A failed charge leaves the ledger untouched.
        assert!(!b.charge(1));
        assert_eq!(b.spent(), 10);
        assert_eq!(b.remaining(), 0);
        // Zero-cost charges still succeed at the limit.
        assert!(b.charge(0));
    }

    #[test]
    fn charge_rejects_overflowing_cost() {
        let mut b = FlowBudget::new(u64::MAX);
        assert!(b.charge(u64::MAX - 1));
        assert!(!b.charge(u64::MAX));
        assert_eq!(b.spent(), u64::MAX - 1);
    }

    #[test]
    fn merge_takes_min_limit_max_spent() {
        let mut a = FlowBudget::new(100);
        assert!(a.charge(30));
        let mut b = FlowBudget::new(50);
        assert!(b.charge(40));
        a.merge(&b);
        assert_eq!(a.limit(), 50);
        assert_eq!(a.spent(), 40);
        // Idempotent.
        let before = a;
        a.merge(&b);
        assert_eq!(a, before);
    }

    #[test]
    fn merge_can_pull_limit_below_spent() {
        let mut a = FlowBudget::new(100);
        assert!(a.charge(80));
        a.merge(&FlowBudget::new(10));
        assert_eq!(a.remaining(), 0);
        assert!(a.exhausted());
        assert!(!a.charge(1));
    }

    #[test]
    fn restrict_never_loosens() {
        let mut b = FlowBudget::new(20);
        b.restrict(50);
        assert_eq!(b.limit(), 20);
        b.restrict(5);
        assert_eq!(b.limit(), 5);
    }
}
