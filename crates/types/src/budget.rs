//! Memory-budget arithmetic.
//!
//! The paper expresses the cluster's memory capacity relative to the minimum
//! needed to hold every view exactly once: *"Given V the set of views in the
//! system, and b the amount of memory required to store a single view, the
//! system has x% extra memory if its total memory capacity is
//! (1 + x/100) × |V| × b"* (§2.3). Server capacity is expressed as a number
//! of view slots.

use crate::{Error, Result};

/// The cluster-wide memory budget, in view slots.
///
/// # Example
///
/// ```
/// use dynasore_types::MemoryBudget;
///
/// // 10_000 views, 50% extra memory, spread over 225 servers.
/// let budget = MemoryBudget::with_extra_percent(10_000, 50);
/// assert_eq!(budget.total_slots(), 15_000);
/// let per_server = budget.slots_per_server(225).unwrap();
/// assert!(per_server * 225 >= budget.total_slots());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MemoryBudget {
    view_count: usize,
    extra_percent: u32,
}

impl MemoryBudget {
    /// Creates a budget for `view_count` distinct views with `extra_percent`
    /// percent of additional capacity available for replication.
    pub fn with_extra_percent(view_count: usize, extra_percent: u32) -> Self {
        MemoryBudget {
            view_count,
            extra_percent,
        }
    }

    /// Creates the minimal budget: exactly one slot per view, no replication
    /// headroom (`x = 0%`).
    pub fn exact(view_count: usize) -> Self {
        MemoryBudget::with_extra_percent(view_count, 0)
    }

    /// The number of distinct views the budget accounts for.
    pub fn view_count(&self) -> usize {
        self.view_count
    }

    /// The extra-memory percentage `x`.
    pub fn extra_percent(&self) -> u32 {
        self.extra_percent
    }

    /// Total number of view slots in the cluster:
    /// `floor((1 + x/100) × |V|)`, saturating at `usize::MAX`.
    pub fn total_slots(&self) -> usize {
        self.view_count.saturating_add(self.extra_slots())
    }

    /// Number of slots available beyond one copy of every view, saturating
    /// at `usize::MAX` (the intermediate product is computed in 128 bits, so
    /// no combination of inputs can wrap).
    pub fn extra_slots(&self) -> usize {
        let raw = self.view_count as u128 * self.extra_percent as u128 / 100;
        usize::try_from(raw).unwrap_or(usize::MAX)
    }

    /// Splits the total budget evenly across `server_count` servers, rounding
    /// up so the cluster capacity is never below the budget.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] if `server_count` is zero, or if the
    /// resulting per-server capacity would be zero (a cluster that cannot
    /// even store one view per server is rejected, matching the paper's
    /// exclusion of the trivial under-provisioned case in §2.3).
    pub fn slots_per_server(&self, server_count: usize) -> Result<usize> {
        if server_count == 0 {
            return Err(Error::invalid_config("server_count must be positive"));
        }
        let per_server = self.total_slots().div_ceil(server_count);
        if per_server == 0 {
            return Err(Error::invalid_config(
                "memory budget is too small: zero slots per server",
            ));
        }
        Ok(per_server)
    }

    /// Average number of replicas per view this budget allows,
    /// `(1 + x/100)`, as a floating-point number.
    pub fn average_replication_factor(&self) -> f64 {
        1.0 + self.extra_percent as f64 / 100.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_budget_has_no_extra_slots() {
        let b = MemoryBudget::exact(500);
        assert_eq!(b.view_count(), 500);
        assert_eq!(b.extra_percent(), 0);
        assert_eq!(b.extra_slots(), 0);
        assert_eq!(b.total_slots(), 500);
        assert!((b.average_replication_factor() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn extra_percent_rounds_down() {
        let b = MemoryBudget::with_extra_percent(1_001, 30);
        // 1001 * 0.3 = 300.3 -> 300 extra slots.
        assert_eq!(b.extra_slots(), 300);
        assert_eq!(b.total_slots(), 1_301);
    }

    #[test]
    fn paper_configurations() {
        // x = 100% doubles capacity (views can be replicated twice on
        // average), x = 200% triples it.
        let b100 = MemoryBudget::with_extra_percent(10_000, 100);
        assert_eq!(b100.total_slots(), 20_000);
        let b200 = MemoryBudget::with_extra_percent(10_000, 200);
        assert_eq!(b200.total_slots(), 30_000);
        assert!((b200.average_replication_factor() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn per_server_slots_round_up() {
        let b = MemoryBudget::with_extra_percent(1_000, 0);
        // 1000 slots over 7 servers -> ceil(142.85) = 143.
        assert_eq!(b.slots_per_server(7).unwrap(), 143);
        assert!(b.slots_per_server(7).unwrap() * 7 >= b.total_slots());
    }

    #[test]
    fn per_server_slots_reject_bad_configs() {
        let b = MemoryBudget::exact(10);
        assert!(b.slots_per_server(0).is_err());
        let empty = MemoryBudget::exact(0);
        assert!(empty.slots_per_server(5).is_err());
    }

    #[test]
    fn large_budget_does_not_overflow() {
        let b = MemoryBudget::with_extra_percent(usize::MAX / 4, 200);
        // Must not panic.
        let _ = b.extra_slots();
    }
}
