//! The interface between the simulator and a view-placement strategy.
//!
//! These types sit in the bottom layer on purpose: the placement engines
//! (`dynasore-core`, `dynasore-baselines`) implement [`PlacementEngine`] and
//! the simulator (`dynasore-sim`, two layers above) drives it, so the trait
//! must live below both to keep the dependency DAG acyclic and strictly
//! layered.

use crate::{MachineId, MessageClass, SimTime, UserId};

/// A timed modification of the social graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GraphMutation {
    /// `follower` starts following `followee`.
    AddEdge {
        /// The user adding the connection.
        follower: UserId,
        /// The user being followed.
        followee: UserId,
    },
    /// `follower` stops following `followee`.
    RemoveEdge {
        /// The user removing the connection.
        follower: UserId,
        /// The user being unfollowed.
        followee: UserId,
    },
}

/// A message exchanged between two machines of the cluster, to be charged to
/// every switch on the path between them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Message {
    /// The sending machine.
    pub from: MachineId,
    /// The receiving machine.
    pub to: MachineId,
    /// Application (carries view data, 10 units) or protocol (control, 1
    /// unit).
    pub class: MessageClass,
}

impl Message {
    /// Creates an application message (read/write request or answer).
    pub fn application(from: MachineId, to: MachineId) -> Self {
        Message {
            from,
            to,
            class: MessageClass::Application,
        }
    }

    /// Creates a protocol message (replica management, notifications,
    /// threshold piggybacking).
    pub fn protocol(from: MachineId, to: MachineId) -> Self {
        Message {
            from,
            to,
            class: MessageClass::Protocol,
        }
    }

    /// Whether the message stays on one machine (and therefore crosses no
    /// switch).
    pub fn is_local(&self) -> bool {
        self.from == self.to
    }
}

/// Aggregate memory usage of all view servers of an engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MemoryUsage {
    /// View slots currently occupied (primary copies + replicas).
    pub used_slots: usize,
    /// Total view slots available across all servers.
    pub capacity_slots: usize,
}

impl MemoryUsage {
    /// Occupancy as a fraction in `[0, 1]` (0 when capacity is unknown).
    pub fn occupancy(&self) -> f64 {
        if self.capacity_slots == 0 {
            0.0
        } else {
            self.used_slots as f64 / self.capacity_slots as f64
        }
    }
}

/// A consumer of the messages a [`PlacementEngine`] emits.
///
/// Engines hand each message to the sink the moment it is generated, so the
/// driver can account for it inline (charge switches, count classes) without
/// the engine ever materializing a message buffer. `Vec<Message>` implements
/// the trait by pushing, which keeps unit tests and ad-hoc drivers
/// ergonomic: any call site that used to pass `&mut Vec<Message>` still
/// compiles unchanged.
pub trait TrafficSink {
    /// Accepts one message.
    fn record(&mut self, message: Message);
}

impl TrafficSink for Vec<Message> {
    #[inline]
    fn record(&mut self, message: Message) {
        self.push(message);
    }
}

/// A view-placement strategy driven by the simulator.
///
/// Implementations decide, for every request, which broker executes it and
/// which servers are contacted, and report the messages this generates.
/// Dynamic strategies (DynaSoRe, SPAR) additionally mutate their internal
/// placement state and emit protocol messages for replica creation,
/// migration, eviction and routing-table maintenance.
pub trait PlacementEngine {
    /// A short human-readable name used in reports ("random", "spar",
    /// "dynasore-from-hmetis", …).
    fn name(&self) -> &str;

    /// Executes a read request issued by `user` for the views of `targets`
    /// at simulated time `time`, reporting every generated message to `out`.
    fn handle_read(
        &mut self,
        user: UserId,
        targets: &[UserId],
        time: SimTime,
        out: &mut dyn TrafficSink,
    );

    /// Executes a write request issued by `user` at simulated time `time`,
    /// reporting every generated message to `out`.
    fn handle_write(&mut self, user: UserId, time: SimTime, out: &mut dyn TrafficSink);

    /// Periodic maintenance hook, called by the simulator at a fixed
    /// interval (hourly by default): rotate access counters, refresh
    /// admission thresholds, run eviction sweeps. Maintenance traffic goes
    /// to `out`.
    fn on_tick(&mut self, _time: SimTime, _out: &mut dyn TrafficSink) {}

    /// Notification that the social graph changed (an edge was added or
    /// removed), e.g. during a flash event. Engines that place views based
    /// on the graph structure (SPAR) react here.
    fn on_graph_change(
        &mut self,
        _mutation: GraphMutation,
        _time: SimTime,
        _out: &mut dyn TrafficSink,
    ) {
    }

    /// Number of replicas of `user`'s view currently stored (≥ 1 for every
    /// known user). Used by the flash-event experiment (Figure 5).
    fn replica_count(&self, user: UserId) -> usize;

    /// Aggregate memory usage across all servers.
    fn memory_usage(&self) -> MemoryUsage;
}

impl<T: PlacementEngine + ?Sized> PlacementEngine for Box<T> {
    fn name(&self) -> &str {
        (**self).name()
    }

    fn handle_read(
        &mut self,
        user: UserId,
        targets: &[UserId],
        time: SimTime,
        out: &mut dyn TrafficSink,
    ) {
        (**self).handle_read(user, targets, time, out);
    }

    fn handle_write(&mut self, user: UserId, time: SimTime, out: &mut dyn TrafficSink) {
        (**self).handle_write(user, time, out);
    }

    fn on_tick(&mut self, time: SimTime, out: &mut dyn TrafficSink) {
        (**self).on_tick(time, out);
    }

    fn on_graph_change(
        &mut self,
        mutation: GraphMutation,
        time: SimTime,
        out: &mut dyn TrafficSink,
    ) {
        (**self).on_graph_change(mutation, time, out);
    }

    fn replica_count(&self, user: UserId) -> usize {
        (**self).replica_count(user)
    }

    fn memory_usage(&self) -> MemoryUsage {
        (**self).memory_usage()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn message_constructors() {
        let a = MachineId::new(1);
        let b = MachineId::new(2);
        let app = Message::application(a, b);
        let proto = Message::protocol(b, a);
        assert_eq!(app.class, MessageClass::Application);
        assert_eq!(proto.class, MessageClass::Protocol);
        assert!(!app.is_local());
        assert!(Message::application(a, a).is_local());
    }

    #[test]
    fn vec_sink_collects_messages() {
        let a = MachineId::new(1);
        let b = MachineId::new(2);
        let mut out: Vec<Message> = Vec::new();
        let sink: &mut dyn TrafficSink = &mut out;
        sink.record(Message::application(a, b));
        sink.record(Message::protocol(b, a));
        assert_eq!(out.len(), 2);
        assert_eq!(out[0], Message::application(a, b));
        assert_eq!(out[1], Message::protocol(b, a));
    }

    #[test]
    fn memory_usage_occupancy() {
        let m = MemoryUsage {
            used_slots: 30,
            capacity_slots: 120,
        };
        assert!((m.occupancy() - 0.25).abs() < 1e-12);
        assert_eq!(MemoryUsage::default().occupancy(), 0.0);
    }
}
