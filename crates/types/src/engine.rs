//! The interface between the simulator and a view-placement strategy.
//!
//! These types sit in the bottom layer on purpose: the placement engines
//! (`dynasore-core`, `dynasore-baselines`) implement [`PlacementEngine`] and
//! the simulator (`dynasore-sim`, two layers above) drives it, so the trait
//! must live below both to keep the dependency DAG acyclic and strictly
//! layered.

use crate::{Latency, MachineId, MessageClass, RackId, SimTime, SubtreeId, TraceEventKind, UserId};

/// A change of the cluster itself: machines failing, recovering, being
/// drained for maintenance, or capacity being added while the system runs.
///
/// The paper's design makes cache servers disposable — the durable backing
/// store can regenerate any view (§3.3) — so the interesting questions are
/// *how much recovery traffic* a failure causes and *how fast* the placement
/// re-converges. These events are scheduled in a simulation (alongside graph
/// mutations) or applied to a live store, and delivered to every
/// [`PlacementEngine`] through
/// [`PlacementEngine::on_cluster_change`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClusterEvent {
    /// A machine crashes: its cached views and proxies are lost instantly.
    MachineDown {
        /// The failing machine.
        machine: MachineId,
    },
    /// A previously failed machine rejoins with an empty cache.
    MachineUp {
        /// The recovering machine.
        machine: MachineId,
    },
    /// A whole rack fails at once (correlated failure: shared switch or
    /// power domain).
    RackDown {
        /// The failing rack.
        rack: RackId,
    },
    /// A previously failed rack rejoins, all machines empty.
    RackUp {
        /// The recovering rack.
        rack: RackId,
    },
    /// A machine is gracefully taken out of service: its state is migrated
    /// to live machines *before* it stops, so no recovery from the
    /// persistent tier is needed.
    DrainMachine {
        /// The machine being drained.
        machine: MachineId,
    },
    /// A new rack of machines (same shape as the existing racks) is added to
    /// the cluster, growing its capacity while it serves traffic.
    AddRack,
    /// A rack is permanently decommissioned while the cluster serves
    /// traffic (elastic shrink, the reverse of [`AddRack`](Self::AddRack)).
    /// Engines evacuate every replica and master stored on the rack to the
    /// surviving machines *before* the rack disappears — the same graceful
    /// ladder as [`DrainMachine`](Self::DrainMachine) — and the rack can
    /// never rejoin: a retired rack ignores
    /// [`RackUp`](Self::RackUp)/[`MachineUp`](Self::MachineUp).
    RemoveRack {
        /// The rack being decommissioned.
        rack: RackId,
    },
}

impl std::fmt::Display for ClusterEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClusterEvent::MachineDown { machine } => write!(f, "machine-down {machine}"),
            ClusterEvent::MachineUp { machine } => write!(f, "machine-up {machine}"),
            ClusterEvent::RackDown { rack } => write!(f, "rack-down {rack}"),
            ClusterEvent::RackUp { rack } => write!(f, "rack-up {rack}"),
            ClusterEvent::DrainMachine { machine } => write!(f, "drain {machine}"),
            ClusterEvent::AddRack => write!(f, "add-rack"),
            ClusterEvent::RemoveRack { rack } => write!(f, "remove-rack {rack}"),
        }
    }
}

/// A [`ClusterEvent`] scheduled at a specific simulation time — the unit of
/// a failure schedule, mirroring the `TimedMutation` of graph changes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimedClusterEvent {
    /// When the event takes effect.
    pub time: SimTime,
    /// The event itself.
    pub event: ClusterEvent,
}

/// A timed modification of the social graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GraphMutation {
    /// `follower` starts following `followee`.
    AddEdge {
        /// The user adding the connection.
        follower: UserId,
        /// The user being followed.
        followee: UserId,
    },
    /// `follower` stops following `followee`.
    RemoveEdge {
        /// The user removing the connection.
        follower: UserId,
        /// The user being unfollowed.
        followee: UserId,
    },
}

/// A message exchanged between two machines of the cluster, to be charged to
/// every switch on the path between them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Message {
    /// The sending machine.
    pub from: MachineId,
    /// The receiving machine.
    pub to: MachineId,
    /// Application (carries view data, 10 units) or protocol (control, 1
    /// unit).
    pub class: MessageClass,
}

impl Message {
    /// Creates an application message (read/write request or answer).
    pub fn application(from: MachineId, to: MachineId) -> Self {
        Message {
            from,
            to,
            class: MessageClass::Application,
        }
    }

    /// Creates a protocol message (replica management, notifications,
    /// threshold piggybacking).
    pub fn protocol(from: MachineId, to: MachineId) -> Self {
        Message {
            from,
            to,
            class: MessageClass::Protocol,
        }
    }

    /// Creates one protocol message of a view transfer from the persistent
    /// tier to `to` — the unit of recovery traffic after a cache-machine
    /// failure. The durable store attaches above the core switch, so this
    /// message crosses the top of the tree on its way down to `to`.
    pub fn persistent_fetch(to: MachineId) -> Self {
        Message {
            from: MachineId::PERSISTENT,
            to,
            class: MessageClass::Protocol,
        }
    }

    /// Whether this message involves the persistent tier (recovery or
    /// demand-fill traffic rather than cache-to-cache traffic).
    pub fn involves_persistent(&self) -> bool {
        self.from.is_persistent() || self.to.is_persistent()
    }

    /// Whether the message stays on one machine (and therefore crosses no
    /// switch).
    pub fn is_local(&self) -> bool {
        self.from == self.to
    }
}

/// Aggregate memory usage of all view servers of an engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MemoryUsage {
    /// View slots currently occupied (primary copies + replicas).
    pub used_slots: usize,
    /// Total view slots available across all servers.
    pub capacity_slots: usize,
}

impl MemoryUsage {
    /// Occupancy as a fraction in `[0, 1]` (0 when capacity is unknown).
    pub fn occupancy(&self) -> f64 {
        if self.capacity_slots == 0 {
            0.0
        } else {
            self.used_slots as f64 / self.capacity_slots as f64
        }
    }
}

/// A consumer of the messages a [`PlacementEngine`] emits.
///
/// Engines hand each message to the sink the moment it is generated, so the
/// driver can account for it inline (charge switches, count classes) without
/// the engine ever materializing a message buffer. `Vec<Message>` implements
/// the trait by pushing, which keeps unit tests and ad-hoc drivers
/// ergonomic: any call site that used to pass `&mut Vec<Message>` still
/// compiles unchanged.
pub trait TrafficSink {
    /// Accepts one message.
    fn record(&mut self, message: Message);

    /// Congestion feedback for the engine's placement decisions: the
    /// queueing delay currently pending at the switch that fronts `subtree`
    /// (its rack switch, intermediate switch, or the core for the whole
    /// cluster). Sinks that account messages against a time-aware
    /// [`crate::NetworkModel`] report real queue state here, letting engines
    /// steer replicas away from congested racks; the default — and every
    /// unit-count sink, `Vec<Message>` included — reports zero, which keeps
    /// placement decisions exactly as they were before the network model
    /// existed.
    fn congestion(&self, _subtree: SubtreeId) -> Latency {
        Latency::ZERO
    }

    /// Accepts one structured flight-recorder event describing a placement
    /// decision the engine just made (replica created/dropped/moved, cluster
    /// event applied, cache rebuilt). Engines emit these alongside the
    /// protocol messages of the same decision, so observability rides the
    /// existing sink plumbing with no extra parameters. The default — and
    /// every unit-count sink, `Vec<Message>` included — discards the event,
    /// which keeps the disabled-observability path zero-cost.
    fn trace(&mut self, _event: TraceEventKind) {}

    /// Moves the sink's notion of "now" forward. Batched drivers reuse one
    /// sink across many requests at different simulated times and call this
    /// before each request so time-bucketed accounting (traffic series)
    /// lands in the right bucket. Sinks built for a single instant — and
    /// every unit-count sink, `Vec<Message>` included — ignore it.
    fn set_time(&mut self, _time: SimTime) {}
}

impl TrafficSink for Vec<Message> {
    #[inline]
    fn record(&mut self, message: Message) {
        self.push(message);
    }
}

/// A view-placement strategy driven by the simulator.
///
/// Implementations decide, for every request, which broker executes it and
/// which servers are contacted, and report the messages this generates.
/// Dynamic strategies (DynaSoRe, SPAR) additionally mutate their internal
/// placement state and emit protocol messages for replica creation,
/// migration, eviction and routing-table maintenance.
pub trait PlacementEngine {
    /// A short human-readable name used in reports ("random", "spar",
    /// "dynasore-from-hmetis", …).
    fn name(&self) -> &str;

    /// Executes a read request issued by `user` for the views of `targets`
    /// at simulated time `time`, reporting every generated message to `out`.
    fn handle_read(
        &mut self,
        user: UserId,
        targets: &[UserId],
        time: SimTime,
        out: &mut dyn TrafficSink,
    );

    /// Executes a write request issued by `user` at simulated time `time`,
    /// reporting every generated message to `out`.
    fn handle_write(&mut self, user: UserId, time: SimTime, out: &mut dyn TrafficSink);

    /// Executes a batch of write requests, possibly in parallel, reporting
    /// each request's messages to one of `sinks` (the sink count is the
    /// driver's worker budget). Returns `true` when the engine executed the
    /// whole batch, `false` when it declines — the driver then replays the
    /// batch through [`handle_write`](Self::handle_write) one by one, so the
    /// default keeps every existing engine correct with zero changes.
    ///
    /// The contract for engines that accept: the observable outcome (engine
    /// state afterwards, and the multiset of messages across all sinks with
    /// each message recorded at its request's time via
    /// [`TrafficSink::set_time`]) must be byte-identical to calling
    /// `handle_write` serially in batch order. The simulator only offers
    /// batches whose accounting is order-independent (unit counting /
    /// infinite network model), so engines are free to split the batch
    /// across workers as long as per-request effects are preserved exactly.
    fn handle_write_batch(
        &mut self,
        writes: &[(UserId, SimTime)],
        sinks: &mut [&mut (dyn TrafficSink + Send)],
    ) -> bool {
        let _ = (writes, sinks);
        false
    }

    /// Periodic maintenance hook, called by the simulator at a fixed
    /// interval (hourly by default): rotate access counters, refresh
    /// admission thresholds, run eviction sweeps. Maintenance traffic goes
    /// to `out`.
    fn on_tick(&mut self, _time: SimTime, _out: &mut dyn TrafficSink) {}

    /// Notification that the social graph changed (an edge was added or
    /// removed), e.g. during a flash event. Engines that place views based
    /// on the graph structure (SPAR) react here.
    fn on_graph_change(
        &mut self,
        _mutation: GraphMutation,
        _time: SimTime,
        _out: &mut dyn TrafficSink,
    ) {
    }

    /// Notification that the cluster itself changed: a machine or rack
    /// failed or recovered, a machine is being drained, or capacity was
    /// added. Engines drop replicas lost to failures, re-create sole
    /// replicas from the persistent tier (reporting the recovery traffic to
    /// `out`), and absorb new capacity.
    ///
    /// The default is a no-op so custom engines keep compiling; such engines
    /// simply behave as if the cluster were static.
    fn on_cluster_change(
        &mut self,
        _event: ClusterEvent,
        _time: SimTime,
        _out: &mut dyn TrafficSink,
    ) {
    }

    /// Number of read targets the engine could not serve because the view
    /// had no live replica (cumulative over the engine's lifetime). Always 0
    /// for engines that never lose views — the default keeps custom engines
    /// compiling.
    fn unreachable_reads(&self) -> u64 {
        0
    }

    /// Number of replicas of `user`'s view currently stored (≥ 1 for every
    /// known user). Used by the flash-event experiment (Figure 5).
    fn replica_count(&self, user: UserId) -> usize;

    /// Aggregate memory usage across all servers.
    fn memory_usage(&self) -> MemoryUsage;
}

impl<T: PlacementEngine + ?Sized> PlacementEngine for Box<T> {
    fn name(&self) -> &str {
        (**self).name()
    }

    fn handle_read(
        &mut self,
        user: UserId,
        targets: &[UserId],
        time: SimTime,
        out: &mut dyn TrafficSink,
    ) {
        (**self).handle_read(user, targets, time, out);
    }

    fn handle_write(&mut self, user: UserId, time: SimTime, out: &mut dyn TrafficSink) {
        (**self).handle_write(user, time, out);
    }

    fn handle_write_batch(
        &mut self,
        writes: &[(UserId, SimTime)],
        sinks: &mut [&mut (dyn TrafficSink + Send)],
    ) -> bool {
        (**self).handle_write_batch(writes, sinks)
    }

    fn on_tick(&mut self, time: SimTime, out: &mut dyn TrafficSink) {
        (**self).on_tick(time, out);
    }

    fn on_graph_change(
        &mut self,
        mutation: GraphMutation,
        time: SimTime,
        out: &mut dyn TrafficSink,
    ) {
        (**self).on_graph_change(mutation, time, out);
    }

    fn on_cluster_change(&mut self, event: ClusterEvent, time: SimTime, out: &mut dyn TrafficSink) {
        (**self).on_cluster_change(event, time, out);
    }

    fn unreachable_reads(&self) -> u64 {
        (**self).unreachable_reads()
    }

    fn replica_count(&self, user: UserId) -> usize {
        (**self).replica_count(user)
    }

    fn memory_usage(&self) -> MemoryUsage {
        (**self).memory_usage()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn message_constructors() {
        let a = MachineId::new(1);
        let b = MachineId::new(2);
        let app = Message::application(a, b);
        let proto = Message::protocol(b, a);
        assert_eq!(app.class, MessageClass::Application);
        assert_eq!(proto.class, MessageClass::Protocol);
        assert!(!app.is_local());
        assert!(Message::application(a, a).is_local());
    }

    #[test]
    fn vec_sink_collects_messages() {
        let a = MachineId::new(1);
        let b = MachineId::new(2);
        let mut out: Vec<Message> = Vec::new();
        let sink: &mut dyn TrafficSink = &mut out;
        sink.record(Message::application(a, b));
        sink.record(Message::protocol(b, a));
        assert_eq!(out.len(), 2);
        assert_eq!(out[0], Message::application(a, b));
        assert_eq!(out[1], Message::protocol(b, a));
    }

    #[test]
    fn persistent_fetch_marks_recovery_traffic() {
        let m = MachineId::new(3);
        let fetch = Message::persistent_fetch(m);
        assert_eq!(fetch.class, MessageClass::Protocol);
        assert_eq!(fetch.from, MachineId::PERSISTENT);
        assert!(fetch.involves_persistent());
        assert!(!fetch.is_local());
        assert!(!Message::application(m, m).involves_persistent());
        assert!(MachineId::PERSISTENT.is_persistent());
        assert!(!m.is_persistent());
    }

    #[test]
    fn cluster_events_render_for_logs() {
        let m = MachineId::new(4);
        let r = RackId::new(2);
        assert_eq!(
            ClusterEvent::MachineDown { machine: m }.to_string(),
            "machine-down m4"
        );
        assert_eq!(
            ClusterEvent::MachineUp { machine: m }.to_string(),
            "machine-up m4"
        );
        assert_eq!(
            ClusterEvent::RackDown { rack: r }.to_string(),
            "rack-down rack2"
        );
        assert_eq!(
            ClusterEvent::RackUp { rack: r }.to_string(),
            "rack-up rack2"
        );
        assert_eq!(
            ClusterEvent::DrainMachine { machine: m }.to_string(),
            "drain m4"
        );
        assert_eq!(ClusterEvent::AddRack.to_string(), "add-rack");
        assert_eq!(
            ClusterEvent::RemoveRack { rack: r }.to_string(),
            "remove-rack rack2"
        );
        let timed = TimedClusterEvent {
            time: SimTime::from_secs(5),
            event: ClusterEvent::AddRack,
        };
        assert_eq!(timed, timed);
    }

    #[test]
    fn memory_usage_occupancy() {
        let m = MemoryUsage {
            used_slots: 30,
            capacity_slots: 120,
        };
        assert!((m.occupancy() - 0.25).abs() < 1e-12);
        assert_eq!(MemoryUsage::default().occupancy(), 0.0);
    }
}
