//! Simulated time.
//!
//! The simulator and every trace generator express time as whole seconds
//! from the start of the experiment. The paper's experiments span days
//! (rotating access counters shift every hour, traces last 2–14 days), so a
//! `u64` second counter is ample.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// Number of seconds in a minute.
pub const MINUTE_SECS: u64 = 60;
/// Number of seconds in an hour.
pub const HOUR_SECS: u64 = 3_600;
/// Number of seconds in a day.
pub const DAY_SECS: u64 = 86_400;

/// A point in simulated time, measured in seconds from the experiment start.
///
/// # Example
///
/// ```
/// use dynasore_types::SimTime;
///
/// let t = SimTime::from_days(2) + SimTime::from_hours(3);
/// assert_eq!(t.as_secs(), 2 * 86_400 + 3 * 3_600);
/// assert_eq!(t.whole_days(), 2);
/// assert_eq!(t.whole_hours(), 51);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// Time zero: the start of the experiment.
    pub const ZERO: SimTime = SimTime(0);

    /// Creates a time from a number of seconds.
    pub fn from_secs(secs: u64) -> Self {
        SimTime(secs)
    }

    /// Creates a time from a number of minutes.
    pub fn from_minutes(minutes: u64) -> Self {
        SimTime(minutes * MINUTE_SECS)
    }

    /// Creates a time from a number of hours.
    pub fn from_hours(hours: u64) -> Self {
        SimTime(hours * HOUR_SECS)
    }

    /// Creates a time from a number of days.
    pub fn from_days(days: u64) -> Self {
        SimTime(days * DAY_SECS)
    }

    /// Returns the number of whole seconds since the experiment start.
    pub fn as_secs(self) -> u64 {
        self.0
    }

    /// Returns the number of complete hours elapsed.
    pub fn whole_hours(self) -> u64 {
        self.0 / HOUR_SECS
    }

    /// Returns the number of complete days elapsed.
    pub fn whole_days(self) -> u64 {
        self.0 / DAY_SECS
    }

    /// Returns the fraction of the current day in `[0, 1)`, useful for
    /// diurnal (day/night) rate modulation.
    pub fn day_fraction(self) -> f64 {
        (self.0 % DAY_SECS) as f64 / DAY_SECS as f64
    }

    /// Saturating subtraction of two times, returning the difference in
    /// seconds.
    pub fn saturating_secs_since(self, earlier: SimTime) -> u64 {
        self.0.saturating_sub(earlier.0)
    }

    /// Returns the index of the time bucket of width `bucket_secs` that this
    /// instant falls in.
    ///
    /// # Panics
    ///
    /// Panics if `bucket_secs` is zero.
    pub fn bucket(self, bucket_secs: u64) -> u64 {
        assert!(bucket_secs > 0, "bucket width must be positive");
        self.0 / bucket_secs
    }
}

impl Add for SimTime {
    type Output = SimTime;

    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;

    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let days = self.whole_days();
        let rem = self.0 % DAY_SECS;
        let hours = rem / HOUR_SECS;
        let rem = rem % HOUR_SECS;
        let minutes = rem / MINUTE_SECS;
        let secs = rem % MINUTE_SECS;
        write!(f, "{days}d {hours:02}:{minutes:02}:{secs:02}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        assert_eq!(SimTime::from_secs(5).as_secs(), 5);
        assert_eq!(SimTime::from_minutes(2).as_secs(), 120);
        assert_eq!(SimTime::from_hours(2).as_secs(), 7_200);
        assert_eq!(SimTime::from_days(1).as_secs(), 86_400);
        assert_eq!(SimTime::ZERO.as_secs(), 0);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_hours(1) + SimTime::from_minutes(30);
        assert_eq!(t.as_secs(), 5_400);
        let d = t - SimTime::from_minutes(30);
        assert_eq!(d, SimTime::from_hours(1));
        // Subtraction saturates instead of underflowing.
        assert_eq!((SimTime::ZERO - SimTime::from_secs(10)).as_secs(), 0);
        let mut acc = SimTime::ZERO;
        acc += SimTime::from_secs(3);
        assert_eq!(acc.as_secs(), 3);
    }

    #[test]
    fn whole_units_and_day_fraction() {
        let t = SimTime::from_days(3) + SimTime::from_hours(12);
        assert_eq!(t.whole_days(), 3);
        assert_eq!(t.whole_hours(), 84);
        assert!((t.day_fraction() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn bucketing() {
        let t = SimTime::from_secs(3_700);
        assert_eq!(t.bucket(HOUR_SECS), 1);
        assert_eq!(t.bucket(60), 61);
    }

    #[test]
    #[should_panic(expected = "bucket width must be positive")]
    fn bucket_zero_width_panics() {
        SimTime::from_secs(1).bucket(0);
    }

    #[test]
    fn display_format() {
        let t = SimTime::from_days(1) + SimTime::from_hours(2) + SimTime::from_secs(61);
        assert_eq!(t.to_string(), "1d 02:01:01");
    }

    #[test]
    fn saturating_since() {
        let a = SimTime::from_secs(100);
        let b = SimTime::from_secs(40);
        assert_eq!(a.saturating_secs_since(b), 60);
        assert_eq!(b.saturating_secs_since(a), 0);
    }
}
