//! Core identifiers, events, views, configuration and errors shared by every
//! DynaSoRe crate.
//!
//! The paper ("DynaSoRe: Efficient In-Memory Store for Social Applications",
//! Middleware 2013) models the system around a handful of primitive notions:
//!
//! * **users** produce *events* (status updates, micro-blogs, …);
//! * each user has a **producer-pivoted view** holding the events she
//!   produced;
//! * the store spans **machines** (servers and brokers) grouped in racks under
//!   a tree of switches;
//! * servers have a **bounded memory capacity** expressed in number of views,
//!   and the cluster-wide budget is described as *x% extra memory* over the
//!   minimum required to store every view exactly once;
//! * traffic is measured in message units where an **application message is
//!   ten times the size of a protocol message** (§4.3 of the paper).
//!
//! This crate defines those primitives as small, strongly-typed values so the
//! remaining crates cannot confuse, say, a server index with a user id.
//!
//! # Example
//!
//! ```
//! use dynasore_types::{Event, MemoryBudget, SimTime, UserId, View};
//!
//! let alice = UserId::new(1);
//! let mut view = View::new(alice);
//! view.push(Event::new(alice, SimTime::from_secs(10), b"hello".to_vec()));
//! assert_eq!(view.len(), 1);
//!
//! // A cluster holding 1_000 views with 30% extra memory has 1_300 slots.
//! let budget = MemoryBudget::with_extra_percent(1_000, 30);
//! assert_eq!(budget.total_slots(), 1_300);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod budget;
mod durable;
mod engine;
mod error;
mod event;
mod flow;
mod ids;
mod network;
mod obs;
mod time;
mod traffic;

pub use budget::MemoryBudget;
pub use durable::{crc32, DurableRecord, MAX_RECORD_BYTES, RECORD_HEADER_BYTES};
pub use engine::{
    ClusterEvent, GraphMutation, MemoryUsage, Message, PlacementEngine, TimedClusterEvent,
    TrafficSink,
};
pub use error::{Error, Result};
pub use event::{Event, View};
pub use flow::{FlowBudget, StatusCode};
pub use ids::{BrokerId, MachineId, MachineKind, RackId, ServerId, SubtreeId, UserId};
pub use network::{Bandwidth, Latency, LatencyHistogram, NetworkModel, NANOS_PER_SEC};
pub use obs::{
    lint_prometheus, validate_jsonl, FlightRecorder, MetricId, MetricKind, MetricsRegistry,
    ReplicaChangeReason, SwitchTier, TraceEvent, TraceEventKind,
};
pub use time::{SimTime, DAY_SECS, HOUR_SECS, MINUTE_SECS};
pub use traffic::{
    MessageClass, TrafficUnits, APP_MESSAGE_UNITS, PROTOCOL_MESSAGE_UNITS,
    VIEW_TRANSFER_PROTOCOL_MESSAGES,
};

/// The kind of request a user submits to the store.
///
/// A read request from user `u` reads the views of all of `u`'s social
/// connections; a write request from `u` updates `u`'s own view (§2.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Operation {
    /// Fetch the views of the user's connections.
    Read,
    /// Update the user's own view from the persistent store.
    Write,
}

impl std::fmt::Display for Operation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Operation::Read => write!(f, "read"),
            Operation::Write => write!(f, "write"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn operation_display() {
        assert_eq!(Operation::Read.to_string(), "read");
        assert_eq!(Operation::Write.to_string(), "write");
    }

    #[test]
    fn operation_ordering_is_stable() {
        assert!(Operation::Read < Operation::Write);
    }
}
