//! Error handling shared by the DynaSoRe crates.

use std::fmt;

use crate::{MachineId, UserId};

/// Convenience result alias used across the workspace.
pub type Result<T, E = Error> = std::result::Result<T, E>;

/// Errors produced by the DynaSoRe crates.
///
/// The variants are intentionally coarse: most APIs validate their inputs
/// eagerly and report a descriptive configuration error rather than failing
/// deep inside an experiment.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Error {
    /// A configuration value is invalid (zero-sized cluster, empty graph,
    /// impossible memory budget, …).
    InvalidConfig(String),
    /// A user id does not exist in the social graph or placement tables.
    UnknownUser(UserId),
    /// A machine id does not exist in the topology, or has the wrong role
    /// (e.g. a broker where a server was expected).
    UnknownMachine(MachineId),
    /// The cluster does not have enough memory to store one copy of every
    /// view; the paper explicitly excludes this trivial case (§2.3).
    InsufficientCapacity {
        /// Slots required to hold one copy of every view.
        required: usize,
        /// Slots actually available in the cluster.
        available: usize,
    },
    /// A server was asked to hold more views than its capacity.
    ServerFull(MachineId),
    /// A view that must exist (every view has at least one replica) could
    /// not be found on any server. Indicates a placement-invariant
    /// violation.
    ViewLost(UserId),
    /// The cluster has been shut down; no further reads or writes are
    /// accepted.
    ClusterShutdown,
    /// A durable-log record failed structural validation *despite a valid
    /// checksum* (unknown kind, inconsistent inner lengths). A crash can
    /// only tear the tail of the log — which replay tolerates — so this
    /// indicates writer corruption and is surfaced loudly.
    CorruptRecord(String),
    /// An I/O error occurred while reading or writing a dataset file.
    Io(String),
}

impl Error {
    /// Builds an [`Error::InvalidConfig`] from any displayable message.
    pub fn invalid_config(msg: impl Into<String>) -> Self {
        Error::InvalidConfig(msg.into())
    }

    /// Builds an [`Error::Io`] from any displayable message.
    pub fn io(msg: impl fmt::Display) -> Self {
        Error::Io(msg.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            Error::UnknownUser(u) => write!(f, "unknown user {u}"),
            Error::UnknownMachine(m) => write!(f, "unknown machine {m}"),
            Error::InsufficientCapacity {
                required,
                available,
            } => write!(
                f,
                "insufficient cluster capacity: {required} view slots required, {available} available"
            ),
            Error::ServerFull(m) => write!(f, "server {m} is full"),
            Error::ClusterShutdown => {
                write!(f, "cluster is shut down and accepts no further requests")
            }
            Error::CorruptRecord(detail) => write!(f, "corrupt durable record: {detail}"),
            Error::ViewLost(u) => write!(f, "view of user {u} has no replica"),
            Error::Io(msg) => write!(f, "i/o error: {msg}"),
        }
    }
}

impl std::error::Error for Error {}

impl From<std::io::Error> for Error {
    fn from(err: std::io::Error) -> Self {
        Error::io(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_descriptive() {
        let cases: Vec<(Error, &str)> = vec![
            (Error::invalid_config("bad"), "invalid configuration: bad"),
            (Error::UnknownUser(UserId::new(3)), "unknown user u3"),
            (
                Error::UnknownMachine(MachineId::new(4)),
                "unknown machine m4",
            ),
            (
                Error::InsufficientCapacity {
                    required: 10,
                    available: 5,
                },
                "insufficient cluster capacity: 10 view slots required, 5 available",
            ),
            (Error::ServerFull(MachineId::new(2)), "server m2 is full"),
            (
                Error::ClusterShutdown,
                "cluster is shut down and accepts no further requests",
            ),
            (
                Error::ViewLost(UserId::new(9)),
                "view of user u9 has no replica",
            ),
            (Error::Io("boom".into()), "i/o error: boom"),
            (
                Error::CorruptRecord("bad kind".into()),
                "corrupt durable record: bad kind",
            ),
        ];
        for (err, expected) in cases {
            assert_eq!(err.to_string(), expected);
        }
    }

    #[test]
    fn error_is_send_sync_and_std_error() {
        fn assert_traits<T: std::error::Error + Send + Sync + 'static>() {}
        assert_traits::<Error>();
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "missing");
        let err: Error = io.into();
        assert!(matches!(err, Error::Io(_)));
    }
}
