//! Flight-recorder observability: an alloc-free metrics registry, a bounded
//! ring buffer of structured trace events, and dependency-free exporters
//! (Prometheus text exposition, JSONL timeline).
//!
//! # Design constraints
//!
//! * **Zero cost when disabled.** Nothing in this module is consulted unless
//!   a driver explicitly attaches a registry/recorder; the simulator stores
//!   its observer as an `Option` and the disabled path is structurally
//!   identical to the pre-observability code, which is proven by
//!   byte-identical `SimReport`s in the test suite.
//! * **Alloc-free on the hot path when enabled.** [`MetricsRegistry`] is a
//!   fixed array of `u64` slots indexed by [`MetricId`] (no atomics — the
//!   simulation is single-threaded; the store wraps the registry in a lock
//!   on its own side). [`FlightRecorder`] pre-allocates its ring storage up
//!   front and every [`TraceEventKind`] is `Copy`, so recording an event is
//!   a bounds-checked array write. The counting-allocator test extends over
//!   the enabled mode.
//! * **Deterministic.** Events are stamped by the caller — simulated time in
//!   the simulator, monotonic time in the live store — and sequence numbers
//!   are assigned in call order, so same-seed simulation reruns produce
//!   identical timelines.

use crate::{ClusterEvent, MachineId, StatusCode, UserId};
use std::fmt::Write as _;

/// Whether a metric slot accumulates (counter) or tracks a level (gauge).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonically increasing count; exported with a `_total` suffix.
    Counter,
    /// A sampled level (queue delay, lag, fill ratio); set or maxed.
    Gauge,
}

macro_rules! metric_ids {
    ($( $variant:ident = ($name:literal, $kind:ident, $help:literal) ),+ $(,)?) => {
        /// Static identifier of one metric slot in a [`MetricsRegistry`].
        ///
        /// Ids are dense array indices, so updating a metric is a single
        /// array write — no hashing, no interning, no allocation.
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
        #[repr(usize)]
        pub enum MetricId {
            $(
                #[doc = $help]
                $variant,
            )+
        }

        impl MetricId {
            /// Number of metric slots (the registry array length).
            pub const COUNT: usize = [$(MetricId::$variant),+].len();

            /// Every metric id, in slot order.
            pub const ALL: [MetricId; MetricId::COUNT] = [$(MetricId::$variant),+];

            /// The Prometheus metric family name (without labels).
            pub fn name(self) -> &'static str {
                match self {
                    $(MetricId::$variant => $name,)+
                }
            }

            /// One-line description used for the `# HELP` exposition line.
            pub fn help(self) -> &'static str {
                match self {
                    $(MetricId::$variant => $help,)+
                }
            }

            /// Counter or gauge (drives the `# TYPE` exposition line).
            pub fn kind(self) -> MetricKind {
                match self {
                    $(MetricId::$variant => MetricKind::$kind,)+
                }
            }
        }
    };
}

metric_ids! {
    ReplicasCreated = ("dynasore_replicas_created_total", Counter,
        "Replicas created by placement, recovery or evacuation decisions."),
    ReplicasDropped = ("dynasore_replicas_dropped_total", Counter,
        "Replicas dropped by eviction, migration or evacuation decisions."),
    ReplicasMoved = ("dynasore_replicas_moved_total", Counter,
        "Replicas migrated server-to-server (create+drop as one decision)."),
    ViewsRecovered = ("dynasore_views_recovered_total", Counter,
        "Lost masters re-created from the persistent tier."),
    ClusterEvents = ("dynasore_cluster_events_total", Counter,
        "Cluster change events applied (failures, drains, elasticity)."),
    CacheRebuilds = ("dynasore_cache_rebuilds_total", Counter,
        "Bulk rebuilds of the per-subtree candidate/threshold caches."),
    TickSamples = ("dynasore_tick_samples_total", Counter,
        "Per-tick observability samples taken by the simulator."),
    CollapseOnsets = ("dynasore_collapse_onsets_total", Counter,
        "Congestion-collapse onsets (first tick past the collapse threshold)."),
    AppMessages = ("dynasore_app_messages_total", Counter,
        "Application messages recorded by the accounting sink."),
    ProtoMessages = ("dynasore_proto_messages_total", Counter,
        "Protocol messages recorded by the accounting sink."),
    RecoveryMessages = ("dynasore_recovery_messages_total", Counter,
        "Messages involving the persistent tier (recovery/demand fill)."),
    UnreachableReads = ("dynasore_unreachable_reads", Gauge,
        "Read targets with no live replica, cumulative engine counter."),
    TopQueueDelayNs = ("dynasore_top_queue_delay_ns", Gauge,
        "Worst queueing delay sampled at the top (core) switch."),
    InterQueueDelayNs = ("dynasore_inter_queue_delay_ns", Gauge,
        "Worst queueing delay sampled across intermediate switches."),
    RackQueueDelayNs = ("dynasore_rack_queue_delay_ns", Gauge,
        "Worst queueing delay sampled across rack switches."),
    DurableAppends = ("dynasore_durable_appends_total", Counter,
        "Events appended to the durable tier."),
    DurableSyncs = ("dynasore_durable_syncs_total", Counter,
        "Explicit sync calls on the durable tier."),
    ReplayedBytes = ("dynasore_replayed_bytes_total", Counter,
        "Bytes replayed from the durable tier during recovery."),
    GroupCommitBatches = ("dynasore_group_commit_batches_total", Counter,
        "Group-commit batches flushed to the log."),
    GroupCommitRecords = ("dynasore_group_commit_records_total", Counter,
        "Records flushed through group commit."),
    GroupCommitMaxFillPercent = ("dynasore_group_commit_max_fill_percent", Gauge,
        "Largest observed batch fill ratio, percent of max_batch_records."),
    SegmentRotations = ("dynasore_segment_rotations_total", Counter,
        "Log segment rotations."),
    Compactions = ("dynasore_compactions_total", Counter,
        "Log compactions run."),
    FlusherSyncs = ("dynasore_flusher_syncs_total", Counter,
        "Background flusher fsync passes across all shards."),
    FlusherMaxLagBytes = ("dynasore_flusher_max_lag_bytes", Gauge,
        "Largest observed flusher lag (bytes appended but not yet synced)."),
    EnvelopesServed = ("dynasore_envelopes_served_total", Counter,
        "Request envelopes that completed the serving pipeline (any status)."),
    EnvelopesRejected = ("dynasore_envelopes_rejected_total", Counter,
        "Request envelopes that finished with a non-ok status."),
    AuthFailures = ("dynasore_auth_failures_total", Counter,
        "Envelopes rejected by the token-auth stage (unauthorized)."),
    ThrottledEnvelopes = ("dynasore_throttled_envelopes_total", Counter,
        "Envelopes rejected by an exhausted per-user flow budget."),
}

/// Fixed-slot counters and gauges plus per-shard metric families.
///
/// All scalar metrics live in one `[u64; MetricId::COUNT]` array; the two
/// per-shard families (`fsyncs`, `lag bytes`) live in vectors that are sized
/// once via [`MetricsRegistry::ensure_shards`] at attach time, so steady-state
/// updates never allocate. There are no atomics: single-threaded callers (the
/// simulator) update the registry directly, and multi-threaded callers (the
/// live store) guard it with their own lock.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MetricsRegistry {
    slots: Vec<u64>,
    shard_fsyncs: Vec<u64>,
    shard_lag_bytes: Vec<u64>,
}

impl MetricsRegistry {
    /// Creates a registry with every slot at zero and no shard families.
    pub fn new() -> Self {
        MetricsRegistry {
            slots: vec![0; MetricId::COUNT],
            shard_fsyncs: Vec::new(),
            shard_lag_bytes: Vec::new(),
        }
    }

    /// Increments a counter by one.
    #[inline]
    pub fn inc(&mut self, id: MetricId) {
        self.slots[id as usize] += 1;
    }

    /// Adds `n` to a counter.
    #[inline]
    pub fn add(&mut self, id: MetricId, n: u64) {
        self.slots[id as usize] += n;
    }

    /// Sets a gauge to `value`.
    #[inline]
    pub fn set(&mut self, id: MetricId, value: u64) {
        self.slots[id as usize] = value;
    }

    /// Raises a gauge to `value` if `value` exceeds the current level.
    #[inline]
    pub fn observe_max(&mut self, id: MetricId, value: u64) {
        let slot = &mut self.slots[id as usize];
        if value > *slot {
            *slot = value;
        }
    }

    /// Reads the current value of a metric slot.
    #[inline]
    pub fn get(&self, id: MetricId) -> u64 {
        self.slots[id as usize]
    }

    /// Sizes the per-shard families for `shards` shards (never shrinks).
    /// Call once at attach time so later per-shard updates never allocate.
    pub fn ensure_shards(&mut self, shards: usize) {
        if self.shard_fsyncs.len() < shards {
            self.shard_fsyncs.resize(shards, 0);
            self.shard_lag_bytes.resize(shards, 0);
        }
    }

    /// Number of shards the per-shard families cover.
    pub fn shard_count(&self) -> usize {
        self.shard_fsyncs.len()
    }

    /// Counts one fsync on `shard` (no-op for shards beyond
    /// [`MetricsRegistry::ensure_shards`]).
    #[inline]
    pub fn shard_fsync(&mut self, shard: usize) {
        if let Some(slot) = self.shard_fsyncs.get_mut(shard) {
            *slot += 1;
        }
    }

    /// Records the current flusher lag of `shard` in bytes and raises the
    /// cluster-wide [`MetricId::FlusherMaxLagBytes`] gauge.
    #[inline]
    pub fn set_shard_lag(&mut self, shard: usize, lag_bytes: u64) {
        if let Some(slot) = self.shard_lag_bytes.get_mut(shard) {
            *slot = lag_bytes;
        }
        self.observe_max(MetricId::FlusherMaxLagBytes, lag_bytes);
    }

    /// Per-shard fsync counts (empty until [`MetricsRegistry::ensure_shards`]).
    pub fn shard_fsyncs(&self) -> &[u64] {
        &self.shard_fsyncs
    }

    /// Per-shard lag samples in bytes.
    pub fn shard_lags(&self) -> &[u64] {
        &self.shard_lag_bytes
    }

    /// Folds another registry into this one: counters add, gauges take the
    /// maximum, shard families are element-wise merged (growing as needed).
    /// Used by benches to aggregate per-cell registries into one exposition.
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for id in MetricId::ALL {
            match id.kind() {
                MetricKind::Counter => self.add(id, other.get(id)),
                MetricKind::Gauge => self.observe_max(id, other.get(id)),
            }
        }
        self.ensure_shards(other.shard_count());
        for (i, &n) in other.shard_fsyncs.iter().enumerate() {
            self.shard_fsyncs[i] += n;
        }
        for (i, &lag) in other.shard_lag_bytes.iter().enumerate() {
            if lag > self.shard_lag_bytes[i] {
                self.shard_lag_bytes[i] = lag;
            }
        }
    }

    /// Folds one trace event into the registry — the single mapping from
    /// [`TraceEventKind`]s to metric slots, shared by every observer (the
    /// simulator's and the live store's) so their registries agree on what
    /// each event means. Alloc-free: every arm is a slot update.
    pub fn apply(&mut self, kind: TraceEventKind) {
        match kind {
            TraceEventKind::ReplicaCreated { reason, .. } => {
                self.inc(MetricId::ReplicasCreated);
                if reason == ReplicaChangeReason::Recovery {
                    self.inc(MetricId::ViewsRecovered);
                }
            }
            TraceEventKind::ReplicaDropped { .. } => {
                self.inc(MetricId::ReplicasDropped);
            }
            TraceEventKind::ReplicaMoved { .. } => {
                self.inc(MetricId::ReplicasMoved);
            }
            TraceEventKind::ClusterChange { .. } => {
                self.inc(MetricId::ClusterEvents);
            }
            TraceEventKind::CacheRebuilt => {
                self.inc(MetricId::CacheRebuilds);
            }
            TraceEventKind::TickSample {
                unreachable_reads, ..
            } => {
                self.inc(MetricId::TickSamples);
                self.set(MetricId::UnreachableReads, unreachable_reads);
            }
            TraceEventKind::SwitchQueueDepth { tier, max_delay_ns } => {
                let id = match tier {
                    SwitchTier::Top => MetricId::TopQueueDelayNs,
                    SwitchTier::Intermediate => MetricId::InterQueueDelayNs,
                    SwitchTier::Rack => MetricId::RackQueueDelayNs,
                };
                self.observe_max(id, max_delay_ns);
            }
            TraceEventKind::ShardLag { shard, lag_bytes } => {
                self.set_shard_lag(shard as usize, lag_bytes);
            }
            TraceEventKind::CollapseOnset { .. } => {
                self.inc(MetricId::CollapseOnsets);
            }
            TraceEventKind::GroupCommitFill {
                records,
                fill_percent,
            } => {
                self.inc(MetricId::GroupCommitBatches);
                self.add(MetricId::GroupCommitRecords, records);
                self.observe_max(MetricId::GroupCommitMaxFillPercent, u64::from(fill_percent));
            }
            TraceEventKind::SegmentRotated { .. } => {
                self.inc(MetricId::SegmentRotations);
            }
            TraceEventKind::CompactionRun { .. } => {
                self.inc(MetricId::Compactions);
            }
            TraceEventKind::FlusherSync { shard, lag_bytes } => {
                self.inc(MetricId::FlusherSyncs);
                self.shard_fsync(shard as usize);
                self.set_shard_lag(shard as usize, lag_bytes);
            }
            TraceEventKind::ReplayCompleted { bytes, .. } => {
                self.add(MetricId::ReplayedBytes, bytes);
            }
            TraceEventKind::EnvelopeServed { status, .. } => {
                self.inc(MetricId::EnvelopesServed);
                if !status.is_success() {
                    self.inc(MetricId::EnvelopesRejected);
                }
                if status == StatusCode::Unauthorized {
                    self.inc(MetricId::AuthFailures);
                }
                if status == StatusCode::Throttled {
                    self.inc(MetricId::ThrottledEnvelopes);
                }
            }
        }
    }

    /// Renders the registry in the Prometheus text exposition format: one
    /// `# HELP` / `# TYPE` pair per family followed by its samples; per-shard
    /// families carry a `shard="i"` label. Output passes
    /// [`lint_prometheus`].
    pub fn render_prometheus(&self) -> String {
        let mut out = String::with_capacity(4096);
        for id in MetricId::ALL {
            let type_str = match id.kind() {
                MetricKind::Counter => "counter",
                MetricKind::Gauge => "gauge",
            };
            let _ = writeln!(out, "# HELP {} {}", id.name(), id.help());
            let _ = writeln!(out, "# TYPE {} {}", id.name(), type_str);
            let _ = writeln!(out, "{} {}", id.name(), self.get(id));
        }
        if !self.shard_fsyncs.is_empty() {
            let name = "dynasore_shard_fsyncs_total";
            let _ = writeln!(out, "# HELP {name} Fsync passes per durable shard.");
            let _ = writeln!(out, "# TYPE {name} counter");
            for (i, n) in self.shard_fsyncs.iter().enumerate() {
                let _ = writeln!(out, "{name}{{shard=\"{i}\"}} {n}");
            }
            let name = "dynasore_shard_lag_bytes";
            let _ = writeln!(out, "# HELP {name} Unsynced bytes per durable shard.");
            let _ = writeln!(out, "# TYPE {name} gauge");
            for (i, lag) in self.shard_lag_bytes.iter().enumerate() {
                let _ = writeln!(out, "{name}{{shard=\"{i}\"}} {lag}");
            }
        }
        out
    }
}

/// Validates a Prometheus text exposition: every sample's family must be
/// preceded by exactly one `# HELP` and one `# TYPE` line, and no two
/// samples may share the same name+labels. Returns the number of samples.
///
/// This is the format lint CI runs over `--metrics-out` artifacts; it is
/// intentionally hand-rolled (dependency-free) and checks structure, not
/// every corner of the exposition grammar.
pub fn lint_prometheus(text: &str) -> Result<usize, String> {
    let mut helped: Vec<&str> = Vec::new();
    let mut typed: Vec<&str> = Vec::new();
    let mut samples: Vec<&str> = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        let n = lineno + 1;
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let family = rest.split_whitespace().next().unwrap_or("");
            if family.is_empty() {
                return Err(format!("line {n}: HELP line without a family name"));
            }
            if helped.contains(&family) {
                return Err(format!("line {n}: duplicate HELP for family {family}"));
            }
            helped.push(family);
        } else if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split_whitespace();
            let family = parts.next().unwrap_or("");
            let kind = parts.next().unwrap_or("");
            if family.is_empty() || !matches!(kind, "counter" | "gauge" | "histogram" | "summary") {
                return Err(format!("line {n}: malformed TYPE line: {line}"));
            }
            if typed.contains(&family) {
                return Err(format!("line {n}: duplicate TYPE for family {family}"));
            }
            typed.push(family);
        } else if line.starts_with('#') {
            continue; // comment
        } else {
            let name_end = line.find(['{', ' ']).unwrap_or(line.len());
            let family = &line[..name_end];
            let series = line.rsplit_once(' ').map(|(s, _)| s).unwrap_or(line);
            if family.is_empty() {
                return Err(format!("line {n}: sample without a metric name"));
            }
            if !helped.contains(&family) {
                return Err(format!("line {n}: sample {family} has no HELP line"));
            }
            if !typed.contains(&family) {
                return Err(format!("line {n}: sample {family} has no TYPE line"));
            }
            if samples.contains(&series) {
                return Err(format!("line {n}: duplicate sample {series}"));
            }
            samples.push(series);
        }
    }
    if samples.is_empty() {
        return Err("exposition contains no samples".to_string());
    }
    Ok(samples.len())
}

/// Why a replica was created, dropped or moved — attached to every replica
/// lifecycle [`TraceEventKind`] so a timeline can separate steady-state
/// churn from failure handling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplicaChangeReason {
    /// Access-statistics-driven placement (Algorithm 2) or utility-driven
    /// drop/migration (Algorithm 3) in steady state.
    Placement,
    /// Occupancy- or utility-driven eviction (background sweep, or making
    /// room for an incoming replica).
    Eviction,
    /// A lost master re-created from the persistent tier after a failure.
    Recovery,
    /// Graceful evacuation of a draining machine or decommissioned rack.
    Evacuation,
}

impl ReplicaChangeReason {
    /// Kebab-case string used in the JSONL timeline.
    pub fn as_str(self) -> &'static str {
        match self {
            ReplicaChangeReason::Placement => "placement",
            ReplicaChangeReason::Eviction => "eviction",
            ReplicaChangeReason::Recovery => "recovery",
            ReplicaChangeReason::Evacuation => "evacuation",
        }
    }
}

/// The switch tier a queue-depth gauge sample refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SwitchTier {
    /// The single core switch at the top of the tree.
    Top,
    /// The intermediate (aggregation) switch layer.
    Intermediate,
    /// The rack (edge) switch layer.
    Rack,
}

impl SwitchTier {
    /// Kebab-case string used in the JSONL timeline.
    pub fn as_str(self) -> &'static str {
        match self {
            SwitchTier::Top => "top",
            SwitchTier::Intermediate => "intermediate",
            SwitchTier::Rack => "rack",
        }
    }
}

/// One structured flight-recorder event. All variants are `Copy` so the
/// recorder ring never allocates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEventKind {
    /// A replica of `user`'s view was created on `server`.
    ReplicaCreated {
        /// The view owner.
        user: UserId,
        /// The machine now holding the new replica.
        server: MachineId,
        /// Why the replica was created.
        reason: ReplicaChangeReason,
    },
    /// A replica of `user`'s view was dropped from `server`.
    ReplicaDropped {
        /// The view owner.
        user: UserId,
        /// The machine that held the replica.
        server: MachineId,
        /// Why the replica was dropped.
        reason: ReplicaChangeReason,
    },
    /// A replica of `user`'s view moved from `from` to `to` as one decision.
    ReplicaMoved {
        /// The view owner.
        user: UserId,
        /// The machine losing the replica.
        from: MachineId,
        /// The machine gaining the replica.
        to: MachineId,
        /// Why the replica moved.
        reason: ReplicaChangeReason,
    },
    /// A cluster change event was applied (failure, drain, elasticity).
    ClusterChange {
        /// The applied event.
        event: ClusterEvent,
    },
    /// The per-subtree candidate/threshold caches were bulk-rebuilt.
    CacheRebuilt,
    /// Per-tick simulator sample (emitted behind the sampling cadence).
    TickSample {
        /// Simulated time of the tick in seconds.
        tick_secs: u64,
        /// Cumulative unreachable read targets at this tick.
        unreachable_reads: u64,
    },
    /// Worst queueing delay currently pending across one switch tier.
    SwitchQueueDepth {
        /// Which switch tier was sampled.
        tier: SwitchTier,
        /// Worst per-switch queueing delay in nanoseconds.
        max_delay_ns: u64,
    },
    /// Per-shard durable-tier lag sample (bytes appended but unsynced).
    ShardLag {
        /// The shard index.
        shard: u32,
        /// Unsynced bytes on this shard.
        lag_bytes: u64,
    },
    /// First tick at which switch queueing crossed the collapse threshold.
    CollapseOnset {
        /// The queueing delay that crossed the threshold, in nanoseconds.
        queue_delay_ns: u64,
    },
    /// A group-commit batch was flushed to the log.
    GroupCommitFill {
        /// Records in the batch.
        records: u64,
        /// Batch fill as a percentage of `max_batch_records`.
        fill_percent: u8,
    },
    /// The active log segment rotated.
    SegmentRotated {
        /// Index of the newly opened segment.
        segment: u64,
    },
    /// A log compaction completed.
    CompactionRun {
        /// Live bytes before compaction.
        bytes_before: u64,
        /// Live bytes after compaction.
        bytes_after: u64,
    },
    /// The background flusher fsynced one shard.
    FlusherSync {
        /// The shard index.
        shard: u32,
        /// Lag (unsynced bytes) the fsync pass observed before syncing.
        lag_bytes: u64,
    },
    /// A replay-on-open recovery pass completed.
    ReplayCompleted {
        /// Bytes replayed.
        bytes: u64,
        /// Shards replayed.
        shards: u32,
    },
    /// The serving pipeline finished one request envelope (served or
    /// rejected — the status says which, and the metric fold splits the
    /// rejection counters by status class).
    EnvelopeServed {
        /// The user the envelope was submitted for.
        user: UserId,
        /// Final status of the envelope.
        status: StatusCode,
    },
}

impl TraceEventKind {
    /// Kebab-case discriminant name used as the `kind` field in JSONL.
    pub fn name(self) -> &'static str {
        match self {
            TraceEventKind::ReplicaCreated { .. } => "replica-created",
            TraceEventKind::ReplicaDropped { .. } => "replica-dropped",
            TraceEventKind::ReplicaMoved { .. } => "replica-moved",
            TraceEventKind::ClusterChange { .. } => "cluster-change",
            TraceEventKind::CacheRebuilt => "cache-rebuilt",
            TraceEventKind::TickSample { .. } => "tick-sample",
            TraceEventKind::SwitchQueueDepth { .. } => "switch-queue-depth",
            TraceEventKind::ShardLag { .. } => "shard-lag",
            TraceEventKind::CollapseOnset { .. } => "collapse-onset",
            TraceEventKind::GroupCommitFill { .. } => "group-commit-fill",
            TraceEventKind::SegmentRotated { .. } => "segment-rotated",
            TraceEventKind::CompactionRun { .. } => "compaction-run",
            TraceEventKind::FlusherSync { .. } => "flusher-sync",
            TraceEventKind::ReplayCompleted { .. } => "replay-completed",
            TraceEventKind::EnvelopeServed { .. } => "envelope-served",
        }
    }
}

/// A timestamped, sequenced flight-recorder entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Monotone sequence number in recording order (never reused, so gaps
    /// after ring wraparound reveal how many events were overwritten).
    pub seq: u64,
    /// Timestamp in nanoseconds: simulated time in the simulator, monotonic
    /// process time in the live store.
    pub t_ns: u64,
    /// The structured payload.
    pub kind: TraceEventKind,
}

impl TraceEvent {
    /// Appends this event as one JSON object (no trailing newline) to `out`.
    pub fn write_json(&self, out: &mut String) {
        let _ = write!(
            out,
            "{{\"seq\":{},\"t_ns\":{},\"kind\":\"{}\"",
            self.seq,
            self.t_ns,
            self.kind.name()
        );
        match self.kind {
            TraceEventKind::ReplicaCreated {
                user,
                server,
                reason,
            }
            | TraceEventKind::ReplicaDropped {
                user,
                server,
                reason,
            } => {
                let _ = write!(
                    out,
                    ",\"user\":{},\"server\":{},\"reason\":\"{}\"",
                    user.index(),
                    server.index(),
                    reason.as_str()
                );
            }
            TraceEventKind::ReplicaMoved {
                user,
                from,
                to,
                reason,
            } => {
                let _ = write!(
                    out,
                    ",\"user\":{},\"from\":{},\"to\":{},\"reason\":\"{}\"",
                    user.index(),
                    from.index(),
                    to.index(),
                    reason.as_str()
                );
            }
            TraceEventKind::ClusterChange { event } => {
                let _ = write!(out, ",\"event\":\"{event}\"");
            }
            TraceEventKind::CacheRebuilt => {}
            TraceEventKind::TickSample {
                tick_secs,
                unreachable_reads,
            } => {
                let _ = write!(
                    out,
                    ",\"tick_secs\":{tick_secs},\"unreachable_reads\":{unreachable_reads}"
                );
            }
            TraceEventKind::SwitchQueueDepth { tier, max_delay_ns } => {
                let _ = write!(
                    out,
                    ",\"tier\":\"{}\",\"max_delay_ns\":{max_delay_ns}",
                    tier.as_str()
                );
            }
            TraceEventKind::ShardLag { shard, lag_bytes } => {
                let _ = write!(out, ",\"shard\":{shard},\"lag_bytes\":{lag_bytes}");
            }
            TraceEventKind::CollapseOnset { queue_delay_ns } => {
                let _ = write!(out, ",\"queue_delay_ns\":{queue_delay_ns}");
            }
            TraceEventKind::GroupCommitFill {
                records,
                fill_percent,
            } => {
                let _ = write!(
                    out,
                    ",\"records\":{records},\"fill_percent\":{fill_percent}"
                );
            }
            TraceEventKind::SegmentRotated { segment } => {
                let _ = write!(out, ",\"segment\":{segment}");
            }
            TraceEventKind::CompactionRun {
                bytes_before,
                bytes_after,
            } => {
                let _ = write!(
                    out,
                    ",\"bytes_before\":{bytes_before},\"bytes_after\":{bytes_after}"
                );
            }
            TraceEventKind::FlusherSync { shard, lag_bytes } => {
                let _ = write!(out, ",\"shard\":{shard},\"lag_bytes\":{lag_bytes}");
            }
            TraceEventKind::ReplayCompleted { bytes, shards } => {
                let _ = write!(out, ",\"bytes\":{bytes},\"shards\":{shards}");
            }
            TraceEventKind::EnvelopeServed { user, status } => {
                let _ = write!(
                    out,
                    ",\"user\":{},\"status\":\"{}\"",
                    user.index(),
                    status.as_str()
                );
            }
        }
        out.push('}');
    }
}

/// Bounded ring buffer of [`TraceEvent`]s that keeps the newest `capacity`
/// events. Storage is allocated once in [`FlightRecorder::new`]; recording
/// overwrites the oldest entry when full, so the hot path never allocates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlightRecorder {
    events: Vec<TraceEvent>,
    capacity: usize,
    head: usize,
    next_seq: u64,
}

impl FlightRecorder {
    /// Creates a recorder keeping the newest `capacity` events. The full
    /// ring is allocated up front.
    pub fn new(capacity: usize) -> Self {
        FlightRecorder {
            events: Vec::with_capacity(capacity),
            capacity,
            head: 0,
            next_seq: 0,
        }
    }

    /// Records one event stamped `t_ns`, overwriting the oldest entry when
    /// the ring is full. Alloc-free. With capacity 0 only the sequence
    /// counter advances.
    #[inline]
    pub fn record(&mut self, t_ns: u64, kind: TraceEventKind) {
        let seq = self.next_seq;
        self.next_seq += 1;
        if self.capacity == 0 {
            return;
        }
        let event = TraceEvent { seq, t_ns, kind };
        if self.events.len() < self.capacity {
            self.events.push(event);
        } else {
            self.events[self.head] = event;
            self.head = (self.head + 1) % self.capacity;
        }
    }

    /// Number of events currently held (≤ capacity).
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no event has been retained.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The ring capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Total events ever recorded (including overwritten ones).
    pub fn recorded(&self) -> u64 {
        self.next_seq
    }

    /// Events lost to ring wraparound.
    pub fn dropped(&self) -> u64 {
        self.next_seq - self.events.len() as u64
    }

    /// Iterates the retained events oldest-first (ascending `seq`).
    pub fn iter(&self) -> impl Iterator<Item = &TraceEvent> {
        let (older, newer) = if self.events.len() < self.capacity {
            (&self.events[..], &self.events[..0])
        } else {
            let (newer, older) = self.events.split_at(self.head);
            (older, newer)
        };
        older.iter().chain(newer.iter())
    }

    /// Renders the retained timeline as JSON Lines, one event per line,
    /// oldest first. Output passes [`validate_jsonl`].
    pub fn to_jsonl(&self) -> String {
        let mut out = String::with_capacity(self.events.len() * 80);
        for event in self.iter() {
            event.write_json(&mut out);
            out.push('\n');
        }
        out
    }
}

/// Validates a JSONL timeline dump: every non-empty line must be a JSON
/// object carrying `seq`, `t_ns` and `kind` fields. Returns the event
/// count. Hand-rolled structural check, dependency-free, used by CI.
pub fn validate_jsonl(text: &str) -> Result<usize, String> {
    let mut count = 0usize;
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let n = lineno + 1;
        if !line.starts_with('{') || !line.ends_with('}') {
            return Err(format!("line {n}: not a JSON object: {line}"));
        }
        for field in ["\"seq\":", "\"t_ns\":", "\"kind\":\""] {
            if !line.contains(field) {
                return Err(format!("line {n}: missing {field} field"));
            }
        }
        count += 1;
    }
    Ok(count)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(kind: TraceEventKind) -> TraceEventKind {
        kind
    }

    #[test]
    fn registry_counters_and_gauges() {
        let mut reg = MetricsRegistry::new();
        reg.inc(MetricId::ReplicasCreated);
        reg.add(MetricId::ReplicasCreated, 2);
        assert_eq!(reg.get(MetricId::ReplicasCreated), 3);
        reg.set(MetricId::TopQueueDelayNs, 500);
        reg.observe_max(MetricId::TopQueueDelayNs, 100);
        assert_eq!(reg.get(MetricId::TopQueueDelayNs), 500);
        reg.observe_max(MetricId::TopQueueDelayNs, 900);
        assert_eq!(reg.get(MetricId::TopQueueDelayNs), 900);
    }

    #[test]
    fn registry_shard_families() {
        let mut reg = MetricsRegistry::new();
        // Updates before ensure_shards are silently dropped, never panic.
        reg.shard_fsync(3);
        reg.ensure_shards(4);
        reg.shard_fsync(3);
        reg.shard_fsync(3);
        reg.set_shard_lag(1, 4096);
        assert_eq!(reg.shard_fsyncs(), &[0, 0, 0, 2]);
        assert_eq!(reg.shard_lags(), &[0, 4096, 0, 0]);
        assert_eq!(reg.get(MetricId::FlusherMaxLagBytes), 4096);
    }

    #[test]
    fn registry_merge_adds_counters_and_maxes_gauges() {
        let mut a = MetricsRegistry::new();
        let mut b = MetricsRegistry::new();
        a.add(MetricId::DurableAppends, 10);
        b.add(MetricId::DurableAppends, 5);
        a.set(MetricId::RackQueueDelayNs, 100);
        b.set(MetricId::RackQueueDelayNs, 300);
        b.ensure_shards(2);
        b.shard_fsync(1);
        a.merge(&b);
        assert_eq!(a.get(MetricId::DurableAppends), 15);
        assert_eq!(a.get(MetricId::RackQueueDelayNs), 300);
        assert_eq!(a.shard_fsyncs(), &[0, 1]);
    }

    #[test]
    fn prometheus_render_passes_lint() {
        let mut reg = MetricsRegistry::new();
        reg.inc(MetricId::ClusterEvents);
        reg.ensure_shards(2);
        reg.shard_fsync(0);
        reg.set_shard_lag(1, 77);
        let text = reg.render_prometheus();
        let samples = lint_prometheus(&text).expect("lint passes");
        assert_eq!(samples, MetricId::COUNT + 4);
        assert!(text.contains("dynasore_cluster_events_total 1"));
        assert!(text.contains("dynasore_shard_lag_bytes{shard=\"1\"} 77"));
    }

    #[test]
    fn prometheus_lint_rejects_malformed_input() {
        assert!(lint_prometheus("").is_err());
        // Sample without HELP/TYPE.
        assert!(lint_prometheus("foo 1\n").is_err());
        // Duplicate sample.
        let text = "# HELP foo x\n# TYPE foo counter\nfoo 1\nfoo 2\n";
        assert!(lint_prometheus(text)
            .unwrap_err()
            .contains("duplicate sample"));
        // Duplicate TYPE.
        let text = "# HELP foo x\n# TYPE foo counter\n# TYPE foo counter\nfoo 1\n";
        assert!(lint_prometheus(text)
            .unwrap_err()
            .contains("duplicate TYPE"));
        // Labelled samples with distinct labels are fine.
        let text = "# HELP foo x\n# TYPE foo counter\nfoo{s=\"0\"} 1\nfoo{s=\"1\"} 2\n";
        assert_eq!(lint_prometheus(text).unwrap(), 2);
    }

    #[test]
    fn recorder_keeps_newest_events_on_wraparound() {
        let mut rec = FlightRecorder::new(4);
        for i in 0..10u64 {
            rec.record(i * 100, ev(TraceEventKind::SegmentRotated { segment: i }));
        }
        assert_eq!(rec.len(), 4);
        assert_eq!(rec.recorded(), 10);
        assert_eq!(rec.dropped(), 6);
        let seqs: Vec<u64> = rec.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![6, 7, 8, 9], "newest 4 events retained, in order");
        let times: Vec<u64> = rec.iter().map(|e| e.t_ns).collect();
        assert_eq!(times, vec![600, 700, 800, 900]);
    }

    #[test]
    fn recorder_zero_capacity_only_counts() {
        let mut rec = FlightRecorder::new(0);
        rec.record(1, ev(TraceEventKind::CacheRebuilt));
        assert!(rec.is_empty());
        assert_eq!(rec.recorded(), 1);
    }

    #[test]
    fn jsonl_round_trip_validates() {
        let mut rec = FlightRecorder::new(16);
        rec.record(
            1_000,
            TraceEventKind::ReplicaCreated {
                user: UserId::new(7),
                server: MachineId::new(3),
                reason: ReplicaChangeReason::Placement,
            },
        );
        rec.record(
            2_000,
            TraceEventKind::ReplicaMoved {
                user: UserId::new(7),
                from: MachineId::new(3),
                to: MachineId::new(9),
                reason: ReplicaChangeReason::Evacuation,
            },
        );
        rec.record(
            3_000,
            TraceEventKind::ClusterChange {
                event: ClusterEvent::AddRack,
            },
        );
        rec.record(
            4_000,
            TraceEventKind::SwitchQueueDepth {
                tier: SwitchTier::Rack,
                max_delay_ns: 123,
            },
        );
        let jsonl = rec.to_jsonl();
        assert_eq!(validate_jsonl(&jsonl).unwrap(), 4);
        assert!(jsonl.contains("\"kind\":\"replica-created\""));
        assert!(jsonl.contains("\"reason\":\"evacuation\""));
        assert!(jsonl.contains("\"event\":\"add-rack\""));
        assert!(jsonl.contains("\"tier\":\"rack\""));
    }

    #[test]
    fn jsonl_validation_rejects_garbage() {
        assert!(validate_jsonl("not json\n").is_err());
        assert!(validate_jsonl("{\"seq\":1}\n").is_err());
        assert_eq!(validate_jsonl("").unwrap(), 0);
    }

    #[test]
    fn metric_catalog_is_complete() {
        for id in MetricId::ALL {
            assert!(id.name().starts_with("dynasore_"), "{}", id.name());
            assert!(!id.help().is_empty());
            if id.kind() == MetricKind::Counter {
                assert!(id.name().ends_with("_total"), "{}", id.name());
            }
        }
    }
}
