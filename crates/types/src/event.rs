//! Events and producer-pivoted views.
//!
//! The paper treats an event as an application-specific array of bytes
//! (§1) and a view as a list of events produced by a single user, possibly
//! ordered by timestamp (§2.1). Events are assumed to have a fixed, small
//! size (e.g. 140-character tweets); heavy content lives in dedicated
//! servers, not in the cache (§3.2, *Storage management*).

use crate::{SimTime, UserId};

/// Default maximum number of events retained per view.
///
/// Social feeds only ever display the most recent items, so views are
/// truncated to a bounded number of events, mirroring how production caches
/// cap per-key value sizes.
pub const DEFAULT_VIEW_CAPACITY: usize = 128;

/// A single piece of content produced by a user (status update, micro-blog,
/// picture reference, …).
///
/// The format of the payload is application specific; DynaSoRe treats it as
/// an opaque array of bytes.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Event {
    author: UserId,
    timestamp: SimTime,
    payload: Vec<u8>,
}

impl Event {
    /// Creates a new event.
    pub fn new(author: UserId, timestamp: SimTime, payload: Vec<u8>) -> Self {
        Event {
            author,
            timestamp,
            payload,
        }
    }

    /// The user who produced the event.
    pub fn author(&self) -> UserId {
        self.author
    }

    /// When the event was produced.
    pub fn timestamp(&self) -> SimTime {
        self.timestamp
    }

    /// The opaque application payload.
    pub fn payload(&self) -> &[u8] {
        &self.payload
    }

    /// Size of the payload in bytes.
    pub fn payload_len(&self) -> usize {
        self.payload.len()
    }
}

/// A producer-pivoted view: the list of events produced by one user, newest
/// last, truncated to a bounded capacity.
///
/// # Example
///
/// ```
/// use dynasore_types::{Event, SimTime, UserId, View};
///
/// let u = UserId::new(9);
/// let mut view = View::with_capacity(u, 2);
/// for i in 0..3 {
///     view.push(Event::new(u, SimTime::from_secs(i), vec![i as u8]));
/// }
/// // Oldest event was truncated.
/// assert_eq!(view.len(), 2);
/// assert_eq!(view.latest().unwrap().timestamp(), SimTime::from_secs(2));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct View {
    owner: UserId,
    capacity: usize,
    events: Vec<Event>,
    /// Monotonically increasing version, bumped on every update. Mirrors the
    /// "new version fetched from the persistent store" of the paper's write
    /// path (§3.3).
    version: u64,
}

impl View {
    /// Creates an empty view with the default capacity.
    pub fn new(owner: UserId) -> Self {
        View::with_capacity(owner, DEFAULT_VIEW_CAPACITY)
    }

    /// Creates an empty view retaining at most `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_capacity(owner: UserId, capacity: usize) -> Self {
        assert!(capacity > 0, "view capacity must be positive");
        View {
            owner,
            capacity,
            events: Vec::new(),
            version: 0,
        }
    }

    /// Reconstructs a view from its saved parts — the durable-log replay
    /// path: a [`crate::DurableRecord::Snapshot`] carries the events *and*
    /// the version counter, which must survive a round trip through disk so
    /// that replica freshness comparisons ([`View::replace_from`]) behave
    /// identically after recovery. Events beyond `capacity` are truncated
    /// from the oldest end, mirroring [`View::push`].
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn from_saved(owner: UserId, capacity: usize, version: u64, events: Vec<Event>) -> Self {
        assert!(capacity > 0, "view capacity must be positive");
        let mut events = events;
        if events.len() > capacity {
            events.drain(..events.len() - capacity);
        }
        View {
            owner,
            capacity,
            events,
            version,
        }
    }

    /// The user this view belongs to.
    pub fn owner(&self) -> UserId {
        self.owner
    }

    /// The number of events currently held.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the view holds no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The maximum number of events retained.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The current version of the view. Starts at 0 and increases by one on
    /// every [`push`](View::push) or [`replace_from`](View::replace_from).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Appends an event, evicting the oldest one if the view is full.
    pub fn push(&mut self, event: Event) {
        if self.events.len() == self.capacity {
            self.events.remove(0);
        }
        self.events.push(event);
        self.version += 1;
    }

    /// Replaces the content of this view with the content of `other`,
    /// adopting its version if newer. This is the replica-update path: the
    /// write proxy fetches the new version from the persistent store and
    /// pushes it to every replica.
    pub fn replace_from(&mut self, other: &View) {
        if other.version > self.version {
            self.events = other.events.clone();
            self.version = other.version;
        }
    }

    /// The most recent event, if any.
    pub fn latest(&self) -> Option<&Event> {
        self.events.last()
    }

    /// Iterates over events from oldest to newest.
    pub fn iter(&self) -> std::slice::Iter<'_, Event> {
        self.events.iter()
    }

    /// Returns the `n` most recent events, newest first.
    pub fn latest_n(&self, n: usize) -> Vec<&Event> {
        self.events.iter().rev().take(n).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(u: u32, t: u64) -> Event {
        Event::new(UserId::new(u), SimTime::from_secs(t), vec![t as u8])
    }

    #[test]
    fn event_accessors() {
        let e = Event::new(UserId::new(1), SimTime::from_secs(5), b"abc".to_vec());
        assert_eq!(e.author(), UserId::new(1));
        assert_eq!(e.timestamp(), SimTime::from_secs(5));
        assert_eq!(e.payload(), b"abc");
        assert_eq!(e.payload_len(), 3);
    }

    #[test]
    fn view_push_and_truncate() {
        let mut v = View::with_capacity(UserId::new(1), 3);
        assert!(v.is_empty());
        for t in 0..5 {
            v.push(ev(1, t));
        }
        assert_eq!(v.len(), 3);
        assert_eq!(v.capacity(), 3);
        let ts: Vec<u64> = v.iter().map(|e| e.timestamp().as_secs()).collect();
        assert_eq!(ts, vec![2, 3, 4]);
        assert_eq!(v.latest().unwrap().timestamp().as_secs(), 4);
        assert_eq!(v.version(), 5);
    }

    #[test]
    fn view_latest_n_is_newest_first() {
        let mut v = View::new(UserId::new(2));
        for t in 0..4 {
            v.push(ev(2, t));
        }
        let latest: Vec<u64> = v
            .latest_n(2)
            .iter()
            .map(|e| e.timestamp().as_secs())
            .collect();
        assert_eq!(latest, vec![3, 2]);
    }

    #[test]
    fn replace_from_adopts_newer_versions_only() {
        let mut primary = View::new(UserId::new(3));
        let mut replica = View::new(UserId::new(3));
        primary.push(ev(3, 1));
        primary.push(ev(3, 2));
        replica.replace_from(&primary);
        assert_eq!(replica.len(), 2);
        assert_eq!(replica.version(), primary.version());

        // An older view never overwrites a newer replica.
        let stale = View::new(UserId::new(3));
        replica.replace_from(&stale);
        assert_eq!(replica.len(), 2);
    }

    #[test]
    fn default_capacity_applies() {
        let v = View::new(UserId::new(4));
        assert_eq!(v.capacity(), DEFAULT_VIEW_CAPACITY);
    }

    #[test]
    #[should_panic(expected = "view capacity must be positive")]
    fn zero_capacity_panics() {
        View::with_capacity(UserId::new(1), 0);
    }
}
