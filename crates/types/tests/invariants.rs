//! Invariant tests for the layer-0 primitives: `MemoryBudget` arithmetic
//! and the identifier/time newtype round-trips every other crate relies on.

use dynasore_types::{
    BrokerId, MachineId, MemoryBudget, RackId, ServerId, SimTime, SubtreeId, UserId, DAY_SECS,
    HOUR_SECS, MINUTE_SECS,
};

// ---------------------------------------------------------------------------
// MemoryBudget arithmetic
// ---------------------------------------------------------------------------

#[test]
fn with_extra_percent_matches_paper_formula() {
    // §2.3: total = floor((1 + x/100) · |V|).
    for &(views, extra, expected) in &[
        (1_000usize, 30u32, 1_300usize),
        (1_000, 0, 1_000),
        (10_000, 50, 15_000),
        (10_000, 100, 20_000),
        (10_000, 200, 30_000),
        (3, 50, 4), // 4.5 floors to 4
        (1, 99, 1), // 1.99 floors to 1
        (1, 100, 2),
        (0, 100, 0), // no views → no slots, whatever the percentage
    ] {
        let b = MemoryBudget::with_extra_percent(views, extra);
        assert_eq!(b.total_slots(), expected, "views={views} extra={extra}%");
        assert_eq!(b.view_count(), views);
        assert_eq!(b.extra_percent(), extra);
        assert_eq!(b.extra_slots(), expected - views);
    }
}

#[test]
fn exact_equals_zero_extra_percent() {
    for views in [0usize, 1, 17, 1_000_000] {
        assert_eq!(
            MemoryBudget::exact(views),
            MemoryBudget::with_extra_percent(views, 0)
        );
        assert_eq!(MemoryBudget::exact(views).total_slots(), views);
    }
}

#[test]
fn total_slots_is_monotone_in_both_arguments() {
    let mut last = 0;
    for extra in [0u32, 10, 25, 50, 100, 150, 300] {
        let t = MemoryBudget::with_extra_percent(997, extra).total_slots();
        assert!(t >= last, "total_slots must grow with extra%");
        last = t;
    }
    let mut last = 0;
    for views in [0usize, 1, 10, 997, 10_000] {
        let t = MemoryBudget::with_extra_percent(views, 30).total_slots();
        assert!(t >= last, "total_slots must grow with the view count");
        last = t;
    }
}

#[test]
fn extreme_budgets_saturate_instead_of_wrapping() {
    // Any of these would overflow 64-bit intermediate arithmetic; the budget
    // must saturate, never wrap or panic.
    let huge = MemoryBudget::with_extra_percent(usize::MAX, u32::MAX);
    assert_eq!(huge.extra_slots(), usize::MAX);
    assert_eq!(huge.total_slots(), usize::MAX);

    let b = MemoryBudget::with_extra_percent(usize::MAX, 100);
    assert_eq!(b.extra_slots(), usize::MAX);
    assert_eq!(b.total_slots(), usize::MAX);

    // Just below the saturation point the exact value must be preserved.
    let b = MemoryBudget::with_extra_percent(usize::MAX / 2, 100);
    assert_eq!(b.extra_slots(), usize::MAX / 2);
    assert_eq!(b.total_slots(), usize::MAX / 2 * 2);
}

#[test]
fn zero_user_budgets_are_rejected_by_slot_division() {
    let empty = MemoryBudget::with_extra_percent(0, 300);
    assert_eq!(empty.total_slots(), 0);
    // An empty budget cannot provision any server.
    assert!(empty.slots_per_server(1).is_err());
    assert!(empty.slots_per_server(100).is_err());
    // Zero servers are rejected even with a real budget.
    assert!(MemoryBudget::exact(100).slots_per_server(0).is_err());
}

#[test]
fn slots_per_server_covers_the_budget_exactly_or_rounds_up() {
    for views in [1usize, 7, 100, 999, 10_000] {
        for extra in [0u32, 30, 100] {
            for servers in [1usize, 3, 7, 225] {
                let b = MemoryBudget::with_extra_percent(views, extra);
                let per = b.slots_per_server(servers).unwrap();
                assert!(
                    per * servers >= b.total_slots(),
                    "cluster capacity below budget for views={views} extra={extra} servers={servers}"
                );
                // Rounding up wastes less than one slot per server.
                assert!((per - 1) * servers < b.total_slots());
            }
        }
    }
}

#[test]
fn average_replication_factor_tracks_extra_percent() {
    assert!((MemoryBudget::exact(5).average_replication_factor() - 1.0).abs() < 1e-12);
    assert!(
        (MemoryBudget::with_extra_percent(5, 30).average_replication_factor() - 1.3).abs() < 1e-12
    );
    assert!(
        (MemoryBudget::with_extra_percent(5, 200).average_replication_factor() - 3.0).abs() < 1e-12
    );
}

// ---------------------------------------------------------------------------
// Identifier newtype round-trips
// ---------------------------------------------------------------------------

#[test]
fn user_and_machine_ids_round_trip_through_every_accessor() {
    for raw in [0u32, 1, 42, u32::MAX] {
        let u = UserId::new(raw);
        assert_eq!(u.index(), raw);
        assert_eq!(u.as_usize(), raw as usize);
        assert_eq!(u32::from(u), raw);
        assert_eq!(UserId::from(raw), u);

        let m = MachineId::new(raw);
        assert_eq!(m.index(), raw);
        assert_eq!(m.as_usize(), raw as usize);
        assert_eq!(u32::from(m), raw);
        assert_eq!(MachineId::from(raw), m);
    }
}

#[test]
fn role_wrappers_preserve_the_underlying_machine() {
    for raw in [0u32, 9, 224] {
        let m = MachineId::new(raw);
        assert_eq!(ServerId::new(m).machine(), m);
        assert_eq!(ServerId::new(m).index(), raw);
        assert_eq!(BrokerId::new(m).machine(), m);
        assert_eq!(BrokerId::new(m).index(), raw);
    }
    let r = RackId::new(6);
    assert_eq!(r.index(), 6);
    assert_eq!(r.as_usize(), 6);
}

#[test]
fn ids_sort_by_index_and_display_distinctly() {
    let mut users: Vec<UserId> = [5u32, 1, 3].iter().map(|&i| UserId::new(i)).collect();
    users.sort();
    assert_eq!(users, vec![UserId::new(1), UserId::new(3), UserId::new(5)]);

    // Display forms are prefixed so ids of different kinds can never be
    // confused in logs.
    assert_eq!(UserId::new(1).to_string(), "u1");
    assert_eq!(MachineId::new(1).to_string(), "m1");
    assert_eq!(ServerId::new(MachineId::new(1)).to_string(), "s1");
    assert_eq!(BrokerId::new(MachineId::new(1)).to_string(), "b1");
    assert_eq!(RackId::new(1).to_string(), "rack1");
}

#[test]
fn subtree_ids_order_root_first() {
    // The derived ordering puts Root before every switch level — relied on
    // by deterministic tie-breaking when scanning origins.
    let mut subtrees = [
        SubtreeId::Machine(0),
        SubtreeId::Rack(2),
        SubtreeId::Root,
        SubtreeId::Intermediate(1),
    ];
    subtrees.sort();
    assert_eq!(subtrees[0], SubtreeId::Root);
    assert!(matches!(subtrees[1], SubtreeId::Intermediate(_)));
    assert!(matches!(subtrees[2], SubtreeId::Rack(_)));
    assert!(matches!(subtrees[3], SubtreeId::Machine(_)));
}

// ---------------------------------------------------------------------------
// SimTime round-trips
// ---------------------------------------------------------------------------

#[test]
fn time_constructors_are_consistent_with_the_constants() {
    for n in [0u64, 1, 2, 48] {
        assert_eq!(SimTime::from_minutes(n).as_secs(), n * MINUTE_SECS);
        assert_eq!(SimTime::from_hours(n).as_secs(), n * HOUR_SECS);
        assert_eq!(SimTime::from_days(n).as_secs(), n * DAY_SECS);
        // Unit round-trips.
        assert_eq!(SimTime::from_hours(n).whole_hours(), n);
        assert_eq!(SimTime::from_days(n).whole_days(), n);
        assert_eq!(SimTime::from_secs(n).as_secs(), n);
    }
    assert_eq!(SimTime::from_days(1), SimTime::from_hours(24));
    assert_eq!(SimTime::from_hours(1), SimTime::from_minutes(60));
}

#[test]
fn time_subtraction_saturates_at_zero() {
    let early = SimTime::from_secs(10);
    let late = SimTime::from_days(1);
    assert_eq!((early - late), SimTime::ZERO);
    assert_eq!(late.saturating_secs_since(early), DAY_SECS - 10);
    assert_eq!(early.saturating_secs_since(late), 0);
}

#[test]
fn day_fraction_stays_in_unit_interval() {
    for secs in (0..3 * DAY_SECS).step_by(7_211) {
        let f = SimTime::from_secs(secs).day_fraction();
        assert!((0.0..1.0).contains(&f), "day_fraction({secs}) = {f}");
    }
    assert_eq!(SimTime::from_days(5).day_fraction(), 0.0);
}
