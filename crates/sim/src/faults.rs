//! Probabilistic failure injection: seeded MTBF-driven outage schedules.
//!
//! Explicit [`TimedClusterEvent`] schedules are great for pinning one
//! scenario, but long soak runs need the scenario space explored
//! automatically. This module turns a [`Topology`] plus a handful of
//! reliability parameters into a deterministic failure schedule: every
//! machine fails as an independent exponential (MTBF) process, repairs take
//! exponential (MTTR) time, and each failure escalates to its whole rack
//! with a configurable probability — the correlated failure mode (shared
//! switch or power domain) that rack-aware placement exists for.
//!
//! The generator is a discrete-event loop over a priority queue of pending
//! per-machine failure times, so the produced stream is fully determined by
//! the seed: the same `(topology, config)` pair always yields byte-identical
//! schedules, which keeps soak runs reproducible and lets the determinism
//! tests compare entire simulation reports.
//!
//! Outage processes are independent, exactly like real repair crews: a
//! machine repaired during an overlapping rack outage comes back early, and
//! a rack outage may re-kill a machine that was already down. Engines and
//! topologies treat cluster events idempotently, so such overlaps are
//! harmless by construction.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use dynasore_topology::Topology;
use dynasore_types::{
    ClusterEvent, Error, MachineId, Result, SimTime, SubtreeId, TimedClusterEvent,
};

/// Parameters of the seeded failure process.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultInjectionConfig {
    /// Seed of the schedule; the stream is fully determined by it.
    pub seed: u64,
    /// Mean time between failures of one machine, in seconds (the failure
    /// inter-arrival is exponential with this mean).
    pub machine_mtbf_secs: u64,
    /// Mean time to repair, in seconds (exponential).
    pub machine_mttr_secs: u64,
    /// Probability that a machine failure escalates to its whole rack — the
    /// correlated-failure factor (shared top-of-rack switch or power
    /// domain).
    pub rack_failure_fraction: f64,
    /// Failures are generated up to (excluding) this instant; matching
    /// repairs may land after it so every outage ends.
    pub horizon_secs: u64,
}

impl Default for FaultInjectionConfig {
    /// Thirty-day machine MTBF, two-hour MTTR, 5% rack escalation, over a
    /// one-week horizon.
    fn default() -> Self {
        FaultInjectionConfig {
            seed: 0,
            machine_mtbf_secs: 30 * dynasore_types::DAY_SECS,
            machine_mttr_secs: 2 * dynasore_types::HOUR_SECS,
            rack_failure_fraction: 0.05,
            horizon_secs: 7 * dynasore_types::DAY_SECS,
        }
    }
}

impl FaultInjectionConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] if a mean time or the horizon is
    /// zero, or the rack fraction is outside `[0, 1]`.
    pub fn validate(&self) -> Result<()> {
        if self.machine_mtbf_secs == 0 || self.machine_mttr_secs == 0 {
            return Err(Error::invalid_config(
                "MTBF and MTTR must be positive durations",
            ));
        }
        if self.horizon_secs == 0 {
            return Err(Error::invalid_config("failure horizon must be positive"));
        }
        if !(0.0..=1.0).contains(&self.rack_failure_fraction) {
            return Err(Error::invalid_config(
                "rack_failure_fraction must be in [0, 1]",
            ));
        }
        Ok(())
    }
}

/// Draws an exponential duration with the given mean, clamped to ≥ 1 s.
fn exponential_secs(rng: &mut StdRng, mean_secs: u64) -> u64 {
    let u: f64 = rng.gen_range(0.0..1.0);
    ((-(1.0 - u).ln()) * mean_secs as f64).max(1.0) as u64
}

/// Generates a deterministic failure schedule for `topology` under
/// `config`: a time-sorted stream of machine/rack outages and their
/// repairs, ready for [`crate::Simulation::with_cluster_events`].
///
/// # Errors
///
/// Returns [`Error::InvalidConfig`] when the configuration is invalid.
pub fn generate_failure_schedule(
    topology: &Topology,
    config: &FaultInjectionConfig,
) -> Result<Vec<TimedClusterEvent>> {
    config.validate()?;
    let mut rng = StdRng::seed_from_u64(config.seed);
    let machines = topology.machine_count() as u32;

    // Pending next-failure instant per machine; the heap may hold stale
    // entries (a rack escalation reschedules all its members), recognised by
    // disagreeing with this table and skipped.
    let mut next_failure: Vec<u64> = Vec::with_capacity(machines as usize);
    let mut heap: BinaryHeap<Reverse<(u64, u32)>> = BinaryHeap::with_capacity(machines as usize);
    for m in 0..machines {
        let t = exponential_secs(&mut rng, config.machine_mtbf_secs);
        next_failure.push(t);
        heap.push(Reverse((t, m)));
    }

    let mut events = Vec::new();
    while let Some(Reverse((t, m))) = heap.pop() {
        if next_failure[m as usize] != t {
            continue; // Stale entry superseded by a rack escalation.
        }
        if t >= config.horizon_secs {
            break; // Heap pops in time order: everything left is beyond.
        }
        let machine = MachineId::new(m);
        let down_at = SimTime::from_secs(t);
        let repair = exponential_secs(&mut rng, config.machine_mttr_secs);
        let up_at = SimTime::from_secs(t + repair);
        let escalates =
            config.rack_failure_fraction > 0.0 && rng.gen_bool(config.rack_failure_fraction);
        if escalates {
            let rack = topology.rack_of(machine)?;
            events.push(TimedClusterEvent {
                time: down_at,
                event: ClusterEvent::RackDown { rack },
            });
            events.push(TimedClusterEvent {
                time: up_at,
                event: ClusterEvent::RackUp { rack },
            });
            // Every machine of the rack restarts its failure clock after
            // the rack repair (machine-id order keeps the rng stream
            // deterministic).
            for member in topology.machines_in_subtree(SubtreeId::Rack(rack.index())) {
                let next = t + repair + exponential_secs(&mut rng, config.machine_mtbf_secs);
                next_failure[member.as_usize()] = next;
                heap.push(Reverse((next, member.index())));
            }
        } else {
            events.push(TimedClusterEvent {
                time: down_at,
                event: ClusterEvent::MachineDown { machine },
            });
            events.push(TimedClusterEvent {
                time: up_at,
                event: ClusterEvent::MachineUp { machine },
            });
            let next = t + repair + exponential_secs(&mut rng, config.machine_mtbf_secs);
            next_failure[m as usize] = next;
            heap.push(Reverse((next, m)));
        }
    }
    events.sort_by_key(|e| e.time);
    Ok(events)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynasore_types::{DAY_SECS, HOUR_SECS};

    fn soak_config() -> FaultInjectionConfig {
        // Aggressive rates so a small topology produces a dense schedule.
        FaultInjectionConfig {
            seed: 7,
            machine_mtbf_secs: DAY_SECS,
            machine_mttr_secs: HOUR_SECS,
            rack_failure_fraction: 0.2,
            horizon_secs: 14 * DAY_SECS,
        }
    }

    #[test]
    fn validation_rejects_degenerate_configs() {
        assert!(FaultInjectionConfig::default().validate().is_ok());
        for broken in [
            FaultInjectionConfig {
                machine_mtbf_secs: 0,
                ..soak_config()
            },
            FaultInjectionConfig {
                machine_mttr_secs: 0,
                ..soak_config()
            },
            FaultInjectionConfig {
                horizon_secs: 0,
                ..soak_config()
            },
            FaultInjectionConfig {
                rack_failure_fraction: 1.5,
                ..soak_config()
            },
        ] {
            assert!(broken.validate().is_err(), "{broken:?}");
            assert!(
                generate_failure_schedule(&Topology::tree(2, 2, 3, 1).unwrap(), &broken).is_err()
            );
        }
    }

    #[test]
    fn schedules_are_deterministic_per_seed() {
        let topology = Topology::tree(2, 2, 4, 1).unwrap();
        let config = soak_config();
        let a = generate_failure_schedule(&topology, &config).unwrap();
        let b = generate_failure_schedule(&topology, &config).unwrap();
        assert_eq!(a, b, "same seed must reproduce the schedule exactly");
        assert!(!a.is_empty(), "aggressive rates must produce failures");
        let other =
            generate_failure_schedule(&topology, &FaultInjectionConfig { seed: 8, ..config })
                .unwrap();
        assert_ne!(a, other, "different seeds must explore different runs");
    }

    #[test]
    fn schedules_are_sorted_valid_and_paired() {
        let topology = Topology::tree(2, 2, 4, 1).unwrap();
        let events = generate_failure_schedule(&topology, &soak_config()).unwrap();
        let mut last = SimTime::ZERO;
        let mut downs = 0usize;
        let mut ups = 0usize;
        for e in &events {
            assert!(e.time >= last, "events must be time-sorted");
            last = e.time;
            match e.event {
                ClusterEvent::MachineDown { machine } | ClusterEvent::MachineUp { machine } => {
                    assert!(topology.contains(machine));
                    if matches!(e.event, ClusterEvent::MachineDown { .. }) {
                        assert!(e.time.as_secs() < soak_config().horizon_secs);
                        downs += 1;
                    } else {
                        ups += 1;
                    }
                }
                ClusterEvent::RackDown { rack } | ClusterEvent::RackUp { rack } => {
                    assert!(rack.as_usize() < topology.rack_count());
                    if matches!(e.event, ClusterEvent::RackDown { .. }) {
                        assert!(e.time.as_secs() < soak_config().horizon_secs);
                        downs += 1;
                    } else {
                        ups += 1;
                    }
                }
                ClusterEvent::DrainMachine { .. }
                | ClusterEvent::AddRack
                | ClusterEvent::RemoveRack { .. } => {
                    panic!("failure injection only produces outages and repairs");
                }
            }
        }
        assert_eq!(downs, ups, "every outage must come with a repair");
        // With a 20% escalation factor a two-week soak of 16 machines sees
        // both failure modes.
        assert!(events
            .iter()
            .any(|e| matches!(e.event, ClusterEvent::RackDown { .. })));
        assert!(events
            .iter()
            .any(|e| matches!(e.event, ClusterEvent::MachineDown { .. })));
    }

    #[test]
    fn zero_rack_fraction_never_escalates() {
        let topology = Topology::tree(2, 2, 4, 1).unwrap();
        let events = generate_failure_schedule(
            &topology,
            &FaultInjectionConfig {
                rack_failure_fraction: 0.0,
                ..soak_config()
            },
        )
        .unwrap();
        assert!(events.iter().all(|e| matches!(
            e.event,
            ClusterEvent::MachineDown { .. } | ClusterEvent::MachineUp { .. }
        )));
    }

    #[test]
    fn generated_schedules_drive_a_simulation_deterministically() {
        use crate::Simulation;
        use dynasore_core::{DynaSoReEngine, InitialPlacement};
        use dynasore_graph::{GraphPreset, SocialGraph};
        use dynasore_types::MemoryBudget;
        use dynasore_workload::SyntheticTraceGenerator;

        let users = 200usize;
        let graph = SocialGraph::generate(GraphPreset::FacebookLike, users, 3).unwrap();
        let topology = Topology::tree(2, 2, 4, 1).unwrap();
        let config = FaultInjectionConfig {
            seed: 11,
            machine_mtbf_secs: 6 * HOUR_SECS,
            machine_mttr_secs: HOUR_SECS,
            rack_failure_fraction: 0.1,
            horizon_secs: 2 * DAY_SECS,
        };
        let schedule = generate_failure_schedule(&topology, &config).unwrap();
        assert!(!schedule.is_empty());
        let run = || {
            let engine = DynaSoReEngine::builder()
                .topology(topology.clone())
                .budget(MemoryBudget::with_extra_percent(users, 40))
                .initial_placement(InitialPlacement::Random { seed: 3 })
                .build(&graph)
                .unwrap();
            let trace = SyntheticTraceGenerator::paper_defaults(&graph, 2, 3).unwrap();
            Simulation::new(topology.clone(), engine, &graph)
                .with_cluster_events(schedule.clone())
                .run(trace)
                .unwrap()
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "soak run must be reproducible");
        assert!(
            a.recovery_messages() > 0,
            "outages must cost recovery traffic"
        );
    }
}
