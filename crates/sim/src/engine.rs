//! The interface between the simulator and a view-placement strategy.
//!
//! The trait and its message types live in `dynasore-types` (layer 0) so the
//! engines in `dynasore-core`/`dynasore-baselines` can implement it without
//! depending on the simulator above them. They are re-exported here because
//! the simulator is their natural home for readers of the docs.

pub use dynasore_types::{MemoryUsage, Message, PlacementEngine, TrafficSink};
