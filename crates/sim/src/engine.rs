//! The interface between the simulator and a view-placement strategy.
//!
//! The trait and its message/event types live in `dynasore-types` (layer 0)
//! so the engines in `dynasore-core`/`dynasore-baselines` can implement it
//! without depending on the simulator above them. The re-exports below are
//! kept **for backward compatibility only** — new code should import these
//! names from `dynasore_types` directly.

pub use dynasore_types::{
    ClusterEvent, MemoryUsage, Message, PlacementEngine, TimedClusterEvent, TrafficSink,
};
