//! The trace-driven cluster simulation.

use dynasore_graph::SocialGraph;
use dynasore_topology::{Topology, TopologyKind, TrafficAccount};
use dynasore_types::{MessageClass, Result, SimTime, TrafficSink, HOUR_SECS};
use dynasore_workload::{GraphMutation, Request, TimedMutation};

use crate::engine::{Message, PlacementEngine};
use crate::report::SimReport;

/// A [`TrafficSink`] that charges every message to the switches on its path
/// the moment the engine emits it — the simulation never materializes a
/// message buffer, so the per-request accounting path is allocation-free.
struct AccountingSink<'a> {
    topology: &'a Topology,
    traffic: &'a mut TrafficAccount,
    time: SimTime,
    app_messages: &'a mut u64,
    proto_messages: &'a mut u64,
}

impl TrafficSink for AccountingSink<'_> {
    fn record(&mut self, message: Message) {
        match message.class {
            MessageClass::Application => *self.app_messages += 1,
            MessageClass::Protocol => *self.proto_messages += 1,
        }
        if message.is_local() {
            return;
        }
        self.topology.record_path(
            message.from,
            message.to,
            message.class,
            self.time,
            self.traffic,
        );
    }
}

/// Simulation timing parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimulationConfig {
    /// Interval between engine maintenance ticks (counter rotation,
    /// threshold refresh, eviction sweeps). The paper rotates statistics
    /// hourly (§4.3), which is the default.
    pub tick_secs: u64,
    /// Width of the traffic time-series buckets (default: one hour).
    pub traffic_bucket_secs: u64,
}

impl Default for SimulationConfig {
    fn default() -> Self {
        SimulationConfig {
            tick_secs: HOUR_SECS,
            traffic_bucket_secs: HOUR_SECS,
        }
    }
}

/// Drives a request trace through a [`PlacementEngine`] over a [`Topology`]
/// and measures the traffic of every switch.
///
/// The simulation owns a copy of the social graph so that scheduled
/// mutations (flash events, §4.6) can be applied mid-run; read requests look
/// up the *current* followee list at execution time.
#[derive(Debug)]
pub struct Simulation<E> {
    topology: Topology,
    engine: E,
    graph: SocialGraph,
    mutations: Vec<TimedMutation>,
    config: SimulationConfig,
}

impl<E: PlacementEngine> Simulation<E> {
    /// Creates a simulation over `topology` driving `engine`, with a private
    /// copy of `graph`.
    pub fn new(topology: Topology, engine: E, graph: &SocialGraph) -> Self {
        Simulation {
            topology,
            engine,
            graph: graph.clone(),
            mutations: Vec::new(),
            config: SimulationConfig::default(),
        }
    }

    /// Schedules social-graph mutations to be applied during the run
    /// (unsorted input is accepted and sorted by time).
    pub fn with_mutations(mut self, mut mutations: Vec<TimedMutation>) -> Self {
        mutations.sort_by_key(|m| m.time);
        self.mutations = mutations;
        self
    }

    /// Overrides the timing configuration.
    pub fn with_config(mut self, config: SimulationConfig) -> Self {
        self.config = config;
        self
    }

    /// The engine being driven.
    pub fn engine(&self) -> &E {
        &self.engine
    }

    /// Mutable access to the engine (useful between staged runs).
    pub fn engine_mut(&mut self) -> &mut E {
        &mut self.engine
    }

    /// The simulation's current view of the social graph.
    pub fn graph(&self) -> &SocialGraph {
        &self.graph
    }

    /// The topology the simulation runs on.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Runs the whole trace and returns the measurements.
    ///
    /// # Errors
    ///
    /// Propagates engine or configuration errors (none are produced by the
    /// built-in engines, but custom engines may fail).
    pub fn run<I>(&mut self, trace: I) -> Result<SimReport>
    where
        I: IntoIterator<Item = Request>,
    {
        self.run_with_probe(trace, u64::MAX, |_, _, _| {})
    }

    /// Runs the trace, invoking `probe` every `probe_secs` of simulated time
    /// with the current time, engine and graph. Used by experiments that
    /// track engine state over time (e.g. the replica count of a view during
    /// a flash event, Figure 5).
    ///
    /// # Errors
    ///
    /// Propagates engine or configuration errors.
    pub fn run_with_probe<I, F>(
        &mut self,
        trace: I,
        probe_secs: u64,
        mut probe: F,
    ) -> Result<SimReport>
    where
        I: IntoIterator<Item = Request>,
        F: FnMut(SimTime, &E, &SocialGraph),
    {
        let mut traffic = TrafficAccount::new(self.config.traffic_bucket_secs);
        let mut reads = 0u64;
        let mut writes = 0u64;
        let mut app_messages = 0u64;
        let mut proto_messages = 0u64;

        let mut mutation_idx = 0usize;
        let mut next_tick = self.config.tick_secs;
        let mut next_probe = if probe_secs == u64::MAX {
            u64::MAX
        } else {
            probe_secs
        };
        let mut now = SimTime::ZERO;

        for request in trace {
            now = request.time;

            // Apply pending graph mutations.
            while mutation_idx < self.mutations.len()
                && self.mutations[mutation_idx].time <= request.time
            {
                let m = self.mutations[mutation_idx];
                match m.mutation {
                    GraphMutation::AddEdge { follower, followee } => {
                        let _ = self.graph.try_add_edge(follower, followee);
                    }
                    GraphMutation::RemoveEdge { follower, followee } => {
                        self.graph.remove_edge(follower, followee);
                    }
                }
                let mut sink = AccountingSink {
                    topology: &self.topology,
                    traffic: &mut traffic,
                    time: m.time,
                    app_messages: &mut app_messages,
                    proto_messages: &mut proto_messages,
                };
                self.engine.on_graph_change(m.mutation, m.time, &mut sink);
                mutation_idx += 1;
            }

            // Engine maintenance ticks.
            while next_tick <= request.time.as_secs() {
                let tick_time = SimTime::from_secs(next_tick);
                let mut sink = AccountingSink {
                    topology: &self.topology,
                    traffic: &mut traffic,
                    time: tick_time,
                    app_messages: &mut app_messages,
                    proto_messages: &mut proto_messages,
                };
                self.engine.on_tick(tick_time, &mut sink);
                next_tick += self.config.tick_secs;
            }

            // Probes.
            while next_probe <= request.time.as_secs() {
                probe(SimTime::from_secs(next_probe), &self.engine, &self.graph);
                next_probe = next_probe.saturating_add(probe_secs);
            }

            // Execute the request. Messages are accounted inline as the
            // engine emits them.
            let mut sink = AccountingSink {
                topology: &self.topology,
                traffic: &mut traffic,
                time: request.time,
                app_messages: &mut app_messages,
                proto_messages: &mut proto_messages,
            };
            if request.is_read() {
                reads += 1;
                let targets = self.graph.followees(request.user);
                self.engine
                    .handle_read(request.user, targets, request.time, &mut sink);
            } else {
                writes += 1;
                self.engine
                    .handle_write(request.user, request.time, &mut sink);
            }
        }

        // Final probe at the end of the trace.
        if probe_secs != u64::MAX {
            probe(now, &self.engine, &self.graph);
        }

        let switch_counts = match self.topology.kind() {
            TopologyKind::Flat => [1, 0, 0],
            TopologyKind::Tree => [
                1,
                self.topology.intermediate_count(),
                self.topology.rack_count(),
            ],
        };

        Ok(SimReport::new(
            self.engine.name().to_string(),
            traffic,
            reads,
            writes,
            app_messages,
            proto_messages,
            now,
            self.engine.memory_usage(),
            switch_counts,
        ))
    }
}

/// Convenience: the number of switches per tier of a topology, `[top,
/// intermediate, rack]`, as used by [`SimReport::tier_average`].
pub fn switch_counts(topology: &Topology) -> [usize; 3] {
    match topology.kind() {
        TopologyKind::Flat => [1, 0, 0],
        TopologyKind::Tree => [1, topology.intermediate_count(), topology.rack_count()],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::MemoryUsage;
    use dynasore_graph::GraphPreset;
    use dynasore_topology::Tier;
    use dynasore_types::{MachineId, UserId};
    use dynasore_workload::{FlashEventPlan, SyntheticTraceGenerator};

    /// Test engine: view of user `u` lives on server `u % server_count`;
    /// requests are executed by the broker in the view's rack. Ticks and
    /// graph changes emit one protocol message each so their accounting can
    /// be asserted.
    struct ModuloEngine {
        topology: Topology,
        ticks: u64,
        graph_changes: u64,
    }

    impl ModuloEngine {
        fn new(topology: Topology) -> Self {
            ModuloEngine {
                topology,
                ticks: 0,
                graph_changes: 0,
            }
        }

        fn server_of(&self, user: UserId) -> MachineId {
            let servers = self.topology.servers();
            servers[user.as_usize() % servers.len()].machine()
        }

        fn broker_of(&self, user: UserId) -> MachineId {
            self.topology
                .local_broker(self.server_of(user))
                .expect("server has a broker")
                .machine()
        }
    }

    impl PlacementEngine for ModuloEngine {
        fn name(&self) -> &str {
            "modulo"
        }

        fn handle_read(
            &mut self,
            user: UserId,
            targets: &[UserId],
            _time: SimTime,
            out: &mut dyn TrafficSink,
        ) {
            let broker = self.broker_of(user);
            for &t in targets {
                let server = self.server_of(t);
                out.record(Message::application(broker, server));
                out.record(Message::application(server, broker));
            }
        }

        fn handle_write(&mut self, user: UserId, _time: SimTime, out: &mut dyn TrafficSink) {
            let broker = self.broker_of(user);
            out.record(Message::application(broker, self.server_of(user)));
        }

        fn on_tick(&mut self, _time: SimTime, out: &mut dyn TrafficSink) {
            self.ticks += 1;
            let brokers = self.topology.brokers();
            out.record(Message::protocol(
                brokers[0].machine(),
                brokers[1].machine(),
            ));
        }

        fn on_graph_change(
            &mut self,
            _mutation: GraphMutation,
            _time: SimTime,
            out: &mut dyn TrafficSink,
        ) {
            self.graph_changes += 1;
            let brokers = self.topology.brokers();
            out.record(Message::protocol(
                brokers[0].machine(),
                brokers[0].machine(),
            ));
        }

        fn replica_count(&self, _user: UserId) -> usize {
            1
        }

        fn memory_usage(&self) -> MemoryUsage {
            MemoryUsage {
                used_slots: 42,
                capacity_slots: 100,
            }
        }
    }

    fn small_setup() -> (SocialGraph, Topology) {
        let graph = SocialGraph::generate(GraphPreset::TwitterLike, 120, 3).unwrap();
        let topology = Topology::tree(2, 2, 4, 1).unwrap();
        (graph, topology)
    }

    #[test]
    fn run_counts_requests_and_traffic() {
        let (graph, topology) = small_setup();
        let engine = ModuloEngine::new(topology.clone());
        let trace = SyntheticTraceGenerator::paper_defaults(&graph, 1, 5).unwrap();
        let expected_requests = trace.request_count();
        let mut sim = Simulation::new(topology, engine, &graph);
        let report = sim.run(trace).unwrap();
        assert_eq!(
            report.read_count() + report.write_count(),
            expected_requests
        );
        assert!(report.traffic().grand_total() > 0);
        assert!(report.top_switch_total() > 0);
        assert_eq!(report.engine_name(), "modulo");
        assert_eq!(report.memory_usage().used_slots, 42);
        // Hourly ticks over one day of trace.
        assert!(sim.engine().ticks >= 22, "ticks: {}", sim.engine().ticks);
    }

    #[test]
    fn local_messages_produce_no_switch_traffic() {
        let (graph, topology) = small_setup();
        // Flat single-rack topology variant: use a tree where the engine
        // sends machine-local protocol messages on graph change (see
        // ModuloEngine::on_graph_change) and verify they are counted as
        // messages but not as traffic.
        let engine = ModuloEngine::new(topology.clone());
        let plan = FlashEventPlan::random(
            &graph,
            UserId::new(0),
            5,
            SimTime::from_secs(10),
            SimTime::from_secs(20),
            1,
        )
        .unwrap();
        let trace = vec![
            Request::read(SimTime::from_secs(5), UserId::new(1)),
            Request::read(SimTime::from_secs(30), UserId::new(2)),
        ];
        let mut sim = Simulation::new(topology, engine, &graph).with_mutations(plan.mutations());
        let report = sim.run(trace).unwrap();
        // 10 mutations (5 adds + 5 removes) → 10 local protocol messages.
        assert_eq!(sim.engine().graph_changes, 10);
        assert_eq!(report.total_protocol_messages(), 10);
        // Local protocol messages cross no switch.
        assert_eq!(report.traffic().tier_total(Tier::Top).protocol, 0);
    }

    #[test]
    fn mutations_change_read_targets() {
        // User 0 follows nobody initially; after the mutation she follows
        // user 1, so her second read generates traffic.
        let mut graph = SocialGraph::new(4);
        graph.add_edge(UserId::new(2), UserId::new(3));
        let topology = Topology::tree(2, 2, 4, 1).unwrap();
        let engine = ModuloEngine::new(topology.clone());
        let mutation = TimedMutation {
            time: SimTime::from_secs(50),
            mutation: GraphMutation::AddEdge {
                follower: UserId::new(0),
                followee: UserId::new(1),
            },
        };
        let trace = vec![
            Request::read(SimTime::from_secs(10), UserId::new(0)),
            Request::read(SimTime::from_secs(100), UserId::new(0)),
        ];
        let mut sim = Simulation::new(topology, engine, &graph).with_mutations(vec![mutation]);
        let report = sim.run(trace).unwrap();
        // Only the second read touched a followee: 2 application messages.
        assert_eq!(report.total_application_messages(), 2);
    }

    #[test]
    fn probe_is_invoked_periodically() {
        let (graph, topology) = small_setup();
        let engine = ModuloEngine::new(topology.clone());
        let trace = SyntheticTraceGenerator::paper_defaults(&graph, 1, 7).unwrap();
        let mut sim = Simulation::new(topology, engine, &graph);
        let mut probes = 0usize;
        let report = sim
            .run_with_probe(trace, 6 * HOUR_SECS, |_, engine, graph| {
                probes += 1;
                assert_eq!(engine.replica_count(UserId::new(0)), 1);
                assert_eq!(graph.user_count(), 120);
            })
            .unwrap();
        // 4 probes within the day (6h, 12h, 18h) — at least 3 — plus the
        // final probe at the end of the trace.
        assert!(probes >= 4, "probes: {probes}");
        assert!(report.end_time().as_secs() > 0);
    }

    #[test]
    fn switch_counts_helper() {
        let tree = Topology::paper_tree().unwrap();
        assert_eq!(switch_counts(&tree), [1, 5, 25]);
        let flat = Topology::flat(10).unwrap();
        assert_eq!(switch_counts(&flat), [1, 0, 0]);
    }
}
