//! The trace-driven cluster simulation.

use dynasore_graph::SocialGraph;
use dynasore_topology::{Switch, Topology, TopologyKind, TrafficAccount};
use dynasore_types::{
    Latency, LatencyHistogram, MachineId, MessageClass, NetworkModel, Result, SimTime, SubtreeId,
    TimedClusterEvent, TraceEventKind, TrafficSink, UserId, HOUR_SECS, NANOS_PER_SEC,
};
use dynasore_workload::{GraphMutation, Request, TimedMutation};

use crate::durable::{DurableIoStats, DurableTier};
use crate::engine::{Message, PlacementEngine};
use crate::obs::SimObs;
use crate::report::{LatencyStats, ReliabilityStats, SimReport};

/// A [`TrafficSink`] that charges every message to the switches on its path
/// the moment the engine emits it — the simulation never materializes a
/// message buffer, so the per-request accounting path is allocation-free.
///
/// Under a finite [`NetworkModel`] each message additionally samples its
/// end-to-end latency from the per-switch queues; `request_latency` keeps
/// the slowest *application-class* sample of the current request (a read
/// fans out to its target servers in parallel, so the slowest leg gates the
/// response). Protocol messages — replica transfers, routing updates and
/// other control-plane work an engine may kick off while serving a request
/// — still charge the queues they cross (they consume real bandwidth) but
/// never count towards the request's response time: they complete
/// asynchronously, off the read's critical path. Finally,
/// [`TrafficSink::congestion`] answers placement engines from the live
/// queue state, closing the loop for congestion-aware replica placement.
struct AccountingSink<'a> {
    topology: &'a Topology,
    traffic: &'a mut TrafficAccount,
    time: SimTime,
    app_messages: &'a mut u64,
    proto_messages: &'a mut u64,
    recovery_messages: &'a mut u64,
    request_latency: Latency,
    /// Optional flight recorder for the engine's `trace` events. `None` —
    /// the default — makes `trace` a no-op, so unobserved runs do exactly
    /// what they did before observability existed.
    obs: Option<&'a mut SimObs>,
}

impl TrafficSink for AccountingSink<'_> {
    fn record(&mut self, message: Message) {
        match message.class {
            MessageClass::Application => *self.app_messages += 1,
            MessageClass::Protocol => *self.proto_messages += 1,
        }
        if message.involves_persistent() {
            *self.recovery_messages += 1;
        }
        if message.is_local() {
            return;
        }
        let latency = self.topology.record_path_timed(
            message.from,
            message.to,
            message.class,
            self.time,
            self.traffic,
        );
        if message.class.is_application() && latency > self.request_latency {
            self.request_latency = latency;
        }
    }

    fn congestion(&self, subtree: SubtreeId) -> Latency {
        let switch = match subtree {
            SubtreeId::Root => Switch::Top,
            SubtreeId::Intermediate(i) => Switch::Intermediate(i),
            SubtreeId::Rack(r) => Switch::Rack(r),
            SubtreeId::Machine(m) => match self.topology.rack_of(MachineId::new(m)) {
                Ok(rack) => Switch::Rack(rack.index()),
                Err(_) => return Latency::ZERO,
            },
        };
        self.traffic.queued_delay(switch, self.time)
    }

    fn trace(&mut self, event: TraceEventKind) {
        if let Some(obs) = self.obs.as_mut() {
            obs.trace(self.time.as_secs().saturating_mul(NANOS_PER_SEC), event);
        }
    }
}

/// Per-worker accounting partial for the parallel write path: the same
/// inline switch charging as [`AccountingSink`], but owning its
/// [`TrafficAccount`] so worker threads need no synchronization at all.
/// Partials merge into the run's account in worker order after the batch
/// joins; the parallel path only runs under the infinite network model,
/// where every merged quantity is a plain sum (or a max of zeros), so the
/// merged result is byte-identical to serial accounting regardless of how
/// the batch was split.
struct WorkerSink<'a> {
    topology: &'a Topology,
    traffic: TrafficAccount,
    time: SimTime,
    app_messages: u64,
    proto_messages: u64,
    recovery_messages: u64,
}

impl TrafficSink for WorkerSink<'_> {
    fn record(&mut self, message: Message) {
        match message.class {
            MessageClass::Application => self.app_messages += 1,
            MessageClass::Protocol => self.proto_messages += 1,
        }
        if message.involves_persistent() {
            self.recovery_messages += 1;
        }
        if message.is_local() {
            return;
        }
        self.topology.record_path_timed(
            message.from,
            message.to,
            message.class,
            self.time,
            &mut self.traffic,
        );
    }

    fn set_time(&mut self, time: SimTime) {
        self.time = time;
    }
}

/// Flushes the parallel driver's queued write batch through
/// [`PlacementEngine::handle_write_batch`], merging the per-worker
/// accounting partials in worker order (deterministic and independent of
/// thread scheduling). When the engine declines the batch — too few writes,
/// too few racks, or an engine without a parallel path — it replays
/// serially through `handle_write` in queue order, which *is* the serial
/// execution.
#[allow(clippy::too_many_arguments)]
fn flush_write_batch<E: PlacementEngine>(
    engine: &mut E,
    topology: &Topology,
    config: &SimulationConfig,
    threads: usize,
    pending: &mut Vec<(UserId, SimTime)>,
    traffic: &mut TrafficAccount,
    app_messages: &mut u64,
    proto_messages: &mut u64,
    recovery_messages: &mut u64,
    write_latency: &mut LatencyHistogram,
) {
    if pending.is_empty() {
        return;
    }
    let mut workers: Vec<WorkerSink<'_>> = (0..threads)
        .map(|_| WorkerSink {
            topology,
            traffic: TrafficAccount::with_model(config.traffic_bucket_secs, config.network),
            time: SimTime::ZERO,
            app_messages: 0,
            proto_messages: 0,
            recovery_messages: 0,
        })
        .collect();
    let mut slots: Vec<&mut (dyn TrafficSink + Send)> = workers
        .iter_mut()
        .map(|w| w as &mut (dyn TrafficSink + Send))
        .collect();
    if engine.handle_write_batch(pending, &mut slots) {
        for worker in &workers {
            traffic.merge(&worker.traffic);
            *app_messages += worker.app_messages;
            *proto_messages += worker.proto_messages;
            *recovery_messages += worker.recovery_messages;
        }
        // The parallel path only runs under the infinite model, where a
        // write's critical-path latency is exactly zero — the same sample
        // the serial path records per write.
        for _ in 0..pending.len() {
            write_latency.record(Latency::ZERO);
        }
    } else {
        for &(user, time) in pending.iter() {
            let mut sink = AccountingSink {
                topology,
                traffic,
                time,
                app_messages,
                proto_messages,
                recovery_messages,
                request_latency: Latency::ZERO,
                obs: None,
            };
            engine.handle_write(user, time, &mut sink);
            write_latency.record(sink.request_latency);
        }
    }
    pending.clear();
}

/// Simulation timing parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimulationConfig {
    /// Interval between engine maintenance ticks (counter rotation,
    /// threshold refresh, eviction sweeps). The paper rotates statistics
    /// hourly (§4.3), which is the default.
    pub tick_secs: u64,
    /// Width of the traffic time-series buckets (default: one hour).
    pub traffic_bucket_secs: u64,
    /// The time model the run charges switch queues under. The default is
    /// the degenerate [`NetworkModel::infinite`] model: no queueing, zero
    /// latency samples, and traffic accounting byte-identical to the
    /// historical unit-count behaviour.
    pub network: NetworkModel,
    /// Width, in engine ticks, of the sliding window behind
    /// [`crate::SimReport::worst_window_availability`]. The default of 1
    /// reports the worst single tick; wider windows smooth over sub-tick
    /// blips. A value of 0 is treated as 1.
    pub availability_window_ticks: usize,
}

impl Default for SimulationConfig {
    fn default() -> Self {
        SimulationConfig {
            tick_secs: HOUR_SECS,
            traffic_bucket_secs: HOUR_SECS,
            network: NetworkModel::infinite(),
            availability_window_ticks: 1,
        }
    }
}

/// Drives a request trace through a [`PlacementEngine`] over a [`Topology`]
/// and measures the traffic of every switch.
///
/// The simulation owns a copy of the social graph so that scheduled
/// mutations (flash events, §4.6) can be applied mid-run; read requests look
/// up the *current* followee list at execution time.
#[derive(Debug)]
pub struct Simulation<E> {
    topology: Topology,
    engine: E,
    graph: SocialGraph,
    mutations: Vec<TimedMutation>,
    cluster_events: Vec<TimedClusterEvent>,
    config: SimulationConfig,
    durable: Option<Box<dyn DurableTier>>,
    obs: Option<SimObs>,
    /// Worker budget for the parallel write path (1 = fully serial driver).
    threads: usize,
    /// Worker count the last run actually used: `threads` when the parallel
    /// path engaged, 1 when the run fell back to the serial driver. `None`
    /// before any run.
    effective_threads: Option<usize>,
}

impl<E: PlacementEngine> Simulation<E> {
    /// Creates a simulation over `topology` driving `engine`, with a private
    /// copy of `graph`.
    pub fn new(topology: Topology, engine: E, graph: &SocialGraph) -> Self {
        Simulation {
            topology,
            engine,
            graph: graph.clone(),
            mutations: Vec::new(),
            cluster_events: Vec::new(),
            config: SimulationConfig::default(),
            durable: None,
            obs: None,
            threads: 1,
            effective_threads: None,
        }
    }

    /// Sets the worker budget for the parallel write path. With more than
    /// one thread the driver batches consecutive write requests and offers each
    /// batch to [`PlacementEngine::handle_write_batch`], which shards the
    /// work across that many threads; everything else (reads, ticks,
    /// mutations, cluster events, probes, durable appends) stays serial and
    /// acts as a batch boundary.
    ///
    /// The determinism contract: a run with any `threads` value produces a
    /// [`SimReport`] byte-identical to `threads = 1`. Parallel batches are
    /// only offered when the accounting is order-independent — the infinite
    /// [`NetworkModel`] and no attached observer; a finite network model or
    /// an observer falls back to the fully serial driver. The fallback is
    /// surfaced: the run warns on stderr and
    /// [`Simulation::effective_threads`] reports the worker count actually
    /// used, so drivers (and their JSON output) cannot claim parallelism
    /// that never happened.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Schedules social-graph mutations to be applied during the run
    /// (unsorted input is accepted and sorted by time).
    pub fn with_mutations(mut self, mut mutations: Vec<TimedMutation>) -> Self {
        mutations.sort_by_key(|m| m.time);
        self.mutations = mutations;
        self
    }

    /// Schedules a failure/elasticity schedule: machine and rack outages,
    /// drains and capacity additions applied at their due times, interleaved
    /// deterministically with the request trace and the graph mutations.
    /// Unsorted input is accepted and sorted by time; events due at the same
    /// time apply in schedule order. Events dated after the last request do
    /// not fire (the simulation ends with the trace).
    pub fn with_cluster_events(mut self, mut events: Vec<TimedClusterEvent>) -> Self {
        events.sort_by_key(|e| e.time);
        self.cluster_events = events;
        self
    }

    /// Overrides the timing configuration.
    pub fn with_config(mut self, config: SimulationConfig) -> Self {
        self.config = config;
        self
    }

    /// Runs the simulation under a time-aware [`NetworkModel`]: switch
    /// queues fill and drain, every read samples a latency, and the report
    /// gains meaningful percentiles and congestion-collapse detection.
    pub fn with_network(mut self, network: NetworkModel) -> Self {
        self.config.network = network;
        self
    }

    /// Mirrors the run into a durable tier (optional file-backed recovery
    /// path): every write request is appended to `tier`, and each cluster
    /// event that makes the engine fetch lost views from the persistent
    /// store triggers a sync-and-replay of the tier, so the report's
    /// [`DurableIoStats`] measure recovery from real bytes instead of
    /// message counts alone. Without this call, runs are byte-identical to
    /// the historical tier-less behaviour.
    pub fn with_durable_tier(mut self, tier: Box<dyn DurableTier>) -> Self {
        self.durable = Some(tier);
        self
    }

    /// Attaches a flight-recorder observer. The run records engine trace
    /// events (replica lifecycle, cluster changes) stamped with simulated
    /// time plus a per-tick sampling pass (availability, switch-queue
    /// gauges, per-shard durable lag, collapse onset) into the observer,
    /// retrievable afterwards with [`Simulation::take_observer`].
    ///
    /// Observation is a write-only side channel: an observed run produces a
    /// [`SimReport`] equal to an unobserved one, and without this call the
    /// simulation takes the structurally identical pre-observability path.
    pub fn with_observer(mut self, obs: SimObs) -> Self {
        self.obs = Some(obs);
        self
    }

    /// The attached observer, if any.
    pub fn observer(&self) -> Option<&SimObs> {
        self.obs.as_ref()
    }

    /// Detaches and returns the observer (with everything recorded so far).
    pub fn take_observer(&mut self) -> Option<SimObs> {
        self.obs.take()
    }

    /// Worker count the last run actually used: the configured
    /// [`Simulation::with_threads`] value when the parallel write path
    /// engaged, `1` when the run fell back to the serial driver (finite
    /// network model or attached observer), `None` before any run.
    ///
    /// Deliberately *not* part of [`SimReport`]: the report is a pure
    /// measurement with a byte-identity contract across thread counts, so
    /// driver provenance lives here and in bench JSON instead.
    pub fn effective_threads(&self) -> Option<usize> {
        self.effective_threads
    }

    /// The engine being driven.
    pub fn engine(&self) -> &E {
        &self.engine
    }

    /// Mutable access to the engine (useful between staged runs).
    pub fn engine_mut(&mut self) -> &mut E {
        &mut self.engine
    }

    /// The simulation's current view of the social graph.
    pub fn graph(&self) -> &SocialGraph {
        &self.graph
    }

    /// The topology the simulation runs on.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Runs the whole trace and returns the measurements.
    ///
    /// # Errors
    ///
    /// Propagates engine or configuration errors (none are produced by the
    /// built-in engines, but custom engines may fail).
    pub fn run<I>(&mut self, trace: I) -> Result<SimReport>
    where
        I: IntoIterator<Item = Request>,
    {
        self.run_with_probe(trace, u64::MAX, |_, _, _| {})
    }

    /// Runs the trace, invoking `probe` every `probe_secs` of simulated time
    /// with the current time, engine and graph. Used by experiments that
    /// track engine state over time (e.g. the replica count of a view during
    /// a flash event, Figure 5).
    ///
    /// # Errors
    ///
    /// Propagates engine or configuration errors.
    pub fn run_with_probe<I, F>(
        &mut self,
        trace: I,
        probe_secs: u64,
        mut probe: F,
    ) -> Result<SimReport>
    where
        I: IntoIterator<Item = Request>,
        F: FnMut(SimTime, &E, &SocialGraph),
    {
        let mut traffic =
            TrafficAccount::with_model(self.config.traffic_bucket_secs, self.config.network);
        let mut reads = 0u64;
        let mut writes = 0u64;
        let mut app_messages = 0u64;
        let mut proto_messages = 0u64;
        let mut recovery_messages = 0u64;
        let mut read_targets = 0u64;
        let mut read_latency = LatencyHistogram::new();
        let mut write_latency = LatencyHistogram::new();
        let mut durable_io = DurableIoStats::default();

        // Cumulative (unreachable, read_targets) at each tick boundary; the
        // worst sliding window over these snapshots feeds
        // `worst_window_availability`. Starts with the implicit t=0 origin.
        let mut window_snaps: Vec<(u64, u64)> = vec![(0, 0)];

        let mut mutation_idx = 0usize;
        let mut event_idx = 0usize;
        let mut next_tick = self.config.tick_secs;
        let mut next_probe = if probe_secs == u64::MAX {
            u64::MAX
        } else {
            probe_secs
        };
        let mut now = SimTime::ZERO;

        // The parallel write path only engages when its accounting is
        // provably order-independent: unit counting under the infinite
        // network model, with no observer expecting ordered trace events.
        let parallel_writes =
            self.threads > 1 && self.config.network.is_infinite() && self.obs.is_none();
        self.effective_threads = Some(if parallel_writes { self.threads } else { 1 });
        if self.threads > 1 && !parallel_writes {
            let mut reasons = Vec::new();
            if !self.config.network.is_infinite() {
                reasons.push("the network model is finite");
            }
            if self.obs.is_some() {
                reasons.push("an observer is attached");
            }
            eprintln!(
                "# simulation: {} threads requested but {} — running the serial driver",
                self.threads,
                reasons.join(" and ")
            );
        }
        let mut pending_writes: Vec<(UserId, SimTime)> = Vec::new();

        for request in trace {
            now = request.time;

            // Batched parallel mode: queue consecutive writes while nothing
            // else is due at or before this request (no mutation, cluster
            // event, tick or probe), and flush the queue through the
            // engine's batch hook the moment anything would interleave.
            // Durable appends still happen here, at queue time, so the tier
            // sees exactly the serial byte stream in trace order.
            if parallel_writes {
                let boundary = request.is_read()
                    || self
                        .mutations
                        .get(mutation_idx)
                        .map(|m| m.time <= request.time)
                        .unwrap_or(false)
                    || self
                        .cluster_events
                        .get(event_idx)
                        .map(|e| e.time <= request.time)
                        .unwrap_or(false)
                    || next_tick <= request.time.as_secs()
                    || next_probe <= request.time.as_secs();
                if !boundary {
                    writes += 1;
                    if let Some(tier) = self.durable.as_mut() {
                        tier.append(request.user, request.time)?;
                        durable_io.appends += 1;
                    }
                    pending_writes.push((request.user, request.time));
                    continue;
                }
                flush_write_batch(
                    &mut self.engine,
                    &self.topology,
                    &self.config,
                    self.threads,
                    &mut pending_writes,
                    &mut traffic,
                    &mut app_messages,
                    &mut proto_messages,
                    &mut recovery_messages,
                    &mut write_latency,
                );
            }

            // Apply pending graph mutations and cluster events, merged by
            // their due times (a mutation and an event due at the same
            // instant apply mutation-first) so the engine observes both
            // schedules in true simulated-time order. For cluster events the
            // driver's own topology copy is updated first so that traffic
            // accounting knows about machines added at runtime; the engine
            // then reacts through its cluster-change hook, reporting any
            // recovery traffic inline.
            loop {
                let next_mutation = self
                    .mutations
                    .get(mutation_idx)
                    .map(|m| m.time)
                    .filter(|&t| t <= request.time);
                let next_event = self
                    .cluster_events
                    .get(event_idx)
                    .map(|e| e.time)
                    .filter(|&t| t <= request.time);
                let mutation_first = match (next_mutation, next_event) {
                    (None, None) => break,
                    (Some(_), None) => true,
                    (None, Some(_)) => false,
                    (Some(mt), Some(et)) => mt <= et,
                };
                if mutation_first {
                    let m = self.mutations[mutation_idx];
                    match m.mutation {
                        GraphMutation::AddEdge { follower, followee } => {
                            let _ = self.graph.try_add_edge(follower, followee);
                        }
                        GraphMutation::RemoveEdge { follower, followee } => {
                            self.graph.remove_edge(follower, followee);
                        }
                    }
                    let mut sink = AccountingSink {
                        topology: &self.topology,
                        traffic: &mut traffic,
                        time: m.time,
                        app_messages: &mut app_messages,
                        proto_messages: &mut proto_messages,
                        recovery_messages: &mut recovery_messages,
                        request_latency: Latency::ZERO,
                        obs: self.obs.as_mut(),
                    };
                    self.engine.on_graph_change(m.mutation, m.time, &mut sink);
                    mutation_idx += 1;
                } else {
                    let e = self.cluster_events[event_idx];
                    self.topology.apply_cluster_event(e.event)?;
                    let recovery_before = recovery_messages;
                    let mut sink = AccountingSink {
                        topology: &self.topology,
                        traffic: &mut traffic,
                        time: e.time,
                        app_messages: &mut app_messages,
                        proto_messages: &mut proto_messages,
                        recovery_messages: &mut recovery_messages,
                        request_latency: Latency::ZERO,
                        obs: self.obs.as_mut(),
                    };
                    self.engine.on_cluster_change(e.event, e.time, &mut sink);
                    // The engine fetched lost views from the persistent
                    // tier: with a durable tier attached, that recovery
                    // re-reads real bytes.
                    if recovery_messages > recovery_before {
                        if let Some(tier) = self.durable.as_mut() {
                            tier.sync()?;
                            let replay = tier.replay()?;
                            durable_io.bytes_replayed += replay.bytes_replayed;
                            durable_io.critical_path_bytes += replay.max_shard_bytes;
                            durable_io.tier_shards = replay.shards;
                            durable_io.replays += 1;
                            if let Some(obs) = self.obs.as_mut() {
                                obs.trace(
                                    e.time.as_secs().saturating_mul(NANOS_PER_SEC),
                                    TraceEventKind::ReplayCompleted {
                                        bytes: replay.bytes_replayed,
                                        shards: replay.shards as u32,
                                    },
                                );
                            }
                        }
                    }
                    event_idx += 1;
                }
            }

            // Engine maintenance ticks.
            while next_tick <= request.time.as_secs() {
                let tick_time = SimTime::from_secs(next_tick);
                let mut sink = AccountingSink {
                    topology: &self.topology,
                    traffic: &mut traffic,
                    time: tick_time,
                    app_messages: &mut app_messages,
                    proto_messages: &mut proto_messages,
                    recovery_messages: &mut recovery_messages,
                    request_latency: Latency::ZERO,
                    obs: self.obs.as_mut(),
                };
                self.engine.on_tick(tick_time, &mut sink);
                // The per-tick observability sample rides the tick cadence,
                // so its cost scales with simulated hours, not requests.
                if let Some(obs) = self.obs.as_mut() {
                    obs.sample_tick(
                        next_tick,
                        self.engine.unreachable_reads(),
                        &self.topology,
                        &traffic,
                        self.durable.as_deref(),
                        &self.config.network,
                    );
                }
                next_tick += self.config.tick_secs;
                window_snaps.push((self.engine.unreachable_reads(), read_targets));
            }

            // Probes.
            while next_probe <= request.time.as_secs() {
                probe(SimTime::from_secs(next_probe), &self.engine, &self.graph);
                next_probe = next_probe.saturating_add(probe_secs);
            }

            // Execute the request. Messages are accounted inline as the
            // engine emits them.
            let mut sink = AccountingSink {
                topology: &self.topology,
                traffic: &mut traffic,
                time: request.time,
                app_messages: &mut app_messages,
                proto_messages: &mut proto_messages,
                recovery_messages: &mut recovery_messages,
                request_latency: Latency::ZERO,
                obs: self.obs.as_mut(),
            };
            if request.is_read() {
                reads += 1;
                let targets = self.graph.followees(request.user);
                read_targets += targets.len() as u64;
                self.engine
                    .handle_read(request.user, targets, request.time, &mut sink);
                read_latency.record(sink.request_latency);
            } else {
                writes += 1;
                // Persist-then-notify, as the paper's write path does:
                // updates land in the durable tier before the caches see
                // them.
                if let Some(tier) = self.durable.as_mut() {
                    tier.append(request.user, request.time)?;
                    durable_io.appends += 1;
                }
                self.engine
                    .handle_write(request.user, request.time, &mut sink);
                write_latency.record(sink.request_latency);
            }
        }

        // Writes still queued when the trace ended.
        if parallel_writes {
            flush_write_batch(
                &mut self.engine,
                &self.topology,
                &self.config,
                self.threads,
                &mut pending_writes,
                &mut traffic,
                &mut app_messages,
                &mut proto_messages,
                &mut recovery_messages,
                &mut write_latency,
            );
        }

        // Graceful shutdown: commit and fsync any batched durable appends,
        // so every write the run acknowledged survives a cold reopen of the
        // tier's files (counters are unaffected — syncs are not replays).
        if let Some(tier) = self.durable.as_mut() {
            tier.sync()?;
        }

        // Final probe at the end of the trace.
        if probe_secs != u64::MAX {
            probe(now, &self.engine, &self.graph);
        }

        // Fold the run's message totals and durable I/O into the observer's
        // registry (counters the per-message hot path deliberately skips).
        if let Some(obs) = self.obs.as_mut() {
            obs.finish_run(
                app_messages,
                proto_messages,
                recovery_messages,
                self.durable.as_ref().map(|_| &durable_io),
            );
        }

        // Close the last (partial) availability window and find the sliding
        // window with the highest unserved fraction. Ratios are compared by
        // u128 cross-multiplication: no floats touch the report's integers.
        let final_snap = (self.engine.unreachable_reads(), read_targets);
        if window_snaps.last() != Some(&final_snap) {
            window_snaps.push(final_snap);
        }
        let window = self.config.availability_window_ticks.max(1);
        let mut worst: (u64, u64) = (0, 0);
        for i in 1..window_snaps.len() {
            let j = i.saturating_sub(window);
            let (u0, t0) = window_snaps[j];
            let (u1, t1) = window_snaps[i];
            let delta = (u1 - u0, t1 - t0);
            let is_worse = delta.1 > 0
                && (worst.1 == 0
                    || u128::from(delta.0) * u128::from(worst.1)
                        > u128::from(worst.0) * u128::from(delta.1));
            if is_worse {
                worst = delta;
            }
        }

        let switch_counts = match self.topology.kind() {
            TopologyKind::Flat => [1, 0, 0],
            TopologyKind::Tree => [
                1,
                self.topology.intermediate_count(),
                self.topology.rack_count(),
            ],
        };

        let latency = LatencyStats {
            collapsed: !self.config.network.is_infinite()
                && traffic.max_queue_delay() >= self.config.network.collapse_threshold,
            max_queue_delay: traffic.max_queue_delay(),
            max_switch_backlog: traffic.max_switch_backlog(),
            read: read_latency,
            write: write_latency,
        };

        Ok(SimReport::new(
            self.engine.name().to_string(),
            traffic,
            reads,
            writes,
            app_messages,
            proto_messages,
            now,
            self.engine.memory_usage(),
            switch_counts,
            ReliabilityStats {
                recovery_messages,
                unreachable_reads: self.engine.unreachable_reads(),
                read_targets,
                worst_window_unreachable: worst.0,
                worst_window_read_targets: worst.1,
            },
            latency,
            self.durable.as_ref().map(|_| durable_io),
        ))
    }
}

/// Convenience: the number of switches per tier of a topology, `[top,
/// intermediate, rack]`, as used by [`SimReport::tier_average`].
pub fn switch_counts(topology: &Topology) -> [usize; 3] {
    match topology.kind() {
        TopologyKind::Flat => [1, 0, 0],
        TopologyKind::Tree => [1, topology.intermediate_count(), topology.rack_count()],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::MemoryUsage;
    use dynasore_graph::GraphPreset;
    use dynasore_topology::Tier;
    use dynasore_types::{MachineId, UserId};
    use dynasore_workload::{FlashEventPlan, SyntheticTraceGenerator};

    /// Test engine: view of user `u` lives on server `u % server_count`;
    /// requests are executed by the broker in the view's rack. Ticks and
    /// graph changes emit one protocol message each so their accounting can
    /// be asserted.
    struct ModuloEngine {
        topology: Topology,
        ticks: u64,
        graph_changes: u64,
        cluster_changes: u64,
    }

    impl ModuloEngine {
        fn new(topology: Topology) -> Self {
            ModuloEngine {
                topology,
                ticks: 0,
                graph_changes: 0,
                cluster_changes: 0,
            }
        }

        fn server_of(&self, user: UserId) -> MachineId {
            let servers = self.topology.servers();
            servers[user.as_usize() % servers.len()].machine()
        }

        fn broker_of(&self, user: UserId) -> MachineId {
            self.topology
                .local_broker(self.server_of(user))
                .expect("server has a broker")
                .machine()
        }
    }

    impl PlacementEngine for ModuloEngine {
        fn name(&self) -> &str {
            "modulo"
        }

        fn handle_read(
            &mut self,
            user: UserId,
            targets: &[UserId],
            _time: SimTime,
            out: &mut dyn TrafficSink,
        ) {
            let broker = self.broker_of(user);
            for &t in targets {
                let server = self.server_of(t);
                out.record(Message::application(broker, server));
                out.record(Message::application(server, broker));
            }
        }

        fn handle_write(&mut self, user: UserId, _time: SimTime, out: &mut dyn TrafficSink) {
            let broker = self.broker_of(user);
            out.record(Message::application(broker, self.server_of(user)));
        }

        fn on_tick(&mut self, _time: SimTime, out: &mut dyn TrafficSink) {
            self.ticks += 1;
            let brokers = self.topology.brokers();
            out.record(Message::protocol(
                brokers[0].machine(),
                brokers[1].machine(),
            ));
        }

        fn on_graph_change(
            &mut self,
            _mutation: GraphMutation,
            _time: SimTime,
            out: &mut dyn TrafficSink,
        ) {
            self.graph_changes += 1;
            let brokers = self.topology.brokers();
            out.record(Message::protocol(
                brokers[0].machine(),
                brokers[0].machine(),
            ));
        }

        fn on_cluster_change(
            &mut self,
            _event: dynasore_types::ClusterEvent,
            _time: SimTime,
            out: &mut dyn TrafficSink,
        ) {
            self.cluster_changes += 1;
            // One recovery fetch per event so the accounting can be
            // asserted.
            out.record(Message::persistent_fetch(
                self.topology.servers()[0].machine(),
            ));
        }

        fn unreachable_reads(&self) -> u64 {
            self.cluster_changes // Arbitrary nonzero value to test plumbing.
        }

        fn replica_count(&self, _user: UserId) -> usize {
            1
        }

        fn memory_usage(&self) -> MemoryUsage {
            MemoryUsage {
                used_slots: 42,
                capacity_slots: 100,
            }
        }
    }

    fn small_setup() -> (SocialGraph, Topology) {
        let graph = SocialGraph::generate(GraphPreset::TwitterLike, 120, 3).unwrap();
        let topology = Topology::tree(2, 2, 4, 1).unwrap();
        (graph, topology)
    }

    #[test]
    fn run_counts_requests_and_traffic() {
        let (graph, topology) = small_setup();
        let engine = ModuloEngine::new(topology.clone());
        let trace = SyntheticTraceGenerator::paper_defaults(&graph, 1, 5).unwrap();
        let expected_requests = trace.request_count();
        let mut sim = Simulation::new(topology, engine, &graph);
        let report = sim.run(trace).unwrap();
        assert_eq!(
            report.read_count() + report.write_count(),
            expected_requests
        );
        assert!(report.traffic().grand_total() > 0);
        assert!(report.top_switch_total() > 0);
        assert_eq!(report.engine_name(), "modulo");
        assert_eq!(report.memory_usage().used_slots, 42);
        // Hourly ticks over one day of trace.
        assert!(sim.engine().ticks >= 22, "ticks: {}", sim.engine().ticks);
    }

    #[test]
    fn local_messages_produce_no_switch_traffic() {
        let (graph, topology) = small_setup();
        // Flat single-rack topology variant: use a tree where the engine
        // sends machine-local protocol messages on graph change (see
        // ModuloEngine::on_graph_change) and verify they are counted as
        // messages but not as traffic.
        let engine = ModuloEngine::new(topology.clone());
        let plan = FlashEventPlan::random(
            &graph,
            UserId::new(0),
            5,
            SimTime::from_secs(10),
            SimTime::from_secs(20),
            1,
        )
        .unwrap();
        let trace = vec![
            Request::read(SimTime::from_secs(5), UserId::new(1)),
            Request::read(SimTime::from_secs(30), UserId::new(2)),
        ];
        let mut sim = Simulation::new(topology, engine, &graph).with_mutations(plan.mutations());
        let report = sim.run(trace).unwrap();
        // 10 mutations (5 adds + 5 removes) → 10 local protocol messages.
        assert_eq!(sim.engine().graph_changes, 10);
        assert_eq!(report.total_protocol_messages(), 10);
        // Local protocol messages cross no switch.
        assert_eq!(report.traffic().tier_total(Tier::Top).protocol, 0);
    }

    #[test]
    fn mutations_change_read_targets() {
        // User 0 follows nobody initially; after the mutation she follows
        // user 1, so her second read generates traffic.
        let mut graph = SocialGraph::new(4);
        graph.add_edge(UserId::new(2), UserId::new(3));
        let topology = Topology::tree(2, 2, 4, 1).unwrap();
        let engine = ModuloEngine::new(topology.clone());
        let mutation = TimedMutation {
            time: SimTime::from_secs(50),
            mutation: GraphMutation::AddEdge {
                follower: UserId::new(0),
                followee: UserId::new(1),
            },
        };
        let trace = vec![
            Request::read(SimTime::from_secs(10), UserId::new(0)),
            Request::read(SimTime::from_secs(100), UserId::new(0)),
        ];
        let mut sim = Simulation::new(topology, engine, &graph).with_mutations(vec![mutation]);
        let report = sim.run(trace).unwrap();
        // Only the second read touched a followee: 2 application messages.
        assert_eq!(report.total_application_messages(), 2);
    }

    #[test]
    fn probe_is_invoked_periodically() {
        let (graph, topology) = small_setup();
        let engine = ModuloEngine::new(topology.clone());
        let trace = SyntheticTraceGenerator::paper_defaults(&graph, 1, 7).unwrap();
        let mut sim = Simulation::new(topology, engine, &graph);
        let mut probes = 0usize;
        let report = sim
            .run_with_probe(trace, 6 * HOUR_SECS, |_, engine, graph| {
                probes += 1;
                assert_eq!(engine.replica_count(UserId::new(0)), 1);
                assert_eq!(graph.user_count(), 120);
            })
            .unwrap();
        // 4 probes within the day (6h, 12h, 18h) — at least 3 — plus the
        // final probe at the end of the trace.
        assert!(probes >= 4, "probes: {probes}");
        assert!(report.end_time().as_secs() > 0);
    }

    #[test]
    fn cluster_events_fire_in_time_order_and_are_accounted() {
        let (graph, topology) = small_setup();
        let engine = ModuloEngine::new(topology.clone());
        let victim = topology.servers()[0].machine();
        let events = vec![
            TimedClusterEvent {
                time: SimTime::from_secs(200),
                event: dynasore_types::ClusterEvent::MachineUp { machine: victim },
            },
            TimedClusterEvent {
                time: SimTime::from_secs(50),
                event: dynasore_types::ClusterEvent::MachineDown { machine: victim },
            },
            // Dated after the last request: must not fire.
            TimedClusterEvent {
                time: SimTime::from_secs(10_000),
                event: dynasore_types::ClusterEvent::AddRack,
            },
        ];
        let trace = vec![
            Request::read(SimTime::from_secs(10), UserId::new(1)),
            Request::read(SimTime::from_secs(300), UserId::new(2)),
        ];
        let mut sim = Simulation::new(topology.clone(), engine, &graph).with_cluster_events(events);
        let report = sim.run(trace).unwrap();
        // Both due events fired (unsorted input was sorted), the late one
        // did not.
        assert_eq!(sim.engine().cluster_changes, 2);
        // The driver's topology tracked the liveness flips: down then up.
        assert!(sim.topology().is_live(victim));
        assert_eq!(sim.topology().rack_count(), topology.rack_count());
        // Each event's persistent fetch was counted as recovery traffic and
        // charged through the top switch.
        assert_eq!(report.recovery_messages(), 2);
        assert!(report.traffic().tier_total(Tier::Top).protocol >= 2);
        // The engine's unreachable counter is surfaced, and availability is
        // derived from it.
        assert_eq!(report.unreachable_reads(), 2);
        assert!(report.availability() < 1.0);
        assert!(report.reliability().read_targets > 0);
    }

    #[test]
    fn worst_window_availability_exposes_blackouts_the_run_average_hides() {
        // User 0 follows users 1 and 2: every read attempts 2 targets.
        let mut graph = SocialGraph::new(4);
        graph.add_edge(UserId::new(0), UserId::new(1));
        graph.add_edge(UserId::new(0), UserId::new(2));
        let topology = Topology::tree(2, 2, 4, 1).unwrap();
        let engine = ModuloEngine::new(topology.clone());
        let victim = topology.servers()[0].machine();
        // Quiet first tick (4 targets), then a cluster event (ModuloEngine
        // reports one unreachable read per event) inside the second tick
        // window (4 targets).
        let events = vec![TimedClusterEvent {
            time: SimTime::from_secs(5_000),
            event: dynasore_types::ClusterEvent::MachineDown { machine: victim },
        }];
        let trace = vec![
            Request::read(SimTime::from_secs(100), UserId::new(0)),
            Request::read(SimTime::from_secs(200), UserId::new(0)),
            Request::read(SimTime::from_secs(4_000), UserId::new(0)),
            Request::read(SimTime::from_secs(6_000), UserId::new(0)),
        ];
        let mut sim = Simulation::new(topology, engine, &graph).with_cluster_events(events);
        let report = sim.run(trace).unwrap();
        // Run-average: 1 unreachable over 8 targets.
        assert!((report.availability() - 0.875).abs() < 1e-12);
        // Worst single-tick window: the 1 unreachable landed among the 4
        // targets after the first hourly tick.
        assert_eq!(report.reliability().worst_window_unreachable, 1);
        assert_eq!(report.reliability().worst_window_read_targets, 4);
        assert!((report.worst_window_availability() - 0.75).abs() < 1e-12);
        assert!(report.worst_window_availability() < report.availability());
    }

    /// Records the order in which schedule callbacks fire, to pin the
    /// merged mutation/event interleaving.
    struct OrderRecorder {
        log: std::cell::RefCell<Vec<(&'static str, u64)>>,
    }

    impl PlacementEngine for OrderRecorder {
        fn name(&self) -> &str {
            "order-recorder"
        }
        fn handle_read(
            &mut self,
            _user: UserId,
            _targets: &[UserId],
            _time: SimTime,
            _out: &mut dyn TrafficSink,
        ) {
        }
        fn handle_write(&mut self, _user: UserId, _time: SimTime, _out: &mut dyn TrafficSink) {}
        fn on_graph_change(
            &mut self,
            _mutation: GraphMutation,
            time: SimTime,
            _out: &mut dyn TrafficSink,
        ) {
            self.log.borrow_mut().push(("mutation", time.as_secs()));
        }
        fn on_cluster_change(
            &mut self,
            _event: dynasore_types::ClusterEvent,
            time: SimTime,
            _out: &mut dyn TrafficSink,
        ) {
            self.log.borrow_mut().push(("event", time.as_secs()));
        }
        fn replica_count(&self, _user: UserId) -> usize {
            1
        }
        fn memory_usage(&self) -> MemoryUsage {
            MemoryUsage::default()
        }
    }

    #[test]
    fn mutations_and_cluster_events_merge_by_timestamp() {
        let (graph, topology) = small_setup();
        let victim = topology.servers()[0].machine();
        // Event at t=50 predates the mutation at t=60; both are pending at
        // the t=100 request and must apply in simulated-time order. The
        // t=70 mutation/event tie applies mutation-first.
        let mutations = vec![
            TimedMutation {
                time: SimTime::from_secs(60),
                mutation: GraphMutation::AddEdge {
                    follower: UserId::new(0),
                    followee: UserId::new(1),
                },
            },
            TimedMutation {
                time: SimTime::from_secs(70),
                mutation: GraphMutation::RemoveEdge {
                    follower: UserId::new(0),
                    followee: UserId::new(1),
                },
            },
        ];
        let events = vec![
            TimedClusterEvent {
                time: SimTime::from_secs(50),
                event: dynasore_types::ClusterEvent::MachineDown { machine: victim },
            },
            TimedClusterEvent {
                time: SimTime::from_secs(70),
                event: dynasore_types::ClusterEvent::MachineUp { machine: victim },
            },
        ];
        let engine = OrderRecorder {
            log: std::cell::RefCell::new(Vec::new()),
        };
        let trace = vec![Request::read(SimTime::from_secs(100), UserId::new(1))];
        let mut sim = Simulation::new(topology, engine, &graph)
            .with_mutations(mutations)
            .with_cluster_events(events);
        sim.run(trace).unwrap();
        assert_eq!(
            *sim.engine().log.borrow(),
            vec![
                ("event", 50),
                ("mutation", 60),
                ("mutation", 70),
                ("event", 70),
            ]
        );
    }

    #[test]
    fn add_rack_events_grow_the_accounting_topology() {
        let (graph, topology) = small_setup();
        let engine = ModuloEngine::new(topology.clone());
        let events = vec![TimedClusterEvent {
            time: SimTime::from_secs(20),
            event: dynasore_types::ClusterEvent::AddRack,
        }];
        let trace = vec![
            Request::read(SimTime::from_secs(10), UserId::new(1)),
            Request::read(SimTime::from_secs(30), UserId::new(2)),
        ];
        let mut sim = Simulation::new(topology.clone(), engine, &graph).with_cluster_events(events);
        let report = sim.run(trace).unwrap();
        assert_eq!(sim.topology().rack_count(), topology.rack_count() + 1);
        // The report's per-tier averages use the final switch counts.
        assert!(report.tier_average(Tier::Rack) >= 0.0);
    }

    #[test]
    fn effective_threads_reports_the_serial_fallback() {
        let (graph, topology) = small_setup();
        let trace: Vec<Request> = SyntheticTraceGenerator::paper_defaults(&graph, 1, 2)
            .unwrap()
            .collect();

        // Before any run there is nothing to report.
        let sim = Simulation::new(
            topology.clone(),
            ModuloEngine::new(topology.clone()),
            &graph,
        )
        .with_threads(4);
        assert_eq!(sim.effective_threads(), None);

        // Infinite network, no observer: the parallel path engages.
        let mut sim = Simulation::new(
            topology.clone(),
            ModuloEngine::new(topology.clone()),
            &graph,
        )
        .with_threads(4);
        sim.run(trace.clone()).unwrap();
        assert_eq!(sim.effective_threads(), Some(4));

        // An attached observer forces the serial driver — and the run must
        // say so instead of silently claiming 4 workers.
        let mut sim = Simulation::new(
            topology.clone(),
            ModuloEngine::new(topology.clone()),
            &graph,
        )
        .with_threads(4)
        .with_observer(SimObs::new(64));
        sim.run(trace.clone()).unwrap();
        assert_eq!(sim.effective_threads(), Some(1));

        // So does a finite network model.
        use dynasore_types::Bandwidth;
        let model = dynasore_types::NetworkModel {
            top_service: Bandwidth::units_per_sec(1_000),
            intermediate_service: Bandwidth::units_per_sec(1_000),
            rack_service: Bandwidth::units_per_sec(1_000),
            hop_latency: dynasore_types::Latency::from_micros(5),
            collapse_threshold: dynasore_types::Latency::from_secs(1),
        };
        let mut sim = Simulation::new(
            topology.clone(),
            ModuloEngine::new(topology.clone()),
            &graph,
        )
        .with_threads(4)
        .with_network(model);
        sim.run(trace.clone()).unwrap();
        assert_eq!(sim.effective_threads(), Some(1));

        // A single-thread run is trivially effective at 1.
        let mut sim = Simulation::new(topology.clone(), ModuloEngine::new(topology), &graph);
        sim.run(trace).unwrap();
        assert_eq!(sim.effective_threads(), Some(1));
    }

    #[test]
    fn finite_network_model_produces_latency_samples() {
        use dynasore_types::Bandwidth;
        let (graph, topology) = small_setup();
        let engine = ModuloEngine::new(topology.clone());
        let trace: Vec<Request> = SyntheticTraceGenerator::paper_defaults(&graph, 1, 5)
            .unwrap()
            .collect();
        // Slow switches: 1 unit takes 1 ms everywhere.
        let model = dynasore_types::NetworkModel {
            top_service: Bandwidth::units_per_sec(1_000),
            intermediate_service: Bandwidth::units_per_sec(1_000),
            rack_service: Bandwidth::units_per_sec(1_000),
            hop_latency: dynasore_types::Latency::from_micros(5),
            collapse_threshold: dynasore_types::Latency::from_secs(1),
        };
        let engine2 = ModuloEngine::new(topology.clone());
        let report_a = Simulation::new(topology.clone(), engine, &graph)
            .with_network(model)
            .run(trace.clone())
            .unwrap();
        let report_b = Simulation::new(topology.clone(), engine2, &graph)
            .with_network(model)
            .run(trace.clone())
            .unwrap();
        // Reads fan out over several 10-unit application messages, so the
        // slowest leg takes at least one service time.
        assert!(report_a.read_latency_p50() >= dynasore_types::Latency::from_millis(10));
        assert!(report_a.read_latency_p99() >= report_a.read_latency_p50());
        assert!(report_a.latency().read.len() == report_a.read_count());
        assert!(report_a.latency().write.len() == report_a.write_count());
        // Time-aware runs stay deterministic.
        assert_eq!(report_a, report_b);

        // The same trace under the infinite model samples only zeros.
        let engine3 = ModuloEngine::new(topology.clone());
        let unit_report = Simulation::new(topology, engine3, &graph)
            .run(trace)
            .unwrap();
        assert_eq!(
            unit_report.read_latency_p99(),
            dynasore_types::Latency::ZERO
        );
        assert!(!unit_report.congestion_collapsed());
        // Unit totals agree between the modes: time never changes *what*
        // crosses a switch, only *when* it gets through.
        assert_eq!(
            unit_report.traffic().grand_total(),
            report_a.traffic().grand_total()
        );
    }

    /// An engine that records the congestion feedback it sees, proving the
    /// sink exposes live queue state to placement decisions.
    struct CongestionProbe {
        topology: Topology,
        observed: std::cell::Cell<u64>,
    }

    impl PlacementEngine for CongestionProbe {
        fn name(&self) -> &str {
            "congestion-probe"
        }
        fn handle_read(
            &mut self,
            _user: UserId,
            targets: &[UserId],
            _time: SimTime,
            out: &mut dyn TrafficSink,
        ) {
            let broker = self.topology.brokers()[0].machine();
            let server = self.topology.servers()[10].machine(); // another rack
            for _ in targets {
                out.record(Message::application(broker, server));
            }
            let seen = out
                .congestion(dynasore_types::SubtreeId::Rack(0))
                .as_nanos();
            self.observed.set(self.observed.get().max(seen));
        }
        fn handle_write(&mut self, _user: UserId, _time: SimTime, _out: &mut dyn TrafficSink) {}
        fn replica_count(&self, _user: UserId) -> usize {
            1
        }
        fn memory_usage(&self) -> MemoryUsage {
            MemoryUsage::default()
        }
    }

    #[test]
    fn sink_reports_congestion_from_live_queue_state() {
        use dynasore_types::Bandwidth;
        let (graph, topology) = small_setup();
        let engine = CongestionProbe {
            topology: topology.clone(),
            observed: std::cell::Cell::new(0),
        };
        let model = dynasore_types::NetworkModel {
            top_service: Bandwidth::INFINITE,
            intermediate_service: Bandwidth::INFINITE,
            rack_service: Bandwidth::units_per_sec(10), // 1 unit = 100 ms
            hop_latency: dynasore_types::Latency::ZERO,
            collapse_threshold: dynasore_types::Latency::from_secs(1),
        };
        let trace = vec![
            Request::read(SimTime::from_secs(1), UserId::new(1)),
            Request::read(SimTime::from_secs(1), UserId::new(2)),
        ];
        let mut sim = Simulation::new(topology, engine, &graph).with_network(model);
        sim.run(trace).unwrap();
        // The second read observes the backlog the first one left behind on
        // rack 0's switch.
        assert!(sim.engine().observed.get() > 0);
    }

    #[test]
    fn switch_counts_helper() {
        let tree = Topology::paper_tree().unwrap();
        assert_eq!(switch_counts(&tree), [1, 5, 25]);
        let flat = Topology::flat(10).unwrap();
        assert_eq!(switch_counts(&flat), [1, 0, 0]);
    }
}
