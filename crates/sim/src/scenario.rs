//! Declarative adversarial scenario engine.
//!
//! The simulator's individual knobs — trace generators, graph mutations,
//! cluster-event schedules, fault injection — each exercise one stressor.
//! Real incidents stack several at once: an attack lands during an outage,
//! a decommission overlaps a traffic spike. This module composes those
//! knobs into named, seed-deterministic *scenarios*: a [`ScenarioKind`]
//! plus a [`ScenarioConfig`] expands into one [`ScenarioScript`] — a
//! request trace, a graph-mutation schedule and a cluster-event schedule
//! sharing a single timeline — and [`ScenarioRunner::run`] drives any
//! [`PlacementEngine`] through it, scoring the damage in a
//! [`DegradationReport`] against a quiet baseline run of the same engine.
//!
//! Everything is a pure function of `(graph, topology, ScenarioConfig)`:
//! the same inputs always produce byte-identical scripts and therefore
//! byte-identical [`SimReport`]s, so scorecards can be diffed across
//! commits like any other benchmark snapshot.

use std::collections::BTreeSet;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use dynasore_graph::SocialGraph;
use dynasore_topology::{Topology, TopologyKind};
use dynasore_types::{
    ClusterEvent, Error, Latency, RackId, Result, SimTime, TimedClusterEvent, UserId, DAY_SECS,
    HOUR_SECS,
};
use dynasore_workload::{
    FlashEventPlan, Request, SyntheticConfig, SyntheticTraceGenerator, TimedMutation,
};

use crate::durable::DurableTier;
use crate::engine::PlacementEngine;
use crate::faults::{generate_failure_schedule, FaultInjectionConfig};
use crate::obs::SimObs;
use crate::report::SimReport;
use crate::simulation::{Simulation, SimulationConfig};

/// Tuning knobs shared by every scenario. The seed fully determines each
/// script: same `(graph, topology, config)` → byte-identical scenario.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScenarioConfig {
    /// Seed of every random choice a script makes (attacker selection,
    /// flash-crowd membership, MTBF schedules).
    pub seed: u64,
    /// Length of each scenario in days of simulated time.
    pub days: u64,
    /// Attack intensity: reads issued per attacker per hour while an attack
    /// window is open (hot-key flood, flash crowd).
    pub flood_factor: f64,
    /// Fraction of the user base recruited as colluding attackers.
    pub attacker_fraction: f64,
    /// Number of racks taken down together by the regional-failure
    /// scenario (clamped so at least one rack stays up).
    pub regional_racks: usize,
}

impl Default for ScenarioConfig {
    /// Two simulated days, 2% of users colluding, 8 reads per attacker per
    /// hour, two racks per regional outage.
    fn default() -> Self {
        ScenarioConfig {
            seed: 0,
            days: 2,
            flood_factor: 8.0,
            attacker_fraction: 0.02,
            regional_racks: 2,
        }
    }
}

impl ScenarioConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] if any knob is degenerate.
    pub fn validate(&self) -> Result<()> {
        if self.days == 0 {
            return Err(Error::invalid_config("scenarios must last at least a day"));
        }
        if self.flood_factor < 1.0 {
            return Err(Error::invalid_config("flood_factor must be at least 1"));
        }
        if !(0.0..=1.0).contains(&self.attacker_fraction) || self.attacker_fraction == 0.0 {
            return Err(Error::invalid_config("attacker_fraction must be in (0, 1]"));
        }
        if self.regional_racks == 0 {
            return Err(Error::invalid_config(
                "a regional failure needs at least one rack",
            ));
        }
        Ok(())
    }
}

/// The five scripted adversarial scenarios.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScenarioKind {
    /// A colluding subset of users all start following the most-followed
    /// user and hammer her view with reads for a quarter of the run —
    /// the hot-key analogue of a cache-busting attack.
    HotKeyFlood,
    /// A flash crowd (sudden followers plus a read storm) lands on the
    /// most-followed user *while a rack is down*, so the spill-over
    /// capacity the crowd would normally absorb into is missing.
    FlashCrowdNeighborDown,
    /// The read/write ratio inverts mid-run (4 : 1 becomes 1 : 4),
    /// punishing placements tuned for the historical read mix.
    RatioInversion,
    /// A correlated multi-rack outage lands on top of a seeded MTBF
    /// failure schedule — the region-loss case rack-aware replication
    /// exists for.
    RegionalFailure,
    /// A rack is permanently decommissioned ([`ClusterEvent::RemoveRack`])
    /// a third of the way into the run while traffic keeps flowing: an
    /// elastic shrink under load.
    DecommissionUnderLoad,
}

impl ScenarioKind {
    /// Every scenario, in scorecard order.
    pub const ALL: [ScenarioKind; 5] = [
        ScenarioKind::HotKeyFlood,
        ScenarioKind::FlashCrowdNeighborDown,
        ScenarioKind::RatioInversion,
        ScenarioKind::RegionalFailure,
        ScenarioKind::DecommissionUnderLoad,
    ];

    /// Stable kebab-case name used in scorecards and JSON artifacts.
    pub fn name(self) -> &'static str {
        match self {
            ScenarioKind::HotKeyFlood => "hot-key-flood",
            ScenarioKind::FlashCrowdNeighborDown => "flash-crowd-neighbor-down",
            ScenarioKind::RatioInversion => "ratio-inversion",
            ScenarioKind::RegionalFailure => "regional-failure",
            ScenarioKind::DecommissionUnderLoad => "decommission-under-load",
        }
    }

    /// Expands this scenario into a concrete script for `graph` on
    /// `topology`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] when the config is degenerate or
    /// the topology cannot host the scenario (rack-level scenarios need a
    /// tree with at least two racks).
    pub fn script(
        self,
        graph: &SocialGraph,
        topology: &Topology,
        config: &ScenarioConfig,
    ) -> Result<ScenarioScript> {
        config.validate()?;
        if graph.user_count() < 2 {
            return Err(Error::invalid_config(
                "adversarial scenarios need at least two users",
            ));
        }
        match self {
            ScenarioKind::HotKeyFlood => hot_key_flood(graph, config),
            ScenarioKind::FlashCrowdNeighborDown => {
                flash_crowd_neighbor_down(graph, require_racks(topology, 2)?, config)
            }
            ScenarioKind::RatioInversion => ratio_inversion(graph, config),
            ScenarioKind::RegionalFailure => {
                regional_failure(graph, require_racks(topology, 2)?, config)
            }
            ScenarioKind::DecommissionUnderLoad => {
                decommission_under_load(graph, require_racks(topology, 2)?, config)
            }
        }
    }
}

/// One fully expanded scenario: a request trace, graph mutations and
/// cluster events on a shared timeline, plus the disruption window the
/// degradation metrics are anchored to.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioScript {
    /// The scenario's stable name ([`ScenarioKind::name`]).
    pub name: &'static str,
    /// The complete time-sorted request trace (base load plus any attack
    /// traffic).
    pub trace: Vec<Request>,
    /// Scheduled graph mutations (attack follows, flash crowds).
    pub mutations: Vec<TimedMutation>,
    /// Scheduled cluster events (outages, repairs, decommissions).
    pub events: Vec<TimedClusterEvent>,
    /// When the disruption opens.
    pub disruption_start: SimTime,
    /// When the disruption closes (end of trace for permanent damage such
    /// as a decommission).
    pub disruption_end: SimTime,
}

/// How badly one engine degraded under one scenario, relative to its own
/// quiet baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct DegradationReport {
    /// The scenario's stable name.
    pub scenario: &'static str,
    /// The engine that was driven.
    pub engine: String,
    /// Whole-run availability ([`SimReport::availability`]).
    pub availability: f64,
    /// Worst sliding-window availability
    /// ([`SimReport::worst_window_availability`]).
    pub worst_window_availability: f64,
    /// p99 read latency under the scenario.
    pub read_p99: Latency,
    /// p99 read latency of the quiet baseline run.
    pub quiet_read_p99: Latency,
    /// Degradation ratio `(read_p99 + 1ns) / (quiet_read_p99 + 1ns)` — the
    /// +1ns keeps the ratio finite under the zero-latency infinite network
    /// model.
    pub p99_ratio: f64,
    /// Recovery messages the engine sent fetching lost views.
    pub recovery_messages: u64,
    /// Bytes replayed from the durable tier during recovery (0 when the
    /// run had no durable tier attached).
    pub recovery_bytes: u64,
    /// Seconds from the disruption opening until the engine last accrued
    /// an unreachable read — its time back to steady state (0 if reads
    /// never became unreachable).
    pub time_to_steady_secs: u64,
    /// The full measurement, for determinism checks and drill-down.
    pub report: SimReport,
}

/// Expands scenarios and drives engines through them.
#[derive(Debug, Clone, Copy, Default)]
pub struct ScenarioRunner {
    /// Scenario knobs (seed, duration, intensities).
    pub scenario: ScenarioConfig,
    /// Simulation timing and network model shared by quiet and disrupted
    /// runs.
    pub simulation: SimulationConfig,
}

impl ScenarioRunner {
    /// Creates a runner from scenario and simulation configuration.
    pub fn new(scenario: ScenarioConfig, simulation: SimulationConfig) -> Self {
        ScenarioRunner {
            scenario,
            simulation,
        }
    }

    /// Runs `engine` over the undisturbed base trace — the baseline every
    /// [`DegradationReport`] is scored against. Use a freshly built engine;
    /// the run mutates it.
    ///
    /// # Errors
    ///
    /// Propagates configuration and engine errors.
    pub fn quiet_baseline<E: PlacementEngine>(
        &self,
        topology: Topology,
        graph: &SocialGraph,
        engine: E,
    ) -> Result<SimReport> {
        self.scenario.validate()?;
        let trace =
            SyntheticTraceGenerator::paper_defaults(graph, self.scenario.days, self.scenario.seed)?;
        Simulation::new(topology, engine, graph)
            .with_config(self.simulation)
            .run(trace)
    }

    /// Drives a freshly built `engine` through `kind` and scores the
    /// damage against `quiet` (that same engine's [`Self::quiet_baseline`]
    /// report). Attach a durable tier to measure recovery bytes instead of
    /// message counts alone.
    ///
    /// # Errors
    ///
    /// Propagates script-expansion, configuration and engine errors.
    pub fn run<E: PlacementEngine>(
        &self,
        kind: ScenarioKind,
        topology: Topology,
        graph: &SocialGraph,
        engine: E,
        quiet: &SimReport,
        durable: Option<Box<dyn DurableTier>>,
    ) -> Result<DegradationReport> {
        let (report, _) = self.run_inner(kind, topology, graph, engine, quiet, durable, None)?;
        Ok(report)
    }

    /// [`run`](ScenarioRunner::run) with a flight-recorder observer
    /// attached: the returned [`SimObs`] holds the scenario's decision
    /// timeline and metrics registry alongside the scorecard. Observation
    /// is passive — the [`DegradationReport`] is byte-identical to an
    /// unobserved run of the same inputs.
    ///
    /// # Errors
    ///
    /// Same conditions as [`run`](ScenarioRunner::run).
    #[allow(clippy::too_many_arguments)]
    pub fn run_observed<E: PlacementEngine>(
        &self,
        kind: ScenarioKind,
        topology: Topology,
        graph: &SocialGraph,
        engine: E,
        quiet: &SimReport,
        durable: Option<Box<dyn DurableTier>>,
        obs: SimObs,
    ) -> Result<(DegradationReport, SimObs)> {
        let (report, obs) =
            self.run_inner(kind, topology, graph, engine, quiet, durable, Some(obs))?;
        Ok((
            report,
            obs.expect("observer round-trips through the simulation"),
        ))
    }

    #[allow(clippy::too_many_arguments)]
    fn run_inner<E: PlacementEngine>(
        &self,
        kind: ScenarioKind,
        topology: Topology,
        graph: &SocialGraph,
        engine: E,
        quiet: &SimReport,
        durable: Option<Box<dyn DurableTier>>,
        obs: Option<SimObs>,
    ) -> Result<(DegradationReport, Option<SimObs>)> {
        let script = kind.script(graph, &topology, &self.scenario)?;
        let mut sim = Simulation::new(topology, engine, graph)
            .with_config(self.simulation)
            .with_mutations(script.mutations)
            .with_cluster_events(script.events);
        if let Some(tier) = durable {
            sim = sim.with_durable_tier(tier);
        }
        if let Some(obs) = obs {
            sim = sim.with_observer(obs);
        }
        // Track when the engine last accrued an unreachable read: the probe
        // fires every tick, so the resolution of time-to-steady-state is
        // one tick.
        let mut last_unreachable = 0u64;
        let mut last_increase = SimTime::ZERO;
        let probe_secs = self.simulation.tick_secs;
        let report = sim.run_with_probe(script.trace, probe_secs, |time, engine, _| {
            let unreachable = engine.unreachable_reads();
            if unreachable > last_unreachable {
                last_unreachable = unreachable;
                last_increase = time;
            }
        })?;
        let time_to_steady_secs = if last_unreachable == 0 {
            0
        } else {
            last_increase.saturating_secs_since(script.disruption_start)
        };
        let read_p99 = report.read_latency_p99();
        let quiet_read_p99 = quiet.read_latency_p99();
        let obs = sim.take_observer();
        Ok((
            DegradationReport {
                scenario: script.name,
                engine: report.engine_name().to_string(),
                availability: report.availability(),
                worst_window_availability: report.worst_window_availability(),
                read_p99,
                quiet_read_p99,
                p99_ratio: (read_p99.as_nanos() + 1) as f64
                    / (quiet_read_p99.as_nanos() + 1) as f64,
                recovery_messages: report.recovery_messages(),
                recovery_bytes: report.durable_io().map(|io| io.bytes_replayed).unwrap_or(0),
                time_to_steady_secs,
                report,
            },
            obs,
        ))
    }
}

/// The rack-level scenarios need a tree with enough racks to lose one.
fn require_racks(topology: &Topology, racks: usize) -> Result<&Topology> {
    if topology.kind() != TopologyKind::Tree || topology.rack_count() < racks {
        return Err(Error::invalid_config(format!(
            "this scenario needs a tree topology with at least {racks} racks"
        )));
    }
    Ok(topology)
}

/// The most-followed user (smallest id on ties) — the natural hot key.
fn most_followed(graph: &SocialGraph) -> UserId {
    let mut best = UserId::new(0);
    let mut best_degree = 0usize;
    for user in graph.users() {
        let degree = graph.in_degree(user);
        if degree > best_degree {
            best = user;
            best_degree = degree;
        }
    }
    best
}

/// Merges two time-sorted traces; `base` requests win ties so attack
/// traffic lands after the organic request due at the same instant.
fn merge_traces(base: Vec<Request>, extra: Vec<Request>) -> Vec<Request> {
    let mut merged = Vec::with_capacity(base.len() + extra.len());
    let mut base = base.into_iter().peekable();
    let mut extra = extra.into_iter().peekable();
    loop {
        match (base.peek(), extra.peek()) {
            (Some(b), Some(e)) => {
                if b.time <= e.time {
                    merged.push(base.next().expect("peeked"));
                } else {
                    merged.push(extra.next().expect("peeked"));
                }
            }
            (Some(_), None) => merged.push(base.next().expect("peeked")),
            (None, Some(_)) => merged.push(extra.next().expect("peeked")),
            (None, None) => break,
        }
    }
    merged
}

/// Evenly spread reads from `readers` (round-robin) across `[start, end)`:
/// `per_reader_per_hour × readers × hours` requests in time order.
fn read_storm(
    readers: &[UserId],
    start: SimTime,
    end: SimTime,
    per_reader_per_hour: f64,
) -> Vec<Request> {
    let window_secs = end.saturating_secs_since(start);
    if readers.is_empty() || window_secs == 0 {
        return Vec::new();
    }
    let hours = window_secs as f64 / HOUR_SECS as f64;
    let total = (per_reader_per_hour * readers.len() as f64 * hours).round() as u64;
    (0..total)
        .map(|slot| {
            let offset = slot as u128 * window_secs as u128 / total as u128;
            Request::read(
                SimTime::from_secs(start.as_secs() + offset as u64),
                readers[slot as usize % readers.len()],
            )
        })
        .collect()
}

/// The base organic load every scenario layers its disruption over.
fn base_trace(graph: &SocialGraph, config: &ScenarioConfig) -> Result<Vec<Request>> {
    Ok(SyntheticTraceGenerator::paper_defaults(graph, config.days, config.seed)?.collect())
}

fn hot_key_flood(graph: &SocialGraph, config: &ScenarioConfig) -> Result<ScenarioScript> {
    let duration = config.days * DAY_SECS;
    let start = SimTime::from_secs(duration / 4);
    let end = SimTime::from_secs(duration / 2);
    let victim = most_followed(graph);

    // Recruit the colluding subset: distinct users who do not already
    // follow the victim, drawn from the scenario seed. BTreeSet keeps the
    // recruitment order-independent and the script deterministic.
    let users = graph.user_count();
    let mut rng = StdRng::seed_from_u64(config.seed.wrapping_add(0xA77AC4)); // attacker stream
    let wanted = ((users as f64 * config.attacker_fraction).round() as usize).max(1);
    let mut attackers: BTreeSet<UserId> = BTreeSet::new();
    let mut draws = 0usize;
    while attackers.len() < wanted && draws < users * 20 {
        draws += 1;
        let candidate = UserId::new(rng.gen_range(0..users as u64) as u32);
        if candidate != victim && !graph.contains_edge(candidate, victim) {
            attackers.insert(candidate);
        }
    }
    if attackers.is_empty() {
        return Err(Error::invalid_config(
            "no candidate attackers: everyone already follows the victim",
        ));
    }
    let attackers: Vec<UserId> = attackers.into_iter().collect();

    // The colluders follow the victim for the attack window, so every one
    // of their flood reads fans in on her view.
    let mut mutations: Vec<TimedMutation> = attackers
        .iter()
        .map(|&a| TimedMutation {
            time: start,
            mutation: dynasore_workload::GraphMutation::AddEdge {
                follower: a,
                followee: victim,
            },
        })
        .collect();
    mutations.extend(attackers.iter().map(|&a| TimedMutation {
        time: end,
        mutation: dynasore_workload::GraphMutation::RemoveEdge {
            follower: a,
            followee: victim,
        },
    }));

    let flood = read_storm(&attackers, start, end, config.flood_factor);
    Ok(ScenarioScript {
        name: ScenarioKind::HotKeyFlood.name(),
        trace: merge_traces(base_trace(graph, config)?, flood),
        mutations,
        events: Vec::new(),
        disruption_start: start,
        disruption_end: end,
    })
}

fn flash_crowd_neighbor_down(
    graph: &SocialGraph,
    topology: &Topology,
    config: &ScenarioConfig,
) -> Result<ScenarioScript> {
    let duration = config.days * DAY_SECS;
    let start = SimTime::from_secs(duration / 3);
    let end = SimTime::from_secs(duration / 2);
    let target = most_followed(graph);

    // The crowd: up to 10% of the user base suddenly follows the hot user.
    // Locality-aware engines keep her replica set on a handful of machines,
    // so the crowd's reads concentrate on that rack.
    let crowd_size = (graph.user_count() / 10).clamp(
        1,
        graph
            .user_count()
            .saturating_sub(graph.in_degree(target) + 1),
    );
    let plan = FlashEventPlan::random(
        graph,
        target,
        crowd_size,
        start,
        end,
        config.seed.wrapping_add(0xF1A54),
    )?;
    let storm = read_storm(plan.new_followers(), start, end, config.flood_factor);

    // Meanwhile the adjacent rack is down for the whole crowd window, so
    // the capacity the spike would spill into is missing.
    let neighbor = RackId::new((topology.rack_count() - 1).min(1) as u32);
    let events = vec![
        TimedClusterEvent {
            time: start,
            event: ClusterEvent::RackDown { rack: neighbor },
        },
        TimedClusterEvent {
            time: end,
            event: ClusterEvent::RackUp { rack: neighbor },
        },
    ];
    Ok(ScenarioScript {
        name: ScenarioKind::FlashCrowdNeighborDown.name(),
        trace: merge_traces(base_trace(graph, config)?, storm),
        mutations: plan.mutations(),
        events,
        disruption_start: start,
        disruption_end: end,
    })
}

fn ratio_inversion(graph: &SocialGraph, config: &ScenarioConfig) -> Result<ScenarioScript> {
    let duration = config.days * DAY_SECS;
    let flip = duration / 2;
    // Two full-length generators with inverted read/write mixes; the trace
    // takes the first half of the read-heavy one and the second half of
    // the write-heavy one. Both spread requests evenly, so the splice
    // preserves each generator's request rate.
    let read_heavy = SyntheticTraceGenerator::new(
        graph,
        SyntheticConfig {
            days: config.days,
            read_write_ratio: 4.0,
            ..SyntheticConfig::default()
        },
        config.seed,
    )?;
    let write_heavy = SyntheticTraceGenerator::new(
        graph,
        SyntheticConfig {
            days: config.days,
            read_write_ratio: 0.25,
            ..SyntheticConfig::default()
        },
        config.seed.wrapping_add(1),
    )?;
    let mut trace: Vec<Request> = read_heavy.filter(|r| r.time.as_secs() < flip).collect();
    trace.extend(write_heavy.filter(|r| r.time.as_secs() >= flip));
    Ok(ScenarioScript {
        name: ScenarioKind::RatioInversion.name(),
        trace,
        mutations: Vec::new(),
        events: Vec::new(),
        disruption_start: SimTime::from_secs(flip),
        disruption_end: SimTime::from_secs(duration),
    })
}

fn regional_failure(
    graph: &SocialGraph,
    topology: &Topology,
    config: &ScenarioConfig,
) -> Result<ScenarioScript> {
    let duration = config.days * DAY_SECS;
    let start = SimTime::from_secs(duration / 3);
    let end = SimTime::from_secs(duration / 3 + 2 * HOUR_SECS);

    // Background noise: the seeded MTBF/MTTR failure process, so the
    // regional outage lands on a cluster that is already imperfect.
    let mut events = generate_failure_schedule(
        topology,
        &FaultInjectionConfig {
            seed: config.seed,
            horizon_secs: duration,
            ..FaultInjectionConfig::default()
        },
    )?;

    // The region: the first `regional_racks` racks fail together, leaving
    // at least one rack standing.
    let racks = config.regional_racks.min(topology.rack_count() - 1);
    for rack in 0..racks {
        let rack = RackId::new(rack as u32);
        events.push(TimedClusterEvent {
            time: start,
            event: ClusterEvent::RackDown { rack },
        });
        events.push(TimedClusterEvent {
            time: end,
            event: ClusterEvent::RackUp { rack },
        });
    }
    Ok(ScenarioScript {
        name: ScenarioKind::RegionalFailure.name(),
        trace: base_trace(graph, config)?,
        mutations: Vec::new(),
        events,
        disruption_start: start,
        disruption_end: end,
    })
}

fn decommission_under_load(
    graph: &SocialGraph,
    topology: &Topology,
    config: &ScenarioConfig,
) -> Result<ScenarioScript> {
    let duration = config.days * DAY_SECS;
    let start = SimTime::from_secs(duration / 3);
    let rack = RackId::new((topology.rack_count() - 1) as u32);
    let events = vec![TimedClusterEvent {
        time: start,
        event: ClusterEvent::RemoveRack { rack },
    }];
    Ok(ScenarioScript {
        name: ScenarioKind::DecommissionUnderLoad.name(),
        trace: base_trace(graph, config)?,
        mutations: Vec::new(),
        events,
        // The capacity never comes back: the engine must reach steady
        // state on the shrunken cluster by the end of the trace.
        disruption_start: start,
        disruption_end: SimTime::from_secs(duration),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynasore_graph::GraphPreset;
    use dynasore_types::Operation;

    fn setup() -> (SocialGraph, Topology) {
        let graph = SocialGraph::generate(GraphPreset::TwitterLike, 150, 11).unwrap();
        let topology = Topology::tree(2, 2, 4, 1).unwrap();
        (graph, topology)
    }

    fn config() -> ScenarioConfig {
        ScenarioConfig {
            seed: 42,
            days: 1,
            ..ScenarioConfig::default()
        }
    }

    #[test]
    fn config_validation_rejects_degenerate_knobs() {
        assert!(ScenarioConfig::default().validate().is_ok());
        for broken in [
            ScenarioConfig {
                days: 0,
                ..config()
            },
            ScenarioConfig {
                flood_factor: 0.5,
                ..config()
            },
            ScenarioConfig {
                attacker_fraction: 0.0,
                ..config()
            },
            ScenarioConfig {
                attacker_fraction: 1.5,
                ..config()
            },
            ScenarioConfig {
                regional_racks: 0,
                ..config()
            },
        ] {
            assert!(broken.validate().is_err(), "{broken:?}");
        }
    }

    #[test]
    fn scripts_are_deterministic_and_time_sorted() {
        let (graph, topology) = setup();
        for kind in ScenarioKind::ALL {
            let a = kind.script(&graph, &topology, &config()).unwrap();
            let b = kind.script(&graph, &topology, &config()).unwrap();
            assert_eq!(a, b, "{} must be seed-deterministic", kind.name());
            assert_eq!(a.name, kind.name());
            assert!(!a.trace.is_empty());
            assert!(a.trace.windows(2).all(|w| w[0].time <= w[1].time));
            assert!(a.disruption_start < a.disruption_end);
            // A different seed changes the trace or the schedules.
            let other = kind
                .script(
                    &graph,
                    &topology,
                    &ScenarioConfig {
                        seed: 43,
                        ..config()
                    },
                )
                .unwrap();
            assert!(
                other.trace != a.trace
                    || other.mutations != a.mutations
                    || other.events != a.events,
                "{} must vary with the seed",
                kind.name()
            );
        }
    }

    #[test]
    fn hot_key_flood_recruits_attackers_and_floods_the_window() {
        let (graph, topology) = setup();
        // A tenth of the users colluding makes the flood unmistakable.
        let script = ScenarioKind::HotKeyFlood
            .script(
                &graph,
                &topology,
                &ScenarioConfig {
                    attacker_fraction: 0.1,
                    ..config()
                },
            )
            .unwrap();
        // The follow/unfollow mutations pair up.
        assert!(!script.mutations.is_empty());
        assert_eq!(script.mutations.len() % 2, 0);
        // The attack window holds more reads than the same span before it.
        let window = script.disruption_end.as_secs() - script.disruption_start.as_secs();
        let in_window = script
            .trace
            .iter()
            .filter(|r| {
                r.op == Operation::Read
                    && r.time >= script.disruption_start
                    && r.time < script.disruption_end
            })
            .count();
        let before = script
            .trace
            .iter()
            .filter(|r| {
                r.op == Operation::Read
                    && r.time.as_secs() >= script.disruption_start.as_secs() - window
                    && r.time < script.disruption_start
            })
            .count();
        assert!(
            in_window > before * 2,
            "flood window: {in_window} reads vs {before} quiet"
        );
    }

    #[test]
    fn ratio_inversion_flips_the_write_share() {
        let (graph, topology) = setup();
        let script = ScenarioKind::RatioInversion
            .script(&graph, &topology, &config())
            .unwrap();
        let flip = script.disruption_start;
        let writes = |lo: SimTime, hi: SimTime| {
            script
                .trace
                .iter()
                .filter(|r| r.op == Operation::Write && r.time >= lo && r.time < hi)
                .count() as f64
        };
        let total = |lo: SimTime, hi: SimTime| {
            script
                .trace
                .iter()
                .filter(|r| r.time >= lo && r.time < hi)
                .count() as f64
        };
        let first_half_share = writes(SimTime::ZERO, flip) / total(SimTime::ZERO, flip);
        let second_half_share =
            writes(flip, script.disruption_end) / total(flip, script.disruption_end);
        assert!(first_half_share < 0.3, "{first_half_share}");
        assert!(second_half_share > 0.6, "{second_half_share}");
    }

    #[test]
    fn rack_scenarios_reject_flat_and_single_rack_topologies() {
        let (graph, _) = setup();
        let flat = Topology::flat(8).unwrap();
        for kind in [
            ScenarioKind::FlashCrowdNeighborDown,
            ScenarioKind::RegionalFailure,
            ScenarioKind::DecommissionUnderLoad,
        ] {
            assert!(kind.script(&graph, &flat, &config()).is_err());
        }
        // The workload-only scenarios run anywhere.
        assert!(ScenarioKind::HotKeyFlood
            .script(&graph, &flat, &config())
            .is_ok());
        assert!(ScenarioKind::RatioInversion
            .script(&graph, &flat, &config())
            .is_ok());
    }

    #[test]
    fn regional_failure_spares_at_least_one_rack() {
        let (graph, topology) = setup();
        let script = ScenarioKind::RegionalFailure
            .script(
                &graph,
                &topology,
                &ScenarioConfig {
                    regional_racks: 99,
                    ..config()
                },
            )
            .unwrap();
        let downed: BTreeSet<u32> = script
            .events
            .iter()
            .filter(|e| e.time == script.disruption_start)
            .filter_map(|e| match e.event {
                ClusterEvent::RackDown { rack } => Some(rack.index()),
                _ => None,
            })
            .collect();
        assert!(downed.len() < topology.rack_count());
        assert!(!downed.is_empty());
    }
}
