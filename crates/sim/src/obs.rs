//! The simulator-side observer: a [`FlightRecorder`] plus a
//! [`MetricsRegistry`] stamped with simulated time.
//!
//! A [`SimObs`] is attached to a [`crate::Simulation`] with
//! [`crate::Simulation::with_observer`] and retrieved after the run with
//! [`crate::Simulation::take_observer`]. It is a passive, write-only side
//! channel: nothing the simulation measures ever reads it back, so an
//! observed run produces a `SimReport` equal to an unobserved one — and
//! when no observer is attached the simulation takes the structurally
//! identical pre-observability path (an `Option` that stays `None`), which
//! keeps disabled-mode runs byte-identical and zero-cost.

use dynasore_topology::{Switch, Topology, TrafficAccount};
use dynasore_types::{
    FlightRecorder, MetricId, MetricsRegistry, NetworkModel, SimTime, SwitchTier, TraceEventKind,
    NANOS_PER_SEC,
};

use crate::durable::{DurableIoStats, DurableTier};

/// Default flight-recorder capacity for simulation runs: enough to keep a
/// full adversarial scenario's decision timeline without rewinding.
pub const DEFAULT_RECORDER_CAPACITY: usize = 65_536;

/// Simulation observer: flight recorder + metrics registry, both updated
/// from the accounting sink's [`dynasore_types::TrafficSink::trace`] hook
/// and from the simulator's per-tick sampling pass.
#[derive(Debug, Clone, PartialEq)]
pub struct SimObs {
    recorder: FlightRecorder,
    registry: MetricsRegistry,
    shard_lag_scratch: Vec<u64>,
    collapse_onset_seen: bool,
}

impl Default for SimObs {
    fn default() -> Self {
        SimObs::new(DEFAULT_RECORDER_CAPACITY)
    }
}

impl SimObs {
    /// Creates an observer whose flight recorder keeps the newest
    /// `capacity` events. All storage is allocated here, up front.
    pub fn new(capacity: usize) -> Self {
        SimObs {
            recorder: FlightRecorder::new(capacity),
            registry: MetricsRegistry::new(),
            shard_lag_scratch: Vec::new(),
            collapse_onset_seen: false,
        }
    }

    /// The recorded event timeline.
    pub fn recorder(&self) -> &FlightRecorder {
        &self.recorder
    }

    /// The metrics registry.
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// Renders the timeline as JSON Lines (oldest event first).
    pub fn to_jsonl(&self) -> String {
        self.recorder.to_jsonl()
    }

    /// Renders the registry in the Prometheus text exposition format.
    pub fn render_prometheus(&self) -> String {
        self.registry.render_prometheus()
    }

    /// Records one event stamped `t_ns` and folds it into the registry.
    /// Alloc-free: the ring is pre-allocated and every event is `Copy`.
    pub(crate) fn trace(&mut self, t_ns: u64, kind: TraceEventKind) {
        self.registry.apply(kind);
        self.recorder.record(t_ns, kind);
    }

    /// The per-tick sampling pass: one `TickSample`, the worst queueing
    /// delay of every switch tier, per-shard durable lag samples, and the
    /// congestion-collapse onset (once, the first tick past the threshold).
    pub(crate) fn sample_tick(
        &mut self,
        tick_secs: u64,
        unreachable_reads: u64,
        topology: &Topology,
        traffic: &TrafficAccount,
        durable: Option<&dyn DurableTier>,
        network: &NetworkModel,
    ) {
        let t_ns = tick_secs.saturating_mul(NANOS_PER_SEC);
        let time = SimTime::from_secs(tick_secs);
        self.trace(
            t_ns,
            TraceEventKind::TickSample {
                tick_secs,
                unreachable_reads,
            },
        );
        self.trace(
            t_ns,
            TraceEventKind::SwitchQueueDepth {
                tier: SwitchTier::Top,
                max_delay_ns: traffic.queued_delay(Switch::Top, time).as_nanos(),
            },
        );
        if topology.intermediate_count() > 0 {
            let mut worst = 0u64;
            for i in 0..topology.intermediate_count() {
                let delay = traffic.queued_delay(Switch::Intermediate(i as u32), time);
                worst = worst.max(delay.as_nanos());
            }
            self.trace(
                t_ns,
                TraceEventKind::SwitchQueueDepth {
                    tier: SwitchTier::Intermediate,
                    max_delay_ns: worst,
                },
            );
        }
        if topology.rack_count() > 0 {
            let mut worst = 0u64;
            for r in 0..topology.rack_count() {
                let delay = traffic.queued_delay(Switch::Rack(r as u32), time);
                worst = worst.max(delay.as_nanos());
            }
            self.trace(
                t_ns,
                TraceEventKind::SwitchQueueDepth {
                    tier: SwitchTier::Rack,
                    max_delay_ns: worst,
                },
            );
        }
        if let Some(tier) = durable {
            let mut lags = std::mem::take(&mut self.shard_lag_scratch);
            tier.shard_lags(&mut lags);
            self.registry.ensure_shards(lags.len());
            for (shard, &lag_bytes) in lags.iter().enumerate() {
                self.trace(
                    t_ns,
                    TraceEventKind::ShardLag {
                        shard: shard as u32,
                        lag_bytes,
                    },
                );
            }
            self.shard_lag_scratch = lags;
        }
        if !self.collapse_onset_seen && !network.is_infinite() {
            let queue_delay = traffic.max_queue_delay();
            if queue_delay >= network.collapse_threshold {
                self.collapse_onset_seen = true;
                self.trace(
                    t_ns,
                    TraceEventKind::CollapseOnset {
                        queue_delay_ns: queue_delay.as_nanos(),
                    },
                );
            }
        }
    }

    /// End-of-run bookkeeping: folds the run's message totals and durable
    /// I/O stats into the registry (counters the hot path deliberately does
    /// not touch per message).
    pub(crate) fn finish_run(
        &mut self,
        app_messages: u64,
        proto_messages: u64,
        recovery_messages: u64,
        durable_io: Option<&DurableIoStats>,
    ) {
        self.registry.add(MetricId::AppMessages, app_messages);
        self.registry.add(MetricId::ProtoMessages, proto_messages);
        self.registry
            .add(MetricId::RecoveryMessages, recovery_messages);
        if let Some(io) = durable_io {
            self.registry.add(MetricId::DurableAppends, io.appends);
            self.registry.add(MetricId::DurableSyncs, io.replays);
        }
    }
}
