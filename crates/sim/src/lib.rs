//! Cluster simulator and measurement harness.
//!
//! The paper evaluates every system with a cluster simulator that
//! "represents all the servers and network devices in order to simulate
//! their message exchanges and measure them" (§4.3). This crate is that
//! simulator:
//!
//! * [`PlacementEngine`] — the interface every view-placement strategy
//!   implements (DynaSoRe itself and the Random/METIS/hMETIS/SPAR
//!   baselines). For each read or write request the engine decides which
//!   broker executes it and which servers are contacted, and reports the
//!   resulting [`Message`]s.
//! * [`Simulation`] — drives a request trace through an engine, applies
//!   scheduled social-graph mutations (flash events), periodically ticks the
//!   engine for maintenance (counter rotation, eviction sweeps), charges
//!   every message to the switches it traverses and produces a
//!   [`SimReport`].
//!
//! # Example
//!
//! ```
//! use dynasore_sim::{Message, MemoryUsage, PlacementEngine, Simulation, TrafficSink};
//! use dynasore_graph::{GraphPreset, SocialGraph};
//! use dynasore_topology::Topology;
//! use dynasore_types::{SimTime, UserId};
//! use dynasore_workload::SyntheticTraceGenerator;
//!
//! /// A deliberately naive engine: every view lives on server 0 and every
//! /// request is executed by the first broker.
//! struct Centralised {
//!     topology: Topology,
//! }
//!
//! impl PlacementEngine for Centralised {
//!     fn name(&self) -> &str {
//!         "centralised"
//!     }
//!     fn handle_read(
//!         &mut self,
//!         _user: UserId,
//!         targets: &[UserId],
//!         _time: SimTime,
//!         out: &mut dyn TrafficSink,
//!     ) {
//!         let broker = self.topology.brokers()[0].machine();
//!         let server = self.topology.servers()[0].machine();
//!         for _ in targets {
//!             out.record(Message::application(broker, server));
//!             out.record(Message::application(server, broker));
//!         }
//!     }
//!     fn handle_write(&mut self, _user: UserId, _time: SimTime, out: &mut dyn TrafficSink) {
//!         let broker = self.topology.brokers()[0].machine();
//!         let server = self.topology.servers()[0].machine();
//!         out.record(Message::application(broker, server));
//!     }
//!     fn replica_count(&self, _user: UserId) -> usize {
//!         1
//!     }
//!     fn memory_usage(&self) -> MemoryUsage {
//!         MemoryUsage { used_slots: 0, capacity_slots: 0 }
//!     }
//! }
//!
//! let graph = SocialGraph::generate(GraphPreset::TwitterLike, 100, 1).unwrap();
//! let topology = Topology::tree(2, 2, 3, 1).unwrap();
//! let engine = Centralised { topology: topology.clone() };
//! let trace = SyntheticTraceGenerator::paper_defaults(&graph, 1, 2).unwrap();
//! let mut sim = Simulation::new(topology, engine, &graph);
//! let report = sim.run(trace).unwrap();
//! assert!(report.read_count() > 0);
//! assert!(report.traffic().grand_total() > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod durable;
mod engine;
pub mod faults;
mod obs;
mod report;
pub mod scenario;
mod simulation;

pub use durable::{DurableIoStats, DurableTier, TierReplay};
pub use engine::{
    ClusterEvent, MemoryUsage, Message, PlacementEngine, TimedClusterEvent, TrafficSink,
};
pub use faults::{generate_failure_schedule, FaultInjectionConfig};
pub use obs::{SimObs, DEFAULT_RECORDER_CAPACITY};
pub use report::{LatencyStats, ReliabilityStats, SimReport};
pub use scenario::{
    DegradationReport, ScenarioConfig, ScenarioKind, ScenarioRunner, ScenarioScript,
};
pub use simulation::{switch_counts, Simulation, SimulationConfig};
