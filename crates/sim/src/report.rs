//! Simulation results.

use dynasore_topology::{Tier, TierTraffic, TrafficAccount};
use dynasore_types::{Latency, LatencyHistogram, SimTime, TrafficUnits};

use crate::durable::DurableIoStats;
use crate::engine::MemoryUsage;

/// Latency measurements of one run under the configured
/// [`dynasore_types::NetworkModel`].
///
/// With the default infinite-capacity model every sample is zero and
/// `collapsed` is always `false` — the section exists so unit-count runs
/// stay byte-identical while time-aware runs read latency percentiles, the
/// worst switch backlog and congestion collapse off the same report.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct LatencyStats {
    /// Per-read response-time samples: the slowest *application* message of
    /// each read request (fan-out legs run in parallel, the slowest gates
    /// the answer; protocol messages an engine emits while serving the read
    /// are asynchronous control-plane work and do not count).
    pub read: LatencyHistogram,
    /// Per-write response-time samples (slowest replica-update leg).
    pub write: LatencyHistogram,
    /// Largest queueing delay any single message experienced at one switch.
    pub max_queue_delay: Latency,
    /// Largest backlog (queued traffic units) any switch held at a message
    /// arrival.
    pub max_switch_backlog: u64,
    /// Whether any switch's queue exceeded the model's collapse threshold:
    /// arrivals outran service long enough that latencies stopped being
    /// meaningful. Always `false` under the infinite model.
    pub collapsed: bool,
}

/// Availability and recovery measurements of one run — the quantities the
/// fault-injection experiments read off a simulation: how much traffic the
/// persistent tier had to serve to re-create lost views, and how many read
/// targets went unserved while masters awaited recovery capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ReliabilityStats {
    /// Messages exchanged with the persistent tier (view recovery after
    /// failures; zero in a run without failures).
    pub recovery_messages: u64,
    /// Read targets the engine could not serve because the view had no live
    /// replica.
    pub unreachable_reads: u64,
    /// Total read targets attempted, the denominator of
    /// [`SimReport::availability`].
    pub read_targets: u64,
    /// Unserved read targets inside the worst sliding window of
    /// [`crate::SimulationConfig::availability_window_ticks`] engine ticks —
    /// the window that maximises the unserved fraction. Stored as raw
    /// counts (with [`ReliabilityStats::worst_window_read_targets`]) so the
    /// report stays integer-exact and byte-deterministic.
    pub worst_window_unreachable: u64,
    /// Read targets attempted inside that same worst window.
    pub worst_window_read_targets: u64,
}

/// The measurements produced by one simulation run.
///
/// All of the paper's figures and tables are derived from these quantities:
/// per-tier traffic (Figure 3, Tables 2–3), the top-switch time series split
/// into application and system traffic (Figures 4 and 6), and request
/// counts.
#[derive(Debug, Clone, PartialEq)]
pub struct SimReport {
    engine_name: String,
    traffic: TrafficAccount,
    reads: u64,
    writes: u64,
    application_messages: u64,
    protocol_messages: u64,
    end_time: SimTime,
    memory: MemoryUsage,
    /// Switch counts per tier `[top, intermediate, rack]`, used to compute
    /// per-switch averages.
    switch_counts: [usize; 3],
    reliability: ReliabilityStats,
    latency: LatencyStats,
    /// Durable-tier I/O; `Some` only when the run attached a
    /// [`crate::DurableTier`].
    durable: Option<DurableIoStats>,
}

impl SimReport {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        engine_name: String,
        traffic: TrafficAccount,
        reads: u64,
        writes: u64,
        application_messages: u64,
        protocol_messages: u64,
        end_time: SimTime,
        memory: MemoryUsage,
        switch_counts: [usize; 3],
        reliability: ReliabilityStats,
        latency: LatencyStats,
        durable: Option<DurableIoStats>,
    ) -> Self {
        SimReport {
            engine_name,
            traffic,
            reads,
            writes,
            application_messages,
            protocol_messages,
            end_time,
            memory,
            switch_counts,
            reliability,
            latency,
            durable,
        }
    }

    /// Name of the engine that produced this report.
    pub fn engine_name(&self) -> &str {
        &self.engine_name
    }

    /// The full per-switch traffic account.
    pub fn traffic(&self) -> &TrafficAccount {
        &self.traffic
    }

    /// Number of read requests executed.
    pub fn read_count(&self) -> u64 {
        self.reads
    }

    /// Number of write requests executed.
    pub fn write_count(&self) -> u64 {
        self.writes
    }

    /// Number of application messages exchanged (including machine-local
    /// ones, which cross no switch).
    pub fn total_application_messages(&self) -> u64 {
        self.application_messages
    }

    /// Number of protocol messages exchanged.
    pub fn total_protocol_messages(&self) -> u64 {
        self.protocol_messages
    }

    /// Simulated time of the last processed event.
    pub fn end_time(&self) -> SimTime {
        self.end_time
    }

    /// Memory usage of the engine at the end of the run.
    pub fn memory_usage(&self) -> MemoryUsage {
        self.memory
    }

    /// Availability and recovery measurements of the run.
    pub fn reliability(&self) -> ReliabilityStats {
        self.reliability
    }

    /// Latency measurements of the run (all-zero under the default
    /// infinite-capacity network model).
    pub fn latency(&self) -> &LatencyStats {
        &self.latency
    }

    /// Durable-tier I/O of the run: `Some` only when a
    /// [`crate::DurableTier`] was attached via
    /// [`crate::Simulation::with_durable_tier`], so default runs stay
    /// byte-identical to tier-less ones.
    pub fn durable_io(&self) -> Option<DurableIoStats> {
        self.durable
    }

    /// Median read response time.
    pub fn read_latency_p50(&self) -> Latency {
        self.latency.read.percentile(0.50)
    }

    /// 95th-percentile read response time.
    pub fn read_latency_p95(&self) -> Latency {
        self.latency.read.percentile(0.95)
    }

    /// 99th-percentile read response time.
    pub fn read_latency_p99(&self) -> Latency {
        self.latency.read.percentile(0.99)
    }

    /// Largest backlog (queued traffic units) any switch held during the
    /// run.
    pub fn max_switch_backlog(&self) -> u64 {
        self.latency.max_switch_backlog
    }

    /// Whether the run hit congestion collapse: some switch's queue exceeded
    /// the network model's collapse threshold.
    pub fn congestion_collapsed(&self) -> bool {
        self.latency.collapsed
    }

    /// Messages exchanged with the persistent tier to re-create views lost
    /// to failures. Zero in a run without failures.
    pub fn recovery_messages(&self) -> u64 {
        self.reliability.recovery_messages
    }

    /// Read targets that went unserved because the view had no live replica.
    pub fn unreachable_reads(&self) -> u64 {
        self.reliability.unreachable_reads
    }

    /// Fraction of read targets served, in `[0, 1]`. A run in which every
    /// lost master was re-created before anyone asked for it reports 1.0
    /// even though machines failed — that is the disposable-cache-server
    /// property the paper's §3.3 design buys.
    pub fn availability(&self) -> f64 {
        if self.reliability.read_targets == 0 {
            return 1.0;
        }
        1.0 - self.reliability.unreachable_reads as f64 / self.reliability.read_targets as f64
    }

    /// Minimum availability over any sliding window of
    /// [`crate::SimulationConfig::availability_window_ticks`] engine ticks —
    /// the run-average [`SimReport::availability`] can hide a short total
    /// blackout inside a long quiet run; this cannot. 1.0 when no window saw
    /// read traffic.
    pub fn worst_window_availability(&self) -> f64 {
        if self.reliability.worst_window_read_targets == 0 {
            return 1.0;
        }
        1.0 - self.reliability.worst_window_unreachable as f64
            / self.reliability.worst_window_read_targets as f64
    }

    /// Total traffic (application + protocol) through the top switch — the
    /// headline quantity of the paper.
    pub fn top_switch_total(&self) -> TrafficUnits {
        self.traffic.tier_total(Tier::Top).total()
    }

    /// Traffic through the top switch, split by class.
    pub fn top_switch_traffic(&self) -> TierTraffic {
        self.traffic.tier_total(Tier::Top)
    }

    /// Average per-switch traffic of a tier, the quantity reported in
    /// Tables 2 and 3.
    pub fn tier_average(&self, tier: Tier) -> f64 {
        self.traffic
            .tier_average(tier, self.switch_counts[tier.index()])
    }

    /// Hourly (or configured-bucket) time series of top-switch traffic,
    /// as plotted in Figures 4 and 6.
    pub fn top_switch_series(&self) -> Vec<TierTraffic> {
        self.traffic.top_switch_series()
    }

    /// Ratio of this run's top-switch traffic to a baseline run's, the
    /// normalisation used throughout the evaluation ("traffic normalised
    /// with respect to Random").
    pub fn normalized_top_traffic(&self, baseline: &SimReport) -> f64 {
        let base = baseline.top_switch_total();
        if base == 0 {
            return 0.0;
        }
        self.top_switch_total() as f64 / base as f64
    }

    /// Ratio of this run's per-switch tier average to a baseline's.
    pub fn normalized_tier_average(&self, tier: Tier, baseline: &SimReport) -> f64 {
        let base = baseline.tier_average(tier);
        if base == 0.0 {
            return 0.0;
        }
        self.tier_average(tier) / base
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynasore_topology::Switch;
    use dynasore_types::MessageClass;

    fn report_with_top_units(units_messages: u64) -> SimReport {
        let mut traffic = TrafficAccount::hourly();
        for _ in 0..units_messages {
            traffic.record(
                &[Switch::Rack(0), Switch::Intermediate(0), Switch::Top],
                MessageClass::Application,
                SimTime::ZERO,
            );
        }
        SimReport::new(
            "test".into(),
            traffic,
            10,
            5,
            15,
            2,
            SimTime::from_hours(1),
            MemoryUsage {
                used_slots: 10,
                capacity_slots: 20,
            },
            [1, 5, 25],
            ReliabilityStats {
                recovery_messages: 40,
                unreachable_reads: 2,
                read_targets: 50,
                worst_window_unreachable: 2,
                worst_window_read_targets: 10,
            },
            LatencyStats::default(),
            None,
        )
    }

    #[test]
    fn accessors_expose_run_counters() {
        let r = report_with_top_units(3);
        assert_eq!(r.engine_name(), "test");
        assert_eq!(r.read_count(), 10);
        assert_eq!(r.write_count(), 5);
        assert_eq!(r.total_application_messages(), 15);
        assert_eq!(r.total_protocol_messages(), 2);
        assert_eq!(r.end_time(), SimTime::from_hours(1));
        assert_eq!(r.memory_usage().used_slots, 10);
        assert_eq!(r.top_switch_total(), 30);
        assert_eq!(r.top_switch_traffic().application, 30);
        assert_eq!(r.top_switch_series().len(), 1);
        assert_eq!(r.recovery_messages(), 40);
        assert_eq!(r.unreachable_reads(), 2);
        assert_eq!(r.reliability().read_targets, 50);
        assert!((r.availability() - 0.96).abs() < 1e-12);
        // The worst window concentrates the same 2 misses over 10 targets.
        assert!((r.worst_window_availability() - 0.80).abs() < 1e-12);
    }

    #[test]
    fn latency_section_exposes_percentiles_and_collapse() {
        let mut r = report_with_top_units(1);
        assert_eq!(r.read_latency_p50(), Latency::ZERO);
        assert!(!r.congestion_collapsed());
        assert_eq!(r.max_switch_backlog(), 0);
        let mut read = LatencyHistogram::new();
        for ms in 1..=100u64 {
            read.record(Latency::from_millis(ms));
        }
        r.latency = LatencyStats {
            read,
            write: LatencyHistogram::new(),
            max_queue_delay: Latency::from_millis(80),
            max_switch_backlog: 1_234,
            collapsed: true,
        };
        assert!(r.read_latency_p50() >= Latency::from_millis(50));
        assert!(r.read_latency_p95() >= Latency::from_millis(95));
        assert!(r.read_latency_p99() >= Latency::from_millis(99));
        assert!(r.read_latency_p99() <= Latency::from_millis(100));
        assert_eq!(r.max_switch_backlog(), 1_234);
        assert!(r.congestion_collapsed());
        assert_eq!(r.latency().max_queue_delay, Latency::from_millis(80));
    }

    #[test]
    fn availability_defaults_to_full_without_read_targets() {
        let mut r = report_with_top_units(1);
        r.reliability = ReliabilityStats::default();
        assert_eq!(r.availability(), 1.0);
        assert_eq!(r.worst_window_availability(), 1.0);
        assert_eq!(r.recovery_messages(), 0);
    }

    #[test]
    fn tier_average_uses_switch_counts() {
        let r = report_with_top_units(5);
        assert!((r.tier_average(Tier::Top) - 50.0).abs() < 1e-9);
        assert!((r.tier_average(Tier::Intermediate) - 10.0).abs() < 1e-9);
        assert!((r.tier_average(Tier::Rack) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn normalisation_against_baseline() {
        let baseline = report_with_top_units(10);
        let better = report_with_top_units(1);
        assert!((better.normalized_top_traffic(&baseline) - 0.1).abs() < 1e-9);
        assert!((better.normalized_tier_average(Tier::Top, &baseline) - 0.1).abs() < 1e-9);
        let empty = report_with_top_units(0);
        assert_eq!(better.normalized_top_traffic(&empty), 0.0);
        assert_eq!(better.normalized_tier_average(Tier::Top, &empty), 0.0);
    }
}
