//! Optional durable tier mirrored behind a simulation.
//!
//! Simulations count persistent-tier *messages* by default; attaching a
//! [`DurableTier`] makes the recovery path read real bytes: every write
//! request is mirrored into the tier, and whenever a cluster event makes the
//! engine fetch lost views from the persistent store, the tier is synced and
//! replayed end to end — so the run's [`DurableIoStats`] report the actual
//! I/O volume a recovery would move, next to the message-count estimate.
//!
//! The trait lives here (layer 4) so that `dynasore-store` (layer 5) can
//! implement it with its file-backed log store without inverting the
//! dependency DAG; see `dynasore_store::SimDurableTier`.

use dynasore_types::{Result, SimTime, UserId};

/// A durable tier a [`crate::Simulation`] mirrors writes into and replays on
/// recovery. All byte counts must be deterministic for a given call sequence
/// so that simulations with a tier attached stay reproducible.
pub trait DurableTier: std::fmt::Debug {
    /// Mirrors one acknowledged write request into the tier.
    ///
    /// # Errors
    ///
    /// I/O errors from the underlying store.
    fn append(&mut self, user: UserId, time: SimTime) -> Result<()>;

    /// Crash boundary: everything appended so far becomes durable.
    ///
    /// # Errors
    ///
    /// I/O errors from the underlying store.
    fn sync(&mut self) -> Result<()>;

    /// Re-reads the whole tier, exactly as crash recovery would, and returns
    /// what the replay measured.
    ///
    /// # Errors
    ///
    /// I/O errors from the underlying store.
    fn replay(&mut self) -> Result<TierReplay>;

    /// Copies the current per-shard flusher lag — bytes appended but not
    /// yet made durable — into `out` (cleared first, one entry per shard).
    /// Sampled by the simulator's observability tick so a timeline can show
    /// which shard's flusher was falling behind. The default reports no
    /// shards, which keeps existing tiers compiling and lag-free.
    fn shard_lags(&self, out: &mut Vec<u64>) {
        out.clear();
    }
}

/// What one [`DurableTier::replay`] measured. For a sharded tier the shards
/// replay independently, so the recovery critical path is the largest shard
/// (`max_shard_bytes`), not the total.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TierReplay {
    /// Bytes re-read across the whole tier.
    pub bytes_replayed: u64,
    /// Shards the tier replayed (1 for an unsharded tier).
    pub shards: usize,
    /// Bytes re-read by the largest shard — the parallel-replay critical
    /// path. Equals `bytes_replayed` for an unsharded tier.
    pub max_shard_bytes: u64,
}

/// Durable-tier I/O of one simulation run. Present in a
/// [`crate::SimReport`] only when a [`DurableTier`] was attached; `None`
/// keeps default runs byte-identical to tier-less ones.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DurableIoStats {
    /// Write requests mirrored into the tier.
    pub appends: u64,
    /// Recovery replays performed (one per cluster event that generated
    /// persistent-tier traffic).
    pub replays: u64,
    /// Total bytes re-read from the tier across all replays.
    pub bytes_replayed: u64,
    /// Critical-path bytes across all replays: the sum over replays of the
    /// largest shard's bytes. Shards replay concurrently on reopen, so this
    /// — not `bytes_replayed` — bounds recovery wall-clock for a sharded
    /// tier. Equal to `bytes_replayed` when the tier has one shard.
    pub critical_path_bytes: u64,
    /// Shards of the attached tier (0 when no replay happened, 1 for an
    /// unsharded tier).
    pub tier_shards: usize,
}
