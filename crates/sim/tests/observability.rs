//! Observability contract tests: observation must be passive (a report from
//! an observed run is identical to an unobserved one for every engine and
//! every outage schedule), deterministic (same seed, same timeline), and
//! complete (a decommission traces its whole evacuation sequence).

use dynasore_baselines::{SparEngine, StaticPlacement};
use dynasore_core::{DynaSoReEngine, InitialPlacement};
use dynasore_graph::{GraphPreset, SocialGraph};
use dynasore_sim::{ScenarioConfig, ScenarioKind, ScenarioRunner, SimObs, SimulationConfig};
use dynasore_topology::Topology;
use dynasore_types::{
    ClusterEvent, MemoryBudget, MetricId, NetworkModel, PlacementEngine, ReplicaChangeReason,
    TraceEventKind,
};

const ENGINES: [&str; 3] = ["dynasore", "spar", "static-random"];
const USERS: usize = 150;
const SEED: u64 = 11;

fn graph() -> SocialGraph {
    SocialGraph::generate(GraphPreset::FacebookLike, USERS, SEED).expect("graph")
}

fn topology() -> Topology {
    Topology::tree(2, 2, 4, 1).expect("topology")
}

fn runner() -> ScenarioRunner {
    ScenarioRunner::new(
        ScenarioConfig {
            seed: SEED,
            days: 1,
            ..ScenarioConfig::default()
        },
        SimulationConfig {
            network: NetworkModel::datacenter(),
            ..SimulationConfig::default()
        },
    )
}

fn build_engine(name: &str, graph: &SocialGraph, topology: &Topology) -> Box<dyn PlacementEngine> {
    let budget = MemoryBudget::with_extra_percent(USERS, 30);
    match name {
        "dynasore" => Box::new(
            DynaSoReEngine::builder()
                .topology(topology.clone())
                .budget(budget)
                .initial_placement(InitialPlacement::Random { seed: SEED })
                .build(graph)
                .expect("dynasore engine"),
        ),
        "spar" => Box::new(SparEngine::new(graph, topology, budget, SEED).expect("spar engine")),
        "static-random" => {
            Box::new(StaticPlacement::random(graph, topology, SEED).expect("static engine"))
        }
        other => panic!("unknown engine {other}"),
    }
}

/// Satellite (a): attaching the observer changes nothing the simulation
/// measures — the `DegradationReport` (including the embedded `SimReport`)
/// is equal for every engine under every outage schedule.
#[test]
fn observed_reports_equal_unobserved_for_every_engine_and_scenario() {
    let graph = graph();
    let topology = topology();
    let runner = runner();
    for engine_name in ENGINES {
        let quiet = runner
            .quiet_baseline(
                topology.clone(),
                &graph,
                build_engine(engine_name, &graph, &topology),
            )
            .expect("quiet baseline");
        for kind in ScenarioKind::ALL {
            let plain = runner
                .run(
                    kind,
                    topology.clone(),
                    &graph,
                    build_engine(engine_name, &graph, &topology),
                    &quiet,
                    None,
                )
                .expect("unobserved run");
            let (observed, obs) = runner
                .run_observed(
                    kind,
                    topology.clone(),
                    &graph,
                    build_engine(engine_name, &graph, &topology),
                    &quiet,
                    None,
                    SimObs::default(),
                )
                .expect("observed run");
            assert_eq!(
                plain,
                observed,
                "{engine_name} x {} degradation report diverged under observation",
                kind.name()
            );
            assert!(
                !obs.recorder().is_empty(),
                "{engine_name} x {} recorded no events",
                kind.name()
            );
            assert!(
                obs.registry().get(MetricId::TickSamples) > 0,
                "{engine_name} x {} took no tick samples",
                kind.name()
            );
        }
    }
}

/// Satellite (c): the timeline is a pure function of the seed — two
/// observed runs of the same scenario produce byte-identical JSONL and
/// metrics.
#[test]
fn same_seed_runs_record_identical_timelines() {
    let graph = graph();
    let topology = topology();
    let runner = runner();
    let run_once = || {
        let quiet = runner
            .quiet_baseline(
                topology.clone(),
                &graph,
                build_engine("dynasore", &graph, &topology),
            )
            .expect("quiet baseline");
        let (_, obs) = runner
            .run_observed(
                ScenarioKind::RegionalFailure,
                topology.clone(),
                &graph,
                build_engine("dynasore", &graph, &topology),
                &quiet,
                None,
                SimObs::default(),
            )
            .expect("observed run");
        obs
    };
    let a = run_once();
    let b = run_once();
    assert!(!a.recorder().is_empty(), "timeline is empty");
    assert_eq!(a.to_jsonl(), b.to_jsonl(), "timelines diverged across runs");
    assert_eq!(
        a.render_prometheus(),
        b.render_prometheus(),
        "metrics diverged across runs"
    );
}

/// Satellite (c): a `RemoveRack` landing mid-run traces the complete
/// evacuation sequence — the cluster-change event first, every
/// evacuation-reason replica change strictly after it.
#[test]
fn decommission_traces_the_full_evacuation_sequence() {
    let graph = graph();
    let topology = topology();
    let runner = runner();
    let quiet = runner
        .quiet_baseline(
            topology.clone(),
            &graph,
            build_engine("dynasore", &graph, &topology),
        )
        .expect("quiet baseline");
    let (_, obs) = runner
        .run_observed(
            ScenarioKind::DecommissionUnderLoad,
            topology.clone(),
            &graph,
            build_engine("dynasore", &graph, &topology),
            &quiet,
            None,
            SimObs::default(),
        )
        .expect("observed run");

    let events: Vec<_> = obs.recorder().iter().cloned().collect();
    let remove_idx = events
        .iter()
        .position(|e| {
            matches!(
                e.kind,
                TraceEventKind::ClusterChange {
                    event: ClusterEvent::RemoveRack { .. }
                }
            )
        })
        .expect("remove-rack cluster change missing from the timeline");
    let is_evacuation = |kind: &TraceEventKind| {
        matches!(
            kind,
            TraceEventKind::ReplicaCreated {
                reason: ReplicaChangeReason::Evacuation,
                ..
            } | TraceEventKind::ReplicaDropped {
                reason: ReplicaChangeReason::Evacuation,
                ..
            } | TraceEventKind::ReplicaMoved {
                reason: ReplicaChangeReason::Evacuation,
                ..
            }
        )
    };
    let before = events[..remove_idx]
        .iter()
        .filter(|e| is_evacuation(&e.kind))
        .count();
    let after = events[remove_idx..]
        .iter()
        .filter(|e| is_evacuation(&e.kind))
        .count();
    assert_eq!(before, 0, "evacuations traced before the rack was removed");
    assert!(after > 0, "rack removal traced no evacuation events");
    assert!(
        obs.registry().get(MetricId::ClusterEvents) >= 1,
        "cluster-change counter never incremented"
    );
    // The JSONL rendering of the same timeline round-trips the lint.
    let jsonl = obs.to_jsonl();
    assert_eq!(
        dynasore_types::validate_jsonl(&jsonl).expect("timeline JSONL is valid"),
        events.len()
    );
    assert!(jsonl.contains("\"event\":\"remove-rack"));
    assert!(jsonl.contains("\"reason\":\"evacuation\""));
}
