//! Criterion micro-benchmarks of the mechanisms DynaSoRe runs on every
//! request: routing, utility estimation, the full read/write path of each
//! engine, graph partitioning, and simulator throughput. These are not
//! figures from the paper; they document the cost of the machinery
//! (ablation-style) so regressions in the hot paths are visible.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use dynasore_baselines::{SparEngine, StaticPlacement};
use dynasore_core::{routing, DynaSoReEngine, InitialPlacement};
use dynasore_graph::{GraphPreset, SocialGraph};
use dynasore_partition::Partitioner;
use dynasore_sim::{PlacementEngine, Simulation};
use dynasore_topology::Topology;
use dynasore_types::{MemoryBudget, SimTime, UserId};
use dynasore_workload::SyntheticTraceGenerator;

const USERS: usize = 2_000;
const SEED: u64 = 7;

fn graph() -> SocialGraph {
    SocialGraph::generate(GraphPreset::FacebookLike, USERS, SEED).unwrap()
}

fn topology() -> Topology {
    Topology::paper_tree().unwrap()
}

fn bench_partitioner(c: &mut Criterion) {
    let graph = graph();
    c.bench_function("partition/metis_225_parts", |b| {
        b.iter(|| {
            Partitioner::new(225)
                .seed(SEED)
                .partition(&graph)
                .unwrap()
                .part_count()
        })
    });
}

fn bench_routing(c: &mut Criterion) {
    let topology = topology();
    let broker = topology.brokers()[0].machine();
    let replicas: Vec<_> = topology
        .servers()
        .iter()
        .step_by(40)
        .map(|s| s.machine())
        .collect();
    c.bench_function("routing/closest_replica_6_candidates", |b| {
        b.iter(|| routing::closest_replica(&topology, broker, &replicas))
    });
}

fn bench_engine_read(c: &mut Criterion) {
    let graph = graph();
    let topology = topology();
    let mut group = c.benchmark_group("engine_read_path");
    let targets: Vec<UserId> = graph.followees(UserId::new(0)).to_vec();

    group.bench_function("dynasore", |b| {
        let engine = DynaSoReEngine::builder()
            .topology(topology.clone())
            .budget(MemoryBudget::with_extra_percent(USERS, 30))
            .initial_placement(InitialPlacement::Random { seed: SEED })
            .build(&graph)
            .unwrap();
        b.iter_batched(
            || engine.clone(),
            |mut engine| {
                let mut out = Vec::new();
                engine.handle_read(UserId::new(0), &targets, SimTime::from_secs(1), &mut out);
                out.len()
            },
            BatchSize::SmallInput,
        )
    });
    group.bench_function("random_static", |b| {
        let engine = StaticPlacement::random(&graph, &topology, SEED).unwrap();
        b.iter_batched(
            || engine.clone(),
            |mut engine| {
                let mut out = Vec::new();
                engine.handle_read(UserId::new(0), &targets, SimTime::from_secs(1), &mut out);
                out.len()
            },
            BatchSize::SmallInput,
        )
    });
    group.bench_function("spar", |b| {
        let engine = SparEngine::new(
            &graph,
            &topology,
            MemoryBudget::with_extra_percent(USERS, 30),
            SEED,
        )
        .unwrap();
        b.iter_batched(
            || engine.clone(),
            |mut engine| {
                let mut out = Vec::new();
                engine.handle_read(UserId::new(0), &targets, SimTime::from_secs(1), &mut out);
                out.len()
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

/// Steady-state hot-path throughput at paper-plus scale: 100k users on the
/// paper tree, measured after the placement has been warmed up. This is the
/// criterion-side companion of the `hotpath_throughput` binary (which emits
/// `BENCH_hotpath.json`).
fn bench_hotpath_steady_state(c: &mut Criterion) {
    const HOT_USERS: usize = 100_000;
    let graph = SocialGraph::generate(GraphPreset::FacebookLike, HOT_USERS, SEED).unwrap();
    let topology = topology();
    let mut engine = DynaSoReEngine::builder()
        .topology(topology)
        .budget(MemoryBudget::with_extra_percent(HOT_USERS, 30))
        .initial_placement(InitialPlacement::Random { seed: SEED })
        .build(&graph)
        .unwrap();
    let user_at = |k: u64| UserId::new(((k.wrapping_mul(7_919)) % HOT_USERS as u64) as u32);
    let mut out = Vec::new();
    for k in 0..50_000u64 {
        let user = user_at(k);
        out.clear();
        engine.handle_read(user, graph.followees(user), SimTime::from_secs(1), &mut out);
        out.clear();
        engine.handle_write(user, SimTime::from_secs(1), &mut out);
    }

    let mut group = c.benchmark_group("hotpath_100k_users");
    let mut k = 0u64;
    group.bench_function("steady_state_read", |b| {
        b.iter(|| {
            k = k.wrapping_add(1);
            let user = user_at(k);
            out.clear();
            engine.handle_read(user, graph.followees(user), SimTime::from_secs(2), &mut out);
            out.len()
        })
    });
    group.bench_function("steady_state_write", |b| {
        b.iter(|| {
            k = k.wrapping_add(1);
            let user = user_at(k);
            out.clear();
            engine.handle_write(user, SimTime::from_secs(3), &mut out);
            out.len()
        })
    });
    group.finish();
}

fn bench_simulation_hour(c: &mut Criterion) {
    let graph = graph();
    let topology = topology();
    let requests: Vec<_> = SyntheticTraceGenerator::paper_defaults(&graph, 1, SEED)
        .unwrap()
        .take(2_000)
        .collect();
    c.bench_function("simulation/2000_requests_dynasore", |b| {
        b.iter_batched(
            || {
                let engine = DynaSoReEngine::builder()
                    .topology(topology.clone())
                    .budget(MemoryBudget::with_extra_percent(USERS, 30))
                    .initial_placement(InitialPlacement::Random { seed: SEED })
                    .build(&graph)
                    .unwrap();
                Simulation::new(topology.clone(), engine, &graph)
            },
            |mut sim| sim.run(requests.clone()).unwrap().top_switch_total(),
            BatchSize::LargeInput,
        )
    });
}

fn bench_trace_generation(c: &mut Criterion) {
    let graph = graph();
    c.bench_function("workload/synthetic_one_day", |b| {
        b.iter(|| {
            SyntheticTraceGenerator::paper_defaults(&graph, 1, SEED)
                .unwrap()
                .count()
        })
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_partitioner,
        bench_routing,
        bench_engine_read,
        bench_hotpath_steady_state,
        bench_simulation_hour,
        bench_trace_generation
);
criterion_main!(benches);
