//! **Scenario matrix** — the adversarial degradation scorecard: every
//! placement engine crossed with every scripted scenario from
//! [`dynasore_sim::scenario`], scored against its own quiet baseline.
//!
//! ```text
//! cargo run --release -p dynasore-bench --bin scenario_matrix \
//!     [-- --users N --seed N --days N --quick --out PATH \
//!         --check-against PATH --tolerance F \
//!         --trace-out DIR --metrics-out PATH]
//! ```
//!
//! Each cell of the matrix runs one freshly built engine through one
//! [`ScenarioKind`] — hot-key flood, flash crowd with a downed neighbor
//! rack, read/write-ratio inversion, regional multi-rack failure, and a
//! decommission under load — over the [`NetworkModel::datacenter`] fabric
//! with a file-backed durable tier attached, so the scorecard's recovery
//! column measures real replayed bytes. The whole matrix is a pure
//! function of `(users, seed, days)`: rerunning it reproduces the JSON
//! artifact byte for byte.
//!
//! `--check-against PATH` turns the run into a regression guard: the
//! process exits non-zero when any cell's availability drops more than
//! `--tolerance` (default 0.05, absolute) below the committed snapshot.
//! CI runs `--quick --check-against BENCH_scenarios_quick.json`.
//!
//! `--trace-out DIR` attaches a flight recorder to every cell and dumps
//! each cell's event timeline to `DIR/<engine>-<scenario>.jsonl`;
//! `--metrics-out PATH` merges every cell's metrics registry and writes
//! one Prometheus text exposition. Observation is passive: the scorecard
//! (and the `--out` artifact) is byte-identical with or without the flags.

use dynasore_baselines::{SparEngine, StaticPlacement};
use dynasore_core::{DynaSoReEngine, InitialPlacement};
use dynasore_graph::{GraphPreset, SocialGraph};
use dynasore_sim::{
    DegradationReport, PlacementEngine, ScenarioConfig, ScenarioKind, ScenarioRunner, SimObs,
    SimulationConfig,
};
use dynasore_store::{LogConfig, ShardedConfig, SimDurableTier};
use dynasore_topology::Topology;
use dynasore_types::{MemoryBudget, MetricsRegistry, NetworkModel};

struct Options {
    users: usize,
    seed: u64,
    days: u64,
    quick: bool,
    out: String,
    check_against: Option<String>,
    tolerance: f64,
    trace_out: Option<String>,
    metrics_out: Option<String>,
}

impl Options {
    fn from_args() -> Options {
        let mut o = Options {
            users: 2_000,
            seed: 42,
            days: 2,
            quick: false,
            out: "BENCH_scenarios.json".to_string(),
            check_against: None,
            tolerance: 0.05,
            trace_out: None,
            metrics_out: None,
        };
        let args: Vec<String> = std::env::args().collect();
        let mut i = 1;
        while i < args.len() {
            match args[i].as_str() {
                "--users" if i + 1 < args.len() => {
                    o.users = args[i + 1].parse().unwrap_or(o.users);
                    i += 1;
                }
                "--seed" if i + 1 < args.len() => {
                    o.seed = args[i + 1].parse().unwrap_or(o.seed);
                    i += 1;
                }
                "--days" if i + 1 < args.len() => {
                    o.days = args[i + 1].parse().unwrap_or(o.days);
                    i += 1;
                }
                "--out" if i + 1 < args.len() => {
                    o.out = args[i + 1].clone();
                    i += 1;
                }
                "--check-against" if i + 1 < args.len() => {
                    o.check_against = Some(args[i + 1].clone());
                    i += 1;
                }
                "--tolerance" if i + 1 < args.len() => {
                    o.tolerance = args[i + 1].parse().unwrap_or(o.tolerance);
                    i += 1;
                }
                "--trace-out" if i + 1 < args.len() => {
                    o.trace_out = Some(args[i + 1].clone());
                    i += 1;
                }
                "--metrics-out" if i + 1 < args.len() => {
                    o.metrics_out = Some(args[i + 1].clone());
                    i += 1;
                }
                "--quick" => o.quick = true,
                _ => {}
            }
            i += 1;
        }
        if o.quick {
            o.users = o.users.min(600);
            o.days = o.days.min(1);
            if o.out == "BENCH_scenarios.json" {
                o.out = "BENCH_scenarios_quick.json".to_string();
            }
        }
        o
    }
}

const ENGINES: [&str; 3] = ["dynasore", "spar", "static-random"];

/// Builds a fresh engine by matrix row name — every cell starts from the
/// same initial placement, so degradation is attributable to the scenario.
fn build_engine(
    name: &str,
    graph: &SocialGraph,
    topology: &Topology,
    users: usize,
    seed: u64,
) -> Box<dyn PlacementEngine> {
    let budget = MemoryBudget::with_extra_percent(users, 30);
    match name {
        "dynasore" => Box::new(
            DynaSoReEngine::builder()
                .topology(topology.clone())
                .budget(budget)
                .initial_placement(InitialPlacement::Random { seed })
                .build(graph)
                .expect("dynasore engine"),
        ),
        "spar" => Box::new(SparEngine::new(graph, topology, budget, seed).expect("spar engine")),
        "static-random" => {
            Box::new(StaticPlacement::random(graph, topology, seed).expect("static engine"))
        }
        other => panic!("unknown engine {other}"),
    }
}

fn main() {
    let opts = Options::from_args();
    let graph = SocialGraph::generate(GraphPreset::FacebookLike, opts.users, opts.seed)
        .expect("graph generation");
    // The scaled-down paper cluster: 9 racks, 1 broker + 3 servers each.
    let topology = Topology::tree(3, 3, 4, 1).expect("tree topology");
    let runner = ScenarioRunner::new(
        ScenarioConfig {
            seed: opts.seed,
            days: opts.days,
            // Four of nine racks: the regional outage exceeds the engines'
            // 30% memory slack, so some lost masters cannot be re-created
            // until the repair — the availability columns get real teeth.
            regional_racks: 4,
            ..ScenarioConfig::default()
        },
        SimulationConfig {
            network: NetworkModel::datacenter(),
            ..SimulationConfig::default()
        },
    );

    // Per-run durable tiers live in a throwaway directory, removed on exit;
    // the tier turns the recovery column into real replayed bytes.
    let data_root = std::env::temp_dir().join(format!("dynasore-scenarios-{}", std::process::id()));

    let observing = opts.trace_out.is_some() || opts.metrics_out.is_some();
    if let Some(dir) = &opts.trace_out {
        std::fs::create_dir_all(dir).expect("create trace-out directory");
    }
    let mut merged_metrics = MetricsRegistry::new();
    let mut cells: Vec<DegradationReport> = Vec::new();
    eprintln!(
        "# scenario_matrix: {} users, {} day(s), seed {} — {} engines x {} scenarios",
        opts.users,
        opts.days,
        opts.seed,
        ENGINES.len(),
        ScenarioKind::ALL.len()
    );
    for engine_name in ENGINES {
        let quiet = runner
            .quiet_baseline(
                topology.clone(),
                &graph,
                build_engine(engine_name, &graph, &topology, opts.users, opts.seed),
            )
            .expect("quiet baseline");
        for kind in ScenarioKind::ALL {
            let tier_dir = data_root.join(format!("{engine_name}-{}", kind.name()));
            // Sharded tier (flush interval forced off inside open_sharded
            // for determinism) so the observer's per-tick samples include
            // per-shard durable lag, not one aggregate number.
            let tier = SimDurableTier::open_sharded(
                &tier_dir,
                ShardedConfig {
                    shards: 4,
                    log: LogConfig::default(),
                    ..ShardedConfig::default()
                },
            )
            .expect("open durable tier");
            let engine = build_engine(engine_name, &graph, &topology, opts.users, opts.seed);
            let cell = if observing {
                let (cell, obs) = runner
                    .run_observed(
                        kind,
                        topology.clone(),
                        &graph,
                        engine,
                        &quiet,
                        Some(Box::new(tier)),
                        SimObs::default(),
                    )
                    .expect("scenario run");
                if let Some(dir) = &opts.trace_out {
                    let path = format!("{dir}/{engine_name}-{}.jsonl", kind.name());
                    std::fs::write(&path, obs.to_jsonl()).expect("write trace JSONL");
                }
                merged_metrics.merge(obs.registry());
                cell
            } else {
                runner
                    .run(
                        kind,
                        topology.clone(),
                        &graph,
                        engine,
                        &quiet,
                        Some(Box::new(tier)),
                    )
                    .expect("scenario run")
            };
            eprintln!(
                "# {:>13} x {:<26} avail {:.4}  worst-window {:.4}  \
                 p99 {}ns (quiet {}ns, x{:.2})  recovery {} msgs / {} bytes  steady {}s",
                cell.engine,
                cell.scenario,
                cell.availability,
                cell.worst_window_availability,
                cell.read_p99.as_nanos(),
                cell.quiet_read_p99.as_nanos(),
                cell.p99_ratio,
                cell.recovery_messages,
                cell.recovery_bytes,
                cell.time_to_steady_secs,
            );
            cells.push(cell);
        }
    }
    if let Some(path) = &opts.metrics_out {
        std::fs::write(path, merged_metrics.render_prometheus()).expect("write metrics exposition");
        eprintln!("# scenario_matrix: merged metrics written to {path}");
    }
    if data_root.exists() {
        std::fs::remove_dir_all(&data_root).expect("remove scenario durable tiers");
    }

    let scorecard = cells
        .iter()
        .map(|c| {
            format!(
                concat!(
                    "    \"{engine}/{scenario}\": {{\n",
                    "      \"availability\": {availability:.6},\n",
                    "      \"worst_window_availability\": {worst:.6},\n",
                    "      \"p99_ratio\": {p99:.4},\n",
                    "      \"recovery_messages\": {recovery_messages},\n",
                    "      \"recovery_bytes\": {recovery_bytes},\n",
                    "      \"time_to_steady_secs\": {steady},\n",
                    "      \"read_p99_ns\": {read_p99_ns},\n",
                    "      \"quiet_read_p99_ns\": {quiet_read_p99_ns}\n",
                    "    }}"
                ),
                engine = c.engine,
                scenario = c.scenario,
                availability = c.availability,
                worst = c.worst_window_availability,
                p99 = c.p99_ratio,
                recovery_messages = c.recovery_messages,
                recovery_bytes = c.recovery_bytes,
                steady = c.time_to_steady_secs,
                read_p99_ns = c.read_p99.as_nanos(),
                quiet_read_p99_ns = c.quiet_read_p99.as_nanos(),
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"scenario_matrix\",\n",
            "  \"users\": {users},\n",
            "  \"seed\": {seed},\n",
            "  \"days\": {days},\n",
            "  \"quick\": {quick},\n",
            "  \"scorecard\": {{\n",
            "{scorecard}\n",
            "  }}\n",
            "}}\n"
        ),
        users = opts.users,
        seed = opts.seed,
        days = opts.days,
        quick = opts.quick,
        scorecard = scorecard,
    );
    std::fs::write(&opts.out, &json).expect("write scorecard JSON");
    eprintln!("# scenario_matrix: scorecard written to {}", opts.out);
    print!("{json}");

    if let Some(path) = &opts.check_against {
        check_against_snapshot(path, &cells, opts.tolerance);
    }
}

/// Extracts `"availability"` from the named `engine/scenario` section of a
/// snapshot written by this binary. Hand-rolled scan, dependency-free; the
/// output above prints `availability` first in each section, so the first
/// match after the section key is the right field.
fn snapshot_availability(json: &str, section: &str) -> Option<f64> {
    let start = json.find(&format!("\"{section}\""))?;
    let rest = &json[start..];
    let key = rest.find("\"availability\"")?;
    let after = &rest[key + "\"availability\"".len()..];
    let colon = after.find(':')?;
    let value = after[colon + 1..]
        .trim_start()
        .split([',', '\n', '}'])
        .next()?
        .trim();
    value.parse().ok()
}

/// The regression guard: fails the process when any cell's availability
/// drops more than `tolerance` (absolute) below the committed snapshot.
fn check_against_snapshot(path: &str, cells: &[DegradationReport], tolerance: f64) {
    let snapshot = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(err) => {
            eprintln!("# regression guard: cannot read snapshot {path}: {err}");
            std::process::exit(2);
        }
    };
    let mut failed = false;
    let mut checked = 0usize;
    for cell in cells {
        let section = format!("{}/{}", cell.engine, cell.scenario);
        let Some(snap) = snapshot_availability(&snapshot, &section) else {
            eprintln!("# regression guard: snapshot {path} has no section {section}; skipping");
            continue;
        };
        checked += 1;
        let floor = snap - tolerance;
        let verdict = if cell.availability < floor {
            failed = true;
            "FAIL"
        } else {
            "ok"
        };
        eprintln!(
            "# regression guard [{verdict}]: {section} availability {:.4} vs snapshot {snap:.4} \
             (floor {floor:.4})",
            cell.availability,
        );
    }
    if checked == 0 {
        eprintln!("# regression guard: snapshot {path} matched no scorecard cells");
        std::process::exit(2);
    }
    if failed {
        eprintln!(
            "# regression guard: availability regressed more than {tolerance:.3} below {path}"
        );
        std::process::exit(1);
    }
}
