//! **Latency under load** — read-latency percentiles of DynaSoRe vs SPAR vs
//! static placement at rising request rates, up to congestion collapse.
//!
//! ```text
//! cargo run --release -p dynasore-bench --bin latency_under_load \
//!     [-- --users N --seed N --quick]
//! ```
//!
//! Method: the request mix is the paper's synthetic day (1 write + 4 reads
//! per user); rate is raised by compressing that day into a `1/multiplier`
//! window, so a 64× run pushes the same requests in 1/64th of the time.
//! The fabric is calibrated once from a probe run (static placement,
//! unit-count mode): each tier's service rate is a fixed multiple of the
//! probe's average per-switch load — with *less* headroom up the tree
//! (top 4×, intermediate 8×, rack 32×), mirroring real oversubscribed
//! data-centre fabrics — and never below the rate that drains one request's
//! whole tier burst in 20 ms, so individual requests are fast when the
//! fabric is idle. Each engine then runs at 1×, 2×, 4×, … the baseline
//! rate until its run congestion-collapses (some switch accumulates more
//! than the threshold of queued work).
//!
//! Because the top tier saturates first, an engine that keeps traffic out
//! of the core (DynaSoRe's whole point) fits a higher request rate through
//! the same switches before latency explodes — the time-domain reading of
//! the paper's traffic-reduction claim. Latency percentiles come from the
//! simulator's per-read histogram (log-scale, ≤12.5% bucket width).

use dynasore_baselines::{SparEngine, StaticPlacement};
use dynasore_core::{DynaSoReEngine, InitialPlacement};
use dynasore_graph::{GraphPreset, SocialGraph};
use dynasore_sim::{PlacementEngine, SimReport, Simulation};
use dynasore_topology::{Tier, Topology};
use dynasore_types::{Bandwidth, Latency, MemoryBudget, NetworkModel, SimTime, DAY_SECS};
use dynasore_workload::{Request, SyntheticTraceGenerator};

/// Per-tier service capacity as a multiple of the probe run's average
/// per-switch load: tight at the core, generous at the edge.
const TIER_HEADROOM: [f64; 3] = [4.0, 8.0, 32.0]; // [top, intermediate, rack]
/// Floor: every tier must drain one request's whole tier burst within this
/// many seconds, so requests are fast on an idle fabric.
const BURST_DRAIN_SECS: f64 = 0.020;
/// Rate multipliers tried, in order, until an engine collapses.
const MULTIPLIERS: [u64; 9] = [1, 2, 4, 8, 16, 32, 64, 128, 256];

struct Options {
    users: usize,
    seed: u64,
    quick: bool,
}

impl Options {
    fn from_args() -> Options {
        let mut o = Options {
            users: 20_000,
            seed: 42,
            quick: false,
        };
        let args: Vec<String> = std::env::args().collect();
        let mut i = 1;
        while i < args.len() {
            match args[i].as_str() {
                "--users" if i + 1 < args.len() => {
                    o.users = args[i + 1].parse().unwrap_or(o.users);
                    i += 1;
                }
                "--seed" if i + 1 < args.len() => {
                    o.seed = args[i + 1].parse().unwrap_or(o.seed);
                    i += 1;
                }
                "--quick" => o.quick = true,
                _ => {}
            }
            i += 1;
        }
        if o.quick {
            o.users = o.users.min(2_000);
        }
        o
    }
}

/// The paper's synthetic day, compressed `multiplier`-fold: same request
/// mix, `multiplier` times the arrival rate.
fn trace(graph: &SocialGraph, seed: u64, multiplier: u64) -> Vec<Request> {
    SyntheticTraceGenerator::paper_defaults(graph, 1, seed)
        .expect("trace generation")
        .map(|r| Request {
            time: SimTime::from_secs(r.time.as_secs() / multiplier),
            ..r
        })
        .collect()
}

fn build_engine(
    kind: &str,
    graph: &SocialGraph,
    topology: &Topology,
    users: usize,
    seed: u64,
) -> Box<dyn PlacementEngine> {
    let budget = MemoryBudget::with_extra_percent(users, 30);
    match kind {
        "dynasore" => Box::new(
            DynaSoReEngine::builder()
                .topology(topology.clone())
                .budget(budget)
                .initial_placement(InitialPlacement::Random { seed })
                .build(graph)
                .expect("dynasore build"),
        ),
        "spar" => Box::new(SparEngine::new(graph, topology, budget, seed).expect("spar build")),
        "static" => Box::new(StaticPlacement::random(graph, topology, seed).expect("static build")),
        other => panic!("unknown engine {other}"),
    }
}

/// Calibrates the fabric from the probe run's measured switch loads.
fn calibrate(probe: &SimReport, topology: &Topology) -> NetworkModel {
    let duration = probe.end_time().as_secs().max(1) as f64;
    let requests = (probe.read_count() + probe.write_count()).max(1) as f64;
    let service = |tier: Tier, switches: usize, headroom: f64| -> Bandwidth {
        let total = probe.traffic().tier_total(tier).total() as f64;
        let sustained = total / duration / switches as f64 * headroom;
        let burst_floor = total / requests / BURST_DRAIN_SECS;
        Bandwidth::units_per_sec((sustained.max(burst_floor).ceil() as u64).max(10))
    };
    NetworkModel {
        top_service: service(Tier::Top, 1, TIER_HEADROOM[0]),
        intermediate_service: service(
            Tier::Intermediate,
            topology.intermediate_count(),
            TIER_HEADROOM[1],
        ),
        rack_service: service(Tier::Rack, topology.rack_count(), TIER_HEADROOM[2]),
        hop_latency: Latency::from_micros(5),
        collapse_threshold: Latency::from_secs(2),
    }
}

struct Measurement {
    multiplier: u64,
    p50: Latency,
    p95: Latency,
    p99: Latency,
    max_backlog: u64,
    collapsed: bool,
}

fn main() {
    let opts = Options::from_args();
    let graph = SocialGraph::generate(GraphPreset::FacebookLike, opts.users, opts.seed)
        .expect("graph generation");
    let topology = Topology::paper_tree().expect("paper tree");

    // Probe: measure the 1× per-switch load with static-random placement in
    // unit-count mode, then freeze the fabric capacity.
    let probe_engine = build_engine("static", &graph, &topology, opts.users, opts.seed);
    let probe = Simulation::new(topology.clone(), probe_engine, &graph)
        .run(trace(&graph, opts.seed, 1))
        .expect("probe run");
    let model = calibrate(&probe, &topology);
    eprintln!(
        "# latency_under_load: calibrated fabric top={} inter={} rack={}",
        model.top_service, model.intermediate_service, model.rack_service
    );

    let mut sections = Vec::new();
    for kind in ["dynasore", "spar", "static"] {
        let mut rows: Vec<Measurement> = Vec::new();
        for &multiplier in &MULTIPLIERS {
            let engine = build_engine(kind, &graph, &topology, opts.users, opts.seed);
            let report = Simulation::new(topology.clone(), engine, &graph)
                .with_network(model)
                .run(trace(&graph, opts.seed, multiplier))
                .expect("measured run");
            let collapsed = report.congestion_collapsed();
            rows.push(Measurement {
                multiplier,
                p50: report.read_latency_p50(),
                p95: report.read_latency_p95(),
                p99: report.read_latency_p99(),
                max_backlog: report.max_switch_backlog(),
                collapsed,
            });
            eprintln!(
                "# {kind} x{multiplier}: p50={} p95={} p99={} backlog={}u{}",
                report.read_latency_p50(),
                report.read_latency_p95(),
                report.read_latency_p99(),
                report.max_switch_backlog(),
                if collapsed { " COLLAPSED" } else { "" }
            );
            if collapsed {
                break;
            }
        }
        let survived = rows
            .iter()
            .filter(|r| !r.collapsed)
            .map(|r| r.multiplier)
            .max()
            .unwrap_or(0);
        let rows_json: Vec<String> = rows
            .iter()
            .map(|r| {
                format!(
                    concat!(
                        "      {{ \"rate_multiplier\": {}, \"p50_us\": {:.1}, ",
                        "\"p95_us\": {:.1}, \"p99_us\": {:.1}, ",
                        "\"max_switch_backlog_units\": {}, \"collapsed\": {} }}"
                    ),
                    r.multiplier,
                    r.p50.as_nanos() as f64 / 1_000.0,
                    r.p95.as_nanos() as f64 / 1_000.0,
                    r.p99.as_nanos() as f64 / 1_000.0,
                    r.max_backlog,
                    r.collapsed
                )
            })
            .collect();
        sections.push(format!(
            "    \"{kind}\": {{\n      \"max_survived_multiplier\": {survived},\n      \
             \"rates\": [\n{}\n      ]\n    }}",
            rows_json.join(",\n")
        ));
    }

    let requests_per_day = opts.users as u64 * 5;
    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"latency_under_load\",\n",
            "  \"users\": {users},\n",
            "  \"seed\": {seed},\n",
            "  \"quick\": {quick},\n",
            "  \"baseline_requests_per_sec\": {base_rps:.3},\n",
            "  \"fabric\": {{\n",
            "    \"tier_headroom\": [{headroom_top}, {headroom_inter}, {headroom_rack}],\n",
            "    \"top_units_per_sec\": {top},\n",
            "    \"intermediate_units_per_sec\": {inter},\n",
            "    \"rack_units_per_sec\": {rack},\n",
            "    \"hop_latency_us\": {hop_us:.1},\n",
            "    \"collapse_threshold_secs\": {collapse_secs:.1}\n",
            "  }},\n",
            "  \"engines\": {{\n{engines}\n  }}\n",
            "}}\n"
        ),
        users = opts.users,
        seed = opts.seed,
        quick = opts.quick,
        base_rps = requests_per_day as f64 / DAY_SECS as f64,
        headroom_top = TIER_HEADROOM[0],
        headroom_inter = TIER_HEADROOM[1],
        headroom_rack = TIER_HEADROOM[2],
        top = model.top_service.as_units_per_sec(),
        inter = model.intermediate_service.as_units_per_sec(),
        rack = model.rack_service.as_units_per_sec(),
        hop_us = model.hop_latency.as_nanos() as f64 / 1_000.0,
        collapse_secs = model.collapse_threshold.as_secs_f64(),
        engines = sections.join(",\n"),
    );
    print!("{json}");
}
