//! **Figure 6 (a, b)** — convergence of DynaSoRe: top-switch *application*
//! traffic and *system* (protocol) traffic over time, starting from a Random
//! or hierarchical-METIS placement with 150% extra memory, under the
//! synthetic trace (6a) or the diurnal "real" trace (6b).
//!
//! ```text
//! cargo run --release -p dynasore-bench --bin fig6_convergence -- --trace synthetic
//! cargo run --release -p dynasore-bench --bin fig6_convergence -- --trace diurnal
//! ```

use dynasore_baselines::StaticPlacement;
use dynasore_bench::{
    dataset, dynasore_engine, fmt_norm, paper_topology, print_row, ExperimentScale,
};
use dynasore_core::InitialPlacement;
use dynasore_graph::{GraphPreset, SocialGraph};
use dynasore_sim::{PlacementEngine, SimReport, Simulation};
use dynasore_topology::{TierTraffic, Topology};
use dynasore_workload::{DiurnalConfig, DiurnalTraceGenerator, Request, SyntheticTraceGenerator};

fn trace_kind() -> String {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--trace")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "synthetic".to_string())
}

fn build_trace(
    kind: &str,
    graph: &SocialGraph,
    days: u64,
    seed: u64,
) -> Result<Vec<Request>, dynasore_types::Error> {
    Ok(match kind {
        "diurnal" => DiurnalTraceGenerator::new(
            graph,
            DiurnalConfig {
                days,
                ..DiurnalConfig::default()
            },
            seed,
        )?
        .collect(),
        _ => SyntheticTraceGenerator::paper_defaults(graph, days, seed)?.collect(),
    })
}

fn run<E: PlacementEngine>(
    engine: E,
    graph: &SocialGraph,
    topology: &Topology,
    trace: &[Request],
) -> Result<SimReport, dynasore_types::Error> {
    Simulation::new(topology.clone(), engine, graph).run(trace.to_vec())
}

fn hourly(series: &[TierTraffic]) -> impl Iterator<Item = (usize, u64, u64)> + '_ {
    series
        .iter()
        .enumerate()
        .map(|(h, t)| (h, t.application, t.protocol))
}

fn main() -> Result<(), dynasore_types::Error> {
    let kind = trace_kind();
    let scale = ExperimentScale::from_args(ExperimentScale {
        users: 8_000,
        days: if trace_kind() == "diurnal" { 5 } else { 2 },
        extra_memory: 150,
        ..ExperimentScale::default()
    });
    let topology = paper_topology()?;
    let graph = dataset(GraphPreset::FacebookLike, &scale)?;
    let trace = build_trace(&kind, &graph, scale.days, scale.seed)?;

    // Baseline for normalisation: Random placement on the same trace.
    let random = run(
        StaticPlacement::random(&graph, &topology, scale.seed)?,
        &graph,
        &topology,
        &trace,
    )?;
    let random_total = random.top_switch_total().max(1);

    let from_random = run(
        dynasore_engine(
            &graph,
            &topology,
            scale.extra_memory,
            InitialPlacement::Random { seed: scale.seed },
        )?,
        &graph,
        &topology,
        &trace,
    )?;
    let from_hmetis = run(
        dynasore_engine(
            &graph,
            &topology,
            scale.extra_memory,
            InitialPlacement::HierarchicalMetis { seed: scale.seed },
        )?,
        &graph,
        &topology,
        &trace,
    )?;

    println!(
        "# Figure 6{}: top-switch application vs system traffic over time, Facebook, {}% extra memory, {} trace",
        if kind == "diurnal" { "b" } else { "a" },
        scale.extra_memory,
        kind
    );
    println!(
        "# values are per-hour traffic normalised by Random's average hourly top-switch traffic"
    );
    print_row(
        [
            "hour",
            "app_from_random",
            "sys_from_random",
            "app_from_hmetis",
            "sys_from_hmetis",
        ]
        .map(String::from),
    );
    let hours = (scale.days * 24) as usize;
    let random_hourly_avg = random_total as f64 / hours as f64;
    let series_r = from_random.top_switch_series();
    let series_h = from_hmetis.top_switch_series();
    for hour in 0..hours {
        let (ar, sr) = hourly(&series_r)
            .nth(hour)
            .map(|(_, a, s)| (a, s))
            .unwrap_or((0, 0));
        let (ah, sh) = hourly(&series_h)
            .nth(hour)
            .map(|(_, a, s)| (a, s))
            .unwrap_or((0, 0));
        print_row([
            hour.to_string(),
            fmt_norm(ar as f64 / random_hourly_avg),
            fmt_norm(sr as f64 / random_hourly_avg),
            fmt_norm(ah as f64 / random_hourly_avg),
            fmt_norm(sh as f64 / random_hourly_avg),
        ]);
    }
    println!("# expected shape: system traffic spikes in the first hours and then decays;");
    println!("# application traffic settles near its converged level within ~1 day.");
    Ok(())
}
