//! **Hot-path throughput** — steady-state requests/sec of the DynaSoRe
//! read and write paths over the paper tree (§4.3 topology), measured by
//! driving `handle_read`/`handle_write` directly after the placement has
//! converged. This is the perf trajectory anchor for the request hot path:
//! every change to routing, replica storage or traffic accounting is
//! measured against the numbers recorded in `BENCH_hotpath.json`.
//!
//! ```text
//! cargo run --release -p dynasore-bench --bin hotpath_throughput \
//!     [-- --users N --seed N --iters N --out PATH --quick \
//!         --threads N --warmup-secs S --graph PATH \
//!         --trace-out PATH --metrics-out PATH]
//! ```
//!
//! `--graph PATH` replays a real dataset: the file is parsed as a
//! SNAP-style edge list (`#` comments, tab- or space-separated, self-loops
//! and duplicates tolerated), and its `max id + 1` users replace the
//! synthetic `--users N` graph — so public Twitter/Flickr snapshots drive
//! the same measured phases directly.
//!
//! `--warmup-secs S` caps the convergence warm-up by wall time (the full
//! warm-up is sized for measurement runs and dominates dev iteration at
//! quick scale).
//!
//! `--threads N` (default 4) measures the `parallel` phase: the same writes
//! as the serial write phase, from the same converged engine state, driven
//! through the rack-sharded `handle_write_batch` path with `N` worker
//! sinks. The phase asserts the parallel message count equals the serial
//! phase's — the byte-identity contract — and records throughput plus the
//! speedup over the serial write phase in the JSON. `--threads 1` skips the
//! phase.
//!
//! `--trace-out PATH` / `--metrics-out PATH` attach a flight-recorder
//! observer to the durable phase's sharded store and dump its event
//! timeline (JSONL) and metrics registry (Prometheus text exposition):
//! group-commit fills, segment rotations and the background flusher's
//! fsyncs with their lag-in-bytes. Without the flags the stores run the
//! unobserved code.
//!
//! `--quick` shrinks the graph and iteration counts so the binary doubles as
//! a CI smoke test; the JSON is written either way (default:
//! `BENCH_hotpath.json` in the current directory).
//!
//! `--check-against PATH` turns the run into a regression guard: after
//! measuring, the binary reads the committed snapshot at `PATH` and exits
//! nonzero if `read.reqs_per_sec`, `write.reqs_per_sec` or
//! `read_accounted.reqs_per_sec` dropped more than `--tolerance` (default
//! 0.30, i.e. 30%) below it. CI runs `--quick --check-against
//! BENCH_hotpath_quick.json` (the quick-scale snapshot, so the comparison
//! is same-scale) so hot-path regressions fail the pipeline.
//!
//! The `read_accounted` phase drives the same reads through a sink that
//! charges a queue-tracking [`TrafficAccount`] under the datacenter
//! [`NetworkModel`] — the simulator's full per-message latency bookkeeping —
//! so the guard also proves the time-aware accounting does not regress the
//! hot path.
//!
//! The `durable` phase writes small fixed-size payloads through a
//! [`ShardedLogStore`] (group commit plus the pipelined background flusher,
//! default shard count) in a scratch directory (`--data-dir`, default under
//! the system temp dir) and times them *including the final sync*, so the
//! number is a true durable rate.
//! A short `durable_single_sync` phase then measures the single-shard,
//! fsync-per-append configuration — the pre-sharding durability baseline —
//! and the JSON records the speedup between the two.

use std::time::Instant;

use dynasore_core::{DynaSoReEngine, InitialPlacement};
use dynasore_graph::{GraphPreset, SocialGraph};
use dynasore_store::{LogConfig, LogStructuredStore, ShardedConfig, ShardedLogStore, StoreObs};
use dynasore_topology::{Topology, TrafficAccount};
use dynasore_types::{
    MemoryBudget, Message, NetworkModel, PlacementEngine, SimTime, TrafficSink, UserId, HOUR_SECS,
};

/// Payload size of the durable phase. 64 bytes (80 per framed record) keeps
/// the phase inside a modest disk's sequential bandwidth at
/// million-writes-per-second rates, so the number measures the tier —
/// lock + batch + pipelined fsync — rather than raw platter speed; the
/// tweet-sized 140-byte payloads of the simulator (`SIM_EVENT_BYTES`) are
/// bandwidth-bound at that rate on ~100 MB/s disks.
const DURABLE_EVENT_BYTES: usize = 64;

/// Pre-refactor numbers (commit eec0658, `--users 100000 --seed 42` on the
/// development reference machine), kept so the JSON always records the
/// trajectory. Updated only when a PR intentionally re-baselines.
const BASELINE_READS_PER_SEC: f64 = 1_620.0;
const BASELINE_WRITES_PER_SEC: f64 = 1_070_785.0;

struct Options {
    users: usize,
    seed: u64,
    iters: u64,
    out: String,
    quick: bool,
    check_against: Option<String>,
    tolerance: f64,
    data_dir: Option<String>,
    trace_out: Option<String>,
    metrics_out: Option<String>,
    /// Worker budget of the `parallel` write phase (1 skips the phase).
    threads: usize,
    /// Wall-clock cap on the warm-up loop, if any.
    warmup_secs: Option<f64>,
    /// SNAP-style edge list to replay instead of the synthetic graph.
    graph: Option<String>,
}

impl Options {
    fn from_args() -> Options {
        let mut o = Options {
            users: 100_000,
            seed: 42,
            iters: 0,
            out: "BENCH_hotpath.json".to_string(),
            quick: false,
            check_against: None,
            tolerance: 0.30,
            data_dir: None,
            trace_out: None,
            metrics_out: None,
            threads: 4,
            warmup_secs: None,
            graph: None,
        };
        let args: Vec<String> = std::env::args().collect();
        let mut i = 1;
        while i < args.len() {
            match args[i].as_str() {
                "--users" if i + 1 < args.len() => {
                    o.users = args[i + 1].parse().unwrap_or(o.users);
                    i += 1;
                }
                "--seed" if i + 1 < args.len() => {
                    o.seed = args[i + 1].parse().unwrap_or(o.seed);
                    i += 1;
                }
                "--iters" if i + 1 < args.len() => {
                    o.iters = args[i + 1].parse().unwrap_or(o.iters);
                    i += 1;
                }
                "--out" if i + 1 < args.len() => {
                    o.out = args[i + 1].clone();
                    i += 1;
                }
                "--check-against" if i + 1 < args.len() => {
                    o.check_against = Some(args[i + 1].clone());
                    i += 1;
                }
                "--tolerance" if i + 1 < args.len() => {
                    o.tolerance = args[i + 1].parse().unwrap_or(o.tolerance);
                    i += 1;
                }
                "--data-dir" if i + 1 < args.len() => {
                    o.data_dir = Some(args[i + 1].clone());
                    i += 1;
                }
                "--trace-out" if i + 1 < args.len() => {
                    o.trace_out = Some(args[i + 1].clone());
                    i += 1;
                }
                "--metrics-out" if i + 1 < args.len() => {
                    o.metrics_out = Some(args[i + 1].clone());
                    i += 1;
                }
                "--threads" if i + 1 < args.len() => {
                    o.threads = args[i + 1].parse().unwrap_or(o.threads).max(1);
                    i += 1;
                }
                "--warmup-secs" if i + 1 < args.len() => {
                    o.warmup_secs = args[i + 1].parse().ok();
                    i += 1;
                }
                "--graph" if i + 1 < args.len() => {
                    o.graph = Some(args[i + 1].clone());
                    i += 1;
                }
                "--quick" => o.quick = true,
                _ => {}
            }
            i += 1;
        }
        if o.quick {
            o.users = o.users.min(2_000);
        }
        if o.iters == 0 {
            o.iters = if o.quick { 20_000 } else { 200_000 };
        }
        o
    }
}

/// Counts messages while charging each non-local one to a queue-tracking
/// account — the same work the simulator's accounting sink performs per
/// message under a time-aware network model.
struct AccountedSink<'a> {
    topology: &'a Topology,
    account: TrafficAccount,
    messages: u64,
}

impl TrafficSink for AccountedSink<'_> {
    fn record(&mut self, message: Message) {
        self.messages += 1;
        if message.is_local() {
            return;
        }
        self.topology.record_path_timed(
            message.from,
            message.to,
            message.class,
            SimTime::from_secs(4),
            &mut self.account,
        );
    }
}

/// Batch size of the parallel write phase: large enough to amortize the
/// per-batch scope spawn/join, small enough to model the simulator's
/// tick-bounded flushes.
const PARALLEL_BATCH: usize = 65_536;

/// Counts messages — the per-worker sink of the parallel write phase. It
/// owns no references, so it is `Send` and hands the engine one independent
/// sink per worker thread.
#[derive(Default)]
struct CountingSink {
    messages: u64,
}

impl TrafficSink for CountingSink {
    fn record(&mut self, _message: Message) {
        self.messages += 1;
    }
}

fn main() {
    let mut opts = Options::from_args();
    let setup_start = Instant::now();
    let graph = match &opts.graph {
        Some(path) => {
            let file = std::fs::File::open(path)
                .unwrap_or_else(|err| panic!("open graph file {path}: {err}"));
            let g = dynasore_graph::io::read_edge_list(std::io::BufReader::new(file))
                .unwrap_or_else(|err| panic!("parse edge list {path}: {err}"));
            eprintln!(
                "# hotpath_throughput: replaying {path} — {} users, {} edges",
                g.user_count(),
                g.edge_count()
            );
            // Every per-user table below is sized from the real user count.
            opts.users = g.user_count();
            g
        }
        None => SocialGraph::generate(GraphPreset::FacebookLike, opts.users, opts.seed)
            .expect("graph generation"),
    };
    let topology = Topology::paper_tree().expect("paper tree");
    let mut engine = DynaSoReEngine::builder()
        .topology(topology.clone())
        .budget(MemoryBudget::with_extra_percent(opts.users, 30))
        .initial_placement(InitialPlacement::Random { seed: opts.seed })
        .build(&graph)
        .expect("engine build");
    let setup_secs = setup_start.elapsed().as_secs_f64();

    let users = opts.users as u64;
    let user_at = |k: u64| UserId::new(((k.wrapping_mul(7_919)) % users) as u32);
    let mut out = Vec::new();

    // Warm-up: drive enough mixed traffic through every part of the cluster
    // that replica placement and proxies converge; steady state is what the
    // measured phases see.
    let warmup_start = Instant::now();
    let warmup_iters = (2 * users).min(opts.iters.max(users));
    for k in 0..warmup_iters {
        // `--warmup-secs` caps convergence by wall time for dev iteration;
        // the coarse check keeps the cap off the per-request path.
        if k % 1024 == 0 {
            if let Some(budget) = opts.warmup_secs {
                if warmup_start.elapsed().as_secs_f64() >= budget {
                    eprintln!(
                        "# hotpath_throughput: warmup capped at {budget}s \
                         ({k} of {warmup_iters} iters)"
                    );
                    break;
                }
            }
        }
        let user = user_at(k);
        out.clear();
        engine.handle_read(user, graph.followees(user), SimTime::from_secs(1), &mut out);
        out.clear();
        engine.handle_write(user, SimTime::from_secs(1), &mut out);
    }
    let warmup_secs = warmup_start.elapsed().as_secs_f64();

    // Snapshot the converged engine so the accounted-read phase below can
    // replay the *same* requests from the *same* starting state as the
    // plain read phase — otherwise placement keeps converging during the
    // earlier phases and the two read measurements cover unlike workloads.
    let mut accounted_engine = engine.clone();

    // Measured read phase.
    let read_start = Instant::now();
    let mut read_messages = 0u64;
    for k in 0..opts.iters {
        let user = user_at(k);
        out.clear();
        engine.handle_read(user, graph.followees(user), SimTime::from_secs(2), &mut out);
        read_messages += out.len() as u64;
    }
    let read_secs = read_start.elapsed().as_secs_f64();

    // Snapshot for the parallel phase below: the same writes as the serial
    // write phase, from the same starting state, so the two rates — and
    // their message counts, asserted equal — are directly comparable.
    let mut parallel_engine = (opts.threads > 1).then(|| engine.clone());

    // Measured write phase. Writes are orders of magnitude faster than
    // reads, so the phase gets an iteration floor: measuring 20k quick-mode
    // writes takes ~1 ms and the resulting rate is noisy enough to trip the
    // regression guard on its own.
    let write_iters = opts.iters.max(1_000_000);
    let write_start = Instant::now();
    let mut write_messages = 0u64;
    for k in 0..write_iters {
        let user = user_at(k);
        out.clear();
        engine.handle_write(user, SimTime::from_secs(3), &mut out);
        write_messages += out.len() as u64;
    }
    let write_secs = write_start.elapsed().as_secs_f64();

    // Measured parallel write phase: the identical writes from the
    // identical pre-write-phase engine state, batched through the
    // rack-sharded `handle_write_batch` path with `--threads` worker sinks.
    // Batches the engine declines (and its cross-shard leftovers) replay
    // serially inside the hook, so the phase always completes every write.
    let mut parallel = None;
    if let Some(mut par_engine) = parallel_engine.take() {
        let mut sinks: Vec<CountingSink> =
            (0..opts.threads).map(|_| CountingSink::default()).collect();
        let mut batch: Vec<(UserId, SimTime)> = Vec::with_capacity(PARALLEL_BATCH);
        let mut declined = 0u64;
        let parallel_start = Instant::now();
        let mut done = 0u64;
        while done < write_iters {
            let n = (PARALLEL_BATCH as u64).min(write_iters - done);
            batch.clear();
            for k in done..done + n {
                batch.push((user_at(k), SimTime::from_secs(3)));
            }
            let mut slots: Vec<&mut (dyn TrafficSink + Send)> = sinks
                .iter_mut()
                .map(|s| s as &mut (dyn TrafficSink + Send))
                .collect();
            if !par_engine.handle_write_batch(&batch, &mut slots) {
                for &(user, time) in &batch {
                    par_engine.handle_write(user, time, &mut sinks[0]);
                }
                declined += n;
            }
            done += n;
        }
        let parallel_secs = parallel_start.elapsed().as_secs_f64();
        let parallel_messages: u64 = sinks.iter().map(|s| s.messages).sum();
        drop(par_engine);
        // Byte-identity smoke check: same writes, same starting state — the
        // parallel path must produce exactly the serial phase's messages.
        if parallel_messages != write_messages {
            eprintln!(
                "# hotpath_throughput: parallel write phase diverged — \
                 {parallel_messages} messages vs serial {write_messages}"
            );
            std::process::exit(1);
        }
        if declined > 0 {
            eprintln!(
                "# hotpath_throughput: {declined} writes replayed serially (declined batches)"
            );
        }
        if effective_threads(opts.threads, declined, write_iters) == 1 {
            eprintln!(
                "# hotpath_throughput: warning — the \"parallel\" phase never parallelized \
                 (every batch was declined); threads_effective=1 in the JSON"
            );
        }
        parallel = Some((
            write_iters as f64 / parallel_secs,
            parallel_secs,
            parallel_messages,
            declined,
        ));
    }

    // Measured accounted-read phase: the identical reads from the identical
    // pre-read-phase engine state, but every message is charged to the
    // time-aware account (switch totals + queue bookkeeping), which is what
    // the simulator's hot path does per message — so the rate is directly
    // comparable to the plain read phase.
    let mut accounted = AccountedSink {
        topology: &topology,
        account: TrafficAccount::with_model(HOUR_SECS, NetworkModel::datacenter()),
        messages: 0,
    };
    let accounted_start = Instant::now();
    for k in 0..opts.iters {
        let user = user_at(k);
        accounted_engine.handle_read(
            user,
            graph.followees(user),
            SimTime::from_secs(2),
            &mut accounted,
        );
    }
    let accounted_secs = accounted_start.elapsed().as_secs_f64();
    let accounted_messages = accounted.messages;

    let reads_per_sec = opts.iters as f64 / read_secs;
    let writes_per_sec = write_iters as f64 / write_secs;
    let accounted_reads_per_sec = opts.iters as f64 / accounted_secs;

    // Free the engines and the graph before the durable phase: hundreds of
    // megabytes of live heap shrink the kernel's dirty-page headroom, which
    // throttles the store's appends on writeback and turns the phase into a
    // measurement of this process's RSS rather than of the log. Only the
    // numbers above survive.
    drop(accounted);
    drop(accounted_engine);
    drop(engine);
    drop(graph);

    // Measured durable phase: tweet-sized appends through the sharded,
    // group-committed store, timed *including the final sync* — every write
    // counted is actually fsynced by the time the clock stops.
    let data_dir = opts
        .data_dir
        .clone()
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| {
            std::env::temp_dir().join(format!(
                "dynasore-bench-hotpath-durable-{}",
                std::process::id()
            ))
        });
    if data_dir.exists()
        && data_dir
            .read_dir()
            .map(|mut d| d.next().is_some())
            .unwrap_or(true)
    {
        eprintln!(
            "# hotpath_throughput: refusing to benchmark into non-empty {}",
            data_dir.display()
        );
        std::process::exit(2);
    }
    let durable_iters = opts.iters.max(if opts.quick { 200_000 } else { 1_000_000 });
    let sharded_config = ShardedConfig::default();
    let durable_shards = sharded_config.shards;
    let payload_at = |k: u64| vec![(k as u8) ^ 0x5A; DURABLE_EVENT_BYTES];
    let sharded_dir = data_dir.join("sharded");
    let obs = (opts.trace_out.is_some() || opts.metrics_out.is_some()).then(StoreObs::default);
    let store = match &obs {
        Some(obs) => ShardedLogStore::open_observed(&sharded_dir, sharded_config, obs.clone())
            .expect("open sharded store"),
        None => ShardedLogStore::open(&sharded_dir, sharded_config).expect("open sharded store"),
    };
    let durable_start = Instant::now();
    for k in 0..durable_iters {
        store
            .append_version(user_at(k), payload_at(k))
            .expect("durable append");
    }
    store.sync().expect("final sync");
    let durable_secs = durable_start.elapsed().as_secs_f64();
    let durable_bytes = store.bytes_on_disk();
    drop(store);
    if let Some(obs) = &obs {
        if let Some(path) = &opts.trace_out {
            std::fs::write(path, obs.to_jsonl()).expect("write trace JSONL");
            eprintln!("# hotpath_throughput: durable-phase trace written to {path}");
        }
        if let Some(path) = &opts.metrics_out {
            std::fs::write(path, obs.render_prometheus()).expect("write metrics exposition");
            eprintln!("# hotpath_throughput: durable-phase metrics written to {path}");
        }
    }

    // The pre-sharding durability baseline: one shard, one fsync per
    // append. At ~4k appends/s this phase is time-boxed by a small
    // iteration count rather than matched to the phase above.
    let single_iters = if opts.quick { 300 } else { 2_000 };
    let single_dir = data_dir.join("single-sync");
    let single = LogStructuredStore::open(
        &single_dir,
        LogConfig {
            sync_on_append: true,
            ..LogConfig::default()
        },
    )
    .expect("open single-sync store");
    let single_start = Instant::now();
    for k in 0..single_iters {
        single
            .append_version(user_at(k), payload_at(k))
            .expect("single-sync append");
    }
    let single_secs = single_start.elapsed().as_secs_f64();
    drop(single);
    let _ = std::fs::remove_dir_all(&data_dir);

    let durable_per_sec = durable_iters as f64 / durable_secs;
    let single_sync_per_sec = single_iters as f64 / single_secs;
    let durable_speedup = durable_per_sec / single_sync_per_sec;

    // The parallel section only exists when the phase ran (`--threads` > 1),
    // so single-thread runs keep the historical snapshot shape.
    let parallel_block = match &parallel {
        Some((pps, psecs, pmsgs, declined)) => parallel_json_block(
            *pps,
            *psecs,
            *pmsgs,
            *declined,
            opts.threads,
            write_iters,
            writes_per_sec,
        ),
        None => String::new(),
    };

    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"hotpath_throughput\",\n",
            "  \"users\": {users},\n",
            "  \"seed\": {seed},\n",
            "  \"iters\": {iters},\n",
            "  \"quick\": {quick},\n",
            "  \"setup_secs\": {setup:.3},\n",
            "  \"warmup_secs\": {warmup:.3},\n",
            "  \"read\": {{\n",
            "    \"reqs_per_sec\": {rps:.0},\n",
            "    \"elapsed_secs\": {rsecs:.3},\n",
            "    \"messages\": {rmsgs}\n",
            "  }},\n",
            "  \"write\": {{\n",
            "    \"reqs_per_sec\": {wps:.0},\n",
            "    \"iters\": {witers},\n",
            "    \"elapsed_secs\": {wsecs:.3},\n",
            "    \"messages\": {wmsgs}\n",
            "  }},\n",
            "{parallel_block}",
            "  \"read_accounted\": {{\n",
            "    \"reqs_per_sec\": {aps:.0},\n",
            "    \"elapsed_secs\": {asecs:.3},\n",
            "    \"messages\": {amsgs}\n",
            "  }},\n",
            "  \"durable\": {{\n",
            "    \"reqs_per_sec\": {dps:.0},\n",
            "    \"iters\": {diters},\n",
            "    \"elapsed_secs\": {dsecs:.3},\n",
            "    \"shards\": {dshards},\n",
            "    \"bytes_on_disk\": {dbytes}\n",
            "  }},\n",
            "  \"durable_single_sync\": {{\n",
            "    \"reqs_per_sec\": {sps:.0},\n",
            "    \"iters\": {siters},\n",
            "    \"elapsed_secs\": {ssecs:.3}\n",
            "  }},\n",
            "  \"durable_speedup_vs_single_sync\": {dspeed:.1},\n",
            "  \"baseline_pre_refactor\": {{\n",
            "    \"commit\": \"eec0658\",\n",
            "    \"read_reqs_per_sec\": {brps:.0},\n",
            "    \"write_reqs_per_sec\": {bwps:.0}\n",
            "  }},\n",
            "  \"read_speedup_vs_baseline\": {rspeed:.2},\n",
            "  \"write_speedup_vs_baseline\": {wspeed:.2}\n",
            "}}\n"
        ),
        users = opts.users,
        seed = opts.seed,
        iters = opts.iters,
        quick = opts.quick,
        parallel_block = parallel_block,
        setup = setup_secs,
        warmup = warmup_secs,
        rps = reads_per_sec,
        rsecs = read_secs,
        rmsgs = read_messages,
        wps = writes_per_sec,
        witers = write_iters,
        wsecs = write_secs,
        wmsgs = write_messages,
        aps = accounted_reads_per_sec,
        asecs = accounted_secs,
        amsgs = accounted_messages,
        dps = durable_per_sec,
        diters = durable_iters,
        dsecs = durable_secs,
        dshards = durable_shards,
        dbytes = durable_bytes,
        sps = single_sync_per_sec,
        siters = single_iters,
        ssecs = single_secs,
        dspeed = durable_speedup,
        brps = BASELINE_READS_PER_SEC,
        bwps = BASELINE_WRITES_PER_SEC,
        rspeed = reads_per_sec / BASELINE_READS_PER_SEC,
        wspeed = writes_per_sec / BASELINE_WRITES_PER_SEC,
    );
    std::fs::write(&opts.out, &json).expect("write BENCH_hotpath.json");
    let parallel_note = match &parallel {
        Some((pps, _, _, _)) => format!(
            ", parallel writes {:.0}/s x{} ({:.2}x serial)",
            pps,
            opts.threads,
            pps / writes_per_sec
        ),
        None => String::new(),
    };
    eprintln!(
        "# hotpath_throughput: {} users, {} iters — reads {:.0}/s, writes {:.0}/s{}, \
         accounted reads {:.0}/s, durable writes {:.0}/s ({:.0}x single-sync) → {}",
        opts.users,
        opts.iters,
        reads_per_sec,
        writes_per_sec,
        parallel_note,
        accounted_reads_per_sec,
        durable_per_sec,
        durable_speedup,
        opts.out
    );
    print!("{json}");

    if let Some(path) = &opts.check_against {
        check_against_snapshot(
            path,
            reads_per_sec,
            writes_per_sec,
            accounted_reads_per_sec,
            durable_per_sec,
            parallel.as_ref().map(|(pps, _, _, _)| *pps),
            opts.tolerance,
        );
    }
}

/// Extracts `"reqs_per_sec"` from the named section (`"read"` / `"write"`)
/// of a snapshot written by this binary. A hand-rolled scan keeps the guard
/// dependency-free: the format is our own, fixed output above.
/// Worker count the parallel phase actually exercised: the requested
/// `threads` unless *every* write fell back to the serial replay path
/// (each batch declined by the engine), in which case the phase ran on one
/// thread no matter what was asked for — and the JSON must say so.
fn effective_threads(threads: usize, declined: u64, total: u64) -> usize {
    if total > 0 && declined >= total {
        1
    } else {
        threads
    }
}

/// Renders the `parallel` JSON section. `threads_effective` carries the
/// degradation signal: a phase whose every batch was declined reports 1,
/// not the requested worker count.
#[allow(clippy::too_many_arguments)]
fn parallel_json_block(
    pps: f64,
    psecs: f64,
    pmsgs: u64,
    declined: u64,
    threads: usize,
    write_iters: u64,
    writes_per_sec: f64,
) -> String {
    format!(
        concat!(
            "  \"parallel\": {{\n",
            "    \"reqs_per_sec\": {pps:.0},\n",
            "    \"threads\": {threads},\n",
            "    \"threads_effective\": {threads_effective},\n",
            "    \"declined_writes\": {declined},\n",
            "    \"iters\": {iters},\n",
            "    \"elapsed_secs\": {psecs:.3},\n",
            "    \"messages\": {pmsgs},\n",
            "    \"speedup_vs_serial_write\": {pspeed:.2}\n",
            "  }},\n",
        ),
        pps = pps,
        threads = threads,
        threads_effective = effective_threads(threads, declined, write_iters),
        declined = declined,
        iters = write_iters,
        psecs = psecs,
        pmsgs = pmsgs,
        pspeed = pps / writes_per_sec,
    )
}

fn snapshot_reqs_per_sec(json: &str, section: &str) -> Option<f64> {
    let start = json.find(&format!("\"{section}\""))?;
    let rest = &json[start..];
    let key = rest.find("\"reqs_per_sec\"")?;
    let after = &rest[key + "\"reqs_per_sec\"".len()..];
    let colon = after.find(':')?;
    let value = after[colon + 1..]
        .trim_start()
        .split([',', '\n', '}'])
        .next()?
        .trim();
    value.parse().ok()
}

/// The regression guard: fails the process when any measured rate drops
/// more than `tolerance` below the committed snapshot. The accounted-read
/// check is skipped for snapshots predating that section.
fn check_against_snapshot(
    path: &str,
    reads_per_sec: f64,
    writes_per_sec: f64,
    accounted_reads_per_sec: f64,
    durable_per_sec: f64,
    parallel_per_sec: Option<f64>,
    tolerance: f64,
) {
    let snapshot = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(err) => {
            eprintln!("# regression guard: cannot read snapshot {path}: {err}");
            std::process::exit(2);
        }
    };
    let (Some(snap_read), Some(snap_write)) = (
        snapshot_reqs_per_sec(&snapshot, "read"),
        snapshot_reqs_per_sec(&snapshot, "write"),
    ) else {
        eprintln!("# regression guard: snapshot {path} has no reqs_per_sec fields");
        std::process::exit(2);
    };
    let mut checks = vec![
        ("read", reads_per_sec, snap_read),
        ("write", writes_per_sec, snap_write),
    ];
    if let Some(snap_accounted) = snapshot_reqs_per_sec(&snapshot, "read_accounted") {
        checks.push(("read_accounted", accounted_reads_per_sec, snap_accounted));
    } else {
        eprintln!("# regression guard: snapshot {path} predates read_accounted; skipping it");
    }
    // `find` matches the quoted key, so "durable" cannot hit the
    // "durable_single_sync" section. The single-sync phase itself is not
    // guarded: a few thousand fsyncs is too noisy a sample.
    if let Some(snap_durable) = snapshot_reqs_per_sec(&snapshot, "durable") {
        checks.push(("durable", durable_per_sec, snap_durable));
    } else {
        eprintln!("# regression guard: snapshot {path} predates durable; skipping it");
    }
    // Guarded only when the phase ran in *both* this run and the snapshot:
    // `--threads 1` runs and pre-parallel snapshots skip it cleanly.
    match (
        parallel_per_sec,
        snapshot_reqs_per_sec(&snapshot, "parallel"),
    ) {
        (Some(measured), Some(snap)) => checks.push(("parallel", measured, snap)),
        (Some(_), None) => {
            eprintln!("# regression guard: snapshot {path} predates parallel; skipping it");
        }
        (None, _) => {}
    }
    let floor = 1.0 - tolerance;
    let mut failed = false;
    for (name, measured, snap) in checks {
        let ratio = if snap > 0.0 { measured / snap } else { 1.0 };
        let verdict = if ratio < floor {
            failed = true;
            "FAIL"
        } else {
            "ok"
        };
        eprintln!(
            "# regression guard [{verdict}]: {name} {measured:.0}/s vs snapshot {snap:.0}/s \
             (ratio {ratio:.2}, floor {floor:.2})"
        );
    }
    if failed {
        eprintln!(
            "# regression guard: hot-path throughput regressed more than {:.0}% below {path}",
            tolerance * 100.0
        );
        std::process::exit(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn effective_threads_degrades_only_when_everything_declined() {
        // Healthy phase: no declines, the requested count stands.
        assert_eq!(effective_threads(4, 0, 1_000), 4);
        // Partial declines still parallelized the rest.
        assert_eq!(effective_threads(4, 999, 1_000), 4);
        // Every write replayed serially: the phase never parallelized.
        assert_eq!(effective_threads(4, 1_000, 1_000), 1);
        // Degenerate empty phase keeps the requested count.
        assert_eq!(effective_threads(4, 0, 0), 4);
    }

    #[test]
    fn parallel_json_reports_the_degradation() {
        let healthy = parallel_json_block(1e6, 1.0, 500, 0, 4, 1_000, 5e5);
        assert!(healthy.contains("\"threads\": 4"), "{healthy}");
        assert!(healthy.contains("\"threads_effective\": 4"), "{healthy}");
        assert!(healthy.contains("\"declined_writes\": 0"), "{healthy}");

        let degraded = parallel_json_block(1e6, 1.0, 500, 1_000, 4, 1_000, 5e5);
        assert!(degraded.contains("\"threads\": 4"), "{degraded}");
        assert!(degraded.contains("\"threads_effective\": 1"), "{degraded}");
        assert!(degraded.contains("\"declined_writes\": 1000"), "{degraded}");
    }
}
