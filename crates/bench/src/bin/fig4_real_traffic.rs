//! **Figure 4** — top-switch traffic over time under the real (diurnal,
//! Yahoo!-News-Activity-like) trace on the Facebook graph with 50% extra
//! memory: Random, SPAR, DynaSoRe from Random and DynaSoRe from METIS.
//!
//! ```text
//! cargo run --release -p dynasore-bench --bin fig4_real_traffic [-- --users N --days N]
//! ```
//!
//! Output: one row per simulated day with the top-switch traffic of each
//! system normalised to Random's traffic on the same day, which is how the
//! paper plots the curves (the diurnal shape cancels out and the placement
//! quality remains).

use dynasore_baselines::{SparEngine, StaticPlacement};
use dynasore_bench::{
    dataset, dynasore_engine, fmt_norm, paper_topology, print_row, ExperimentScale,
};
use dynasore_core::InitialPlacement;
use dynasore_graph::{GraphPreset, SocialGraph};
use dynasore_sim::{PlacementEngine, SimReport, Simulation};
use dynasore_topology::Topology;
use dynasore_types::MemoryBudget;
use dynasore_workload::{DiurnalConfig, DiurnalTraceGenerator};

fn run_diurnal<E: PlacementEngine>(
    engine: E,
    graph: &SocialGraph,
    topology: &Topology,
    days: u64,
    seed: u64,
) -> Result<SimReport, dynasore_types::Error> {
    let config = DiurnalConfig {
        days,
        ..DiurnalConfig::default()
    };
    let trace = DiurnalTraceGenerator::new(graph, config, seed)?;
    Simulation::new(topology.clone(), engine, graph).run(trace)
}

fn daily_totals(report: &SimReport, days: u64) -> Vec<u64> {
    let series = report.top_switch_series();
    let buckets_per_day = 24usize;
    (0..days as usize)
        .map(|d| {
            series
                .iter()
                .skip(d * buckets_per_day)
                .take(buckets_per_day)
                .map(|t| t.total())
                .sum()
        })
        .collect()
}

fn main() -> Result<(), dynasore_types::Error> {
    let scale = ExperimentScale::from_args(ExperimentScale {
        users: 8_000,
        days: 7,
        extra_memory: 50,
        ..ExperimentScale::default()
    });
    let topology = paper_topology()?;
    let graph = dataset(GraphPreset::FacebookLike, &scale)?;
    let budget = MemoryBudget::with_extra_percent(graph.user_count(), scale.extra_memory);

    let random = run_diurnal(
        StaticPlacement::random(&graph, &topology, scale.seed)?,
        &graph,
        &topology,
        scale.days,
        scale.seed,
    )?;
    let spar = run_diurnal(
        SparEngine::new(&graph, &topology, budget, scale.seed)?,
        &graph,
        &topology,
        scale.days,
        scale.seed,
    )?;
    let dyn_random = run_diurnal(
        dynasore_engine(
            &graph,
            &topology,
            scale.extra_memory,
            InitialPlacement::Random { seed: scale.seed },
        )?,
        &graph,
        &topology,
        scale.days,
        scale.seed,
    )?;
    let dyn_metis = run_diurnal(
        dynasore_engine(
            &graph,
            &topology,
            scale.extra_memory,
            InitialPlacement::Metis { seed: scale.seed },
        )?,
        &graph,
        &topology,
        scale.days,
        scale.seed,
    )?;

    println!(
        "# Figure 4: top-switch traffic over time, diurnal trace, Facebook graph, {}% extra memory",
        scale.extra_memory
    );
    print_row(
        [
            "day",
            "random",
            "spar_50%",
            "dynasore_from_random_50%",
            "dynasore_from_metis_50%",
        ]
        .map(String::from),
    );
    let base = daily_totals(&random, scale.days);
    let spar_days = daily_totals(&spar, scale.days);
    let dyn_r_days = daily_totals(&dyn_random, scale.days);
    let dyn_m_days = daily_totals(&dyn_metis, scale.days);
    for day in 0..scale.days as usize {
        let norm = |v: u64| {
            if base[day] == 0 {
                0.0
            } else {
                v as f64 / base[day] as f64
            }
        };
        print_row([
            (day + 1).to_string(),
            fmt_norm(1.0),
            fmt_norm(norm(spar_days[day])),
            fmt_norm(norm(dyn_r_days[day])),
            fmt_norm(norm(dyn_m_days[day])),
        ]);
    }
    Ok(())
}
