//! **Figure 3 (a–d)** — normalised top-switch traffic as a function of the
//! extra-memory budget, for SPAR and DynaSoRe warm-started from Random,
//! METIS and hierarchical METIS, on the three social graphs (tree topology)
//! and on the Facebook graph over a flat topology.
//!
//! ```text
//! cargo run --release -p dynasore-bench --bin fig3_memory_sweep
//! cargo run --release -p dynasore-bench --bin fig3_memory_sweep -- --topology flat
//! cargo run --release -p dynasore-bench --bin fig3_memory_sweep -- --users 20000 --days 2
//! ```
//!
//! The traffic of each configuration is normalised to the static Random
//! placement, exactly as in the paper. The headline claims to check: at 30%
//! extra memory DynaSoRe cuts most of the Random traffic and clearly beats
//! SPAR; with ≥100% extra memory it approaches a small residual fraction.

use dynasore_baselines::{SparEngine, StaticPlacement};
use dynasore_bench::{
    dataset, dynasore_engine, fmt_norm, print_row, run_synthetic_after_warmup, topology_for,
    ExperimentScale,
};
use dynasore_core::InitialPlacement;
use dynasore_graph::GraphPreset;
use dynasore_types::MemoryBudget;

const EXTRA_MEMORY_POINTS: [u32; 5] = [0, 30, 50, 100, 200];

fn main() -> Result<(), dynasore_types::Error> {
    let scale = ExperimentScale::from_args(ExperimentScale::default());
    let topology = topology_for(&scale)?;
    let presets: &[GraphPreset] = if scale.flat {
        // Figure 3d only uses the Facebook graph.
        &[GraphPreset::FacebookLike]
    } else {
        &[
            GraphPreset::TwitterLike,
            GraphPreset::LiveJournalLike,
            GraphPreset::FacebookLike,
        ]
    };

    println!(
        "# Figure 3: top-switch traffic (normalised to Random) vs extra memory, {} topology",
        if scale.flat { "flat" } else { "tree" }
    );
    print_row(
        [
            "graph",
            "extra_memory_%",
            "spar",
            "dynasore_from_random",
            "dynasore_from_metis",
            "dynasore_from_hmetis",
        ]
        .map(String::from),
    );

    for &preset in presets {
        let graph = dataset(preset, &scale)?;
        let random_baseline = run_synthetic_after_warmup(
            StaticPlacement::random(&graph, &topology, scale.seed)?,
            &graph,
            &topology,
            scale.days,
            scale.seed,
        )?;

        for extra in EXTRA_MEMORY_POINTS {
            let budget = MemoryBudget::with_extra_percent(graph.user_count(), extra);
            let spar = run_synthetic_after_warmup(
                SparEngine::new(&graph, &topology, budget, scale.seed)?,
                &graph,
                &topology,
                scale.days,
                scale.seed,
            )?;
            let mut row = vec![
                preset.name().to_string(),
                extra.to_string(),
                fmt_norm(spar.normalized_top_traffic(&random_baseline)),
            ];
            for placement in [
                InitialPlacement::Random { seed: scale.seed },
                InitialPlacement::Metis { seed: scale.seed },
                InitialPlacement::HierarchicalMetis { seed: scale.seed },
            ] {
                let engine = dynasore_engine(&graph, &topology, extra, placement)?;
                let report =
                    run_synthetic_after_warmup(engine, &graph, &topology, scale.days, scale.seed)?;
                row.push(fmt_norm(report.normalized_top_traffic(&random_baseline)));
            }
            print_row(row);
        }
    }
    Ok(())
}
