//! **Observability lint** — CI gate for the flight-recorder exporters.
//!
//! ```text
//! cargo run --release -p dynasore-bench --bin obs_lint -- \
//!     [--traces DIR] [--metrics FILE]
//! ```
//!
//! `--traces DIR` validates every `*.jsonl` file in `DIR` with
//! [`validate_jsonl`]: each line must parse as a trace event with
//! monotonically non-decreasing sequence numbers, and each file must hold
//! at least one event (an empty timeline means the exporter wiring
//! silently dropped the run). `--metrics FILE` lints the Prometheus text
//! exposition with [`lint_prometheus`]: every sample needs `# HELP` /
//! `# TYPE` headers, names must be valid, values must parse.
//!
//! Exits 0 when everything passes, 1 with a per-file diagnostic on the
//! first failure class encountered. At least one of the two flags is
//! required — linting nothing is a configuration error (exit 2), not a
//! pass.

use std::path::PathBuf;

use dynasore_types::{lint_prometheus, validate_jsonl};

struct Options {
    traces: Option<PathBuf>,
    metrics: Option<PathBuf>,
}

impl Options {
    fn from_args() -> Options {
        let mut o = Options {
            traces: None,
            metrics: None,
        };
        let args: Vec<String> = std::env::args().collect();
        let mut i = 1;
        while i < args.len() {
            match args[i].as_str() {
                "--traces" if i + 1 < args.len() => {
                    o.traces = Some(PathBuf::from(&args[i + 1]));
                    i += 1;
                }
                "--metrics" if i + 1 < args.len() => {
                    o.metrics = Some(PathBuf::from(&args[i + 1]));
                    i += 1;
                }
                _ => {}
            }
            i += 1;
        }
        o
    }
}

fn main() {
    let opts = Options::from_args();
    if opts.traces.is_none() && opts.metrics.is_none() {
        eprintln!("usage: obs_lint [--traces DIR] [--metrics FILE] (at least one)");
        std::process::exit(2);
    }
    let mut failures = 0usize;

    if let Some(dir) = &opts.traces {
        let mut timelines = 0usize;
        let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)
            .unwrap_or_else(|e| {
                eprintln!("obs_lint: cannot read traces dir {}: {e}", dir.display());
                std::process::exit(2);
            })
            .filter_map(|entry| entry.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|ext| ext == "jsonl"))
            .collect();
        entries.sort();
        for path in &entries {
            let text = match std::fs::read_to_string(path) {
                Ok(text) => text,
                Err(e) => {
                    eprintln!("obs_lint: FAIL {}: unreadable: {e}", path.display());
                    failures += 1;
                    continue;
                }
            };
            match validate_jsonl(&text) {
                Ok(0) => {
                    eprintln!(
                        "obs_lint: FAIL {}: timeline is empty (expected >= 1 event)",
                        path.display()
                    );
                    failures += 1;
                }
                Ok(events) => {
                    timelines += 1;
                    eprintln!("obs_lint: ok {} ({events} events)", path.display());
                }
                Err(e) => {
                    eprintln!("obs_lint: FAIL {}: {e}", path.display());
                    failures += 1;
                }
            }
        }
        if entries.is_empty() {
            eprintln!(
                "obs_lint: FAIL {}: no .jsonl timelines found",
                dir.display()
            );
            failures += 1;
        } else {
            eprintln!(
                "obs_lint: {timelines}/{} timelines valid in {}",
                entries.len(),
                dir.display()
            );
        }
    }

    if let Some(path) = &opts.metrics {
        match std::fs::read_to_string(path) {
            Ok(text) => match lint_prometheus(&text) {
                Ok(samples) => {
                    eprintln!("obs_lint: ok {} ({samples} samples)", path.display());
                }
                Err(e) => {
                    eprintln!("obs_lint: FAIL {}: {e}", path.display());
                    failures += 1;
                }
            },
            Err(e) => {
                eprintln!("obs_lint: FAIL {}: unreadable: {e}", path.display());
                failures += 1;
            }
        }
    }

    if failures > 0 {
        eprintln!("obs_lint: {failures} failure(s)");
        std::process::exit(1);
    }
    eprintln!("obs_lint: all checks passed");
}
