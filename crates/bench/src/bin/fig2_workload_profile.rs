//! **Figure 2** — number of reads and writes per day in the Yahoo! News
//! Activity trace (here: its diurnal synthetic stand-in).
//!
//! ```text
//! cargo run --release -p dynasore-bench --bin fig2_workload_profile [-- --users N --days N]
//! ```

use dynasore_bench::{dataset, print_row, ExperimentScale};
use dynasore_graph::GraphPreset;
use dynasore_workload::{DiurnalConfig, DiurnalTraceGenerator};

fn main() -> Result<(), dynasore_types::Error> {
    let scale = ExperimentScale::from_args(ExperimentScale {
        users: 8_000,
        days: 14,
        ..ExperimentScale::default()
    });
    let graph = dataset(GraphPreset::FacebookLike, &scale)?;
    let config = DiurnalConfig {
        days: scale.days,
        ..DiurnalConfig::default()
    };
    let trace = DiurnalTraceGenerator::new(&graph, config, scale.seed)?;

    let mut reads_per_day = vec![0u64; scale.days as usize];
    let mut writes_per_day = vec![0u64; scale.days as usize];
    for request in trace {
        let day = request.time.whole_days() as usize;
        if request.is_read() {
            reads_per_day[day] += 1;
        } else {
            writes_per_day[day] += 1;
        }
    }

    println!("# Figure 2: reads and writes per day, diurnal (Yahoo!-like) trace");
    println!("# paper: 2.5M users, 17M writes and 9.8M reads over 14 days (writes dominate)");
    print_row(["day", "writes", "reads"].map(String::from));
    for day in 0..scale.days as usize {
        print_row([
            (day + 1).to_string(),
            writes_per_day[day].to_string(),
            reads_per_day[day].to_string(),
        ]);
    }
    let total_w: u64 = writes_per_day.iter().sum();
    let total_r: u64 = reads_per_day.iter().sum();
    println!(
        "# totals: {total_w} writes, {total_r} reads (write fraction {:.2}; paper ≈ 0.63)",
        total_w as f64 / (total_w + total_r) as f64
    );
    Ok(())
}
