//! **Serving-front-end smoke test** — CI gate for the loopback ingress.
//!
//! ```text
//! cargo run --release -p dynasore-bench --bin serve_smoke \
//!     [-- --users N --seed N --requests N]
//! ```
//!
//! Spawns a [`LoopbackServer`] over a small Twitter-like graph on the paper
//! tree and drives the full envelope pipeline end to end:
//!
//! 1. `/healthz` reports live **and** ready immediately after spawn.
//! 2. A mix of writes, reads and feed reads round-trips through the
//!    auth-free default pipeline; every response must be `ok`.
//! 3. A budget-capped spammy user is throttled with `throttled` before the
//!    engine — the server's flight recorder must count the rejections.
//! 4. The `/metrics` scrape passes [`lint_prometheus`] (HELP/TYPE headers,
//!    valid names, parsable values) and the trace timeline passes
//!    [`validate_jsonl`].
//! 5. Graceful shutdown drains, flips `/healthz` off (a fully shut-down
//!    server is neither live nor ready — an orchestrator should replace
//!    it), and a post-shutdown request bounces with `unavailable` instead
//!    of hanging.
//!
//! Exits 0 on success, 1 with a diagnostic on the first violated check.

use dynasore_graph::{GraphPreset, SocialGraph};
use dynasore_serve::{LoopbackServer, RequestEnvelope, ServeConfig};
use dynasore_store::StoreConfig;
use dynasore_topology::Topology;
use dynasore_types::{lint_prometheus, validate_jsonl, StatusCode, UserId};

struct Options {
    users: usize,
    seed: u64,
    requests: u64,
}

impl Options {
    fn from_args() -> Options {
        let mut o = Options {
            users: 300,
            seed: 42,
            requests: 50,
        };
        let args: Vec<String> = std::env::args().collect();
        let mut i = 1;
        while i < args.len() {
            match args[i].as_str() {
                "--users" if i + 1 < args.len() => {
                    o.users = args[i + 1].parse().unwrap_or(o.users);
                    i += 1;
                }
                "--seed" if i + 1 < args.len() => {
                    o.seed = args[i + 1].parse().unwrap_or(o.seed);
                    i += 1;
                }
                "--requests" if i + 1 < args.len() => {
                    o.requests = args[i + 1].parse().unwrap_or(o.requests);
                    i += 1;
                }
                _ => {}
            }
            i += 1;
        }
        o
    }
}

fn fail(msg: &str) -> ! {
    eprintln!("serve_smoke: FAIL: {msg}");
    std::process::exit(1);
}

fn main() {
    let opts = Options::from_args();
    let spammer = UserId::new(0);
    let spam_limit = 3u64;

    let graph = SocialGraph::generate(GraphPreset::TwitterLike, opts.users, opts.seed)
        .unwrap_or_else(|e| fail(&format!("graph generation: {e}")));
    let topology = Topology::tree(2, 2, 3, 1).unwrap_or_else(|e| fail(&format!("topology: {e}")));
    let serve_config = ServeConfig {
        flow_limits: vec![(spammer, spam_limit)],
        ..ServeConfig::default()
    };
    let server = LoopbackServer::spawn(&graph, topology, StoreConfig::default(), serve_config)
        .unwrap_or_else(|e| fail(&format!("spawn: {e}")));

    // 1. Liveness and readiness flip on at spawn.
    let health = server.healthz();
    if !health.live || !health.ready {
        fail(&format!(
            "healthz after spawn: {health:?} (want live+ready)"
        ));
    }

    // 2. Writes, reads and feed reads all round-trip as `ok`.
    let mut served = 0u64;
    for i in 0..opts.requests {
        let user = UserId::new(1 + (i % (opts.users as u64 - 1)) as u32);
        let req = match i % 3 {
            0 => RequestEnvelope::write(user, format!("post {i}").into_bytes()),
            1 => RequestEnvelope::read_feed(user),
            _ => RequestEnvelope::read(user, vec![user]),
        };
        let resp = server.handle(req);
        if !resp.is_success() {
            fail(&format!(
                "request {i} for user {user:?} returned {} ({:?})",
                resp.status, resp.detail
            ));
        }
        served += 1;
    }

    // 3. The spammy user is throttled before the engine once the budget runs
    //    dry; other users keep being served.
    let mut throttled = 0u64;
    for i in 0..(spam_limit + 5) {
        let resp = server.handle(RequestEnvelope::write(
            spammer,
            format!("spam {i}").into_bytes(),
        ));
        match resp.status {
            StatusCode::Ok => served += 1,
            StatusCode::Throttled => throttled += 1,
            other => fail(&format!("spammer got unexpected status {other}")),
        }
    }
    if throttled != 5 {
        fail(&format!(
            "expected 5 throttled spam writes, got {throttled}"
        ));
    }
    let bystander = server.handle(RequestEnvelope::read_feed(UserId::new(1)));
    if !bystander.is_success() {
        fail(&format!(
            "bystander read failed after spam burst: {}",
            bystander.status
        ));
    }
    served += 1;

    // 4. The metrics scrape lints clean and agrees with the request ledger.
    let metrics = server.metrics();
    let samples = lint_prometheus(&metrics).unwrap_or_else(|e| fail(&format!("metrics lint: {e}")));
    let served_line = format!("dynasore_envelopes_served_total {}", served + throttled);
    let throttled_line = format!("dynasore_throttled_envelopes_total {throttled}");
    for needle in [served_line.as_str(), throttled_line.as_str()] {
        if !metrics.contains(needle) {
            fail(&format!("metrics missing expected sample `{needle}`"));
        }
    }
    let events =
        validate_jsonl(&server.trace_jsonl()).unwrap_or_else(|e| fail(&format!("trace: {e}")));

    // 5. Graceful shutdown drains, flips readiness, and bounces latecomers.
    server
        .shutdown()
        .unwrap_or_else(|e| fail(&format!("shutdown: {e}")));
    let health = server.healthz();
    if health.live || health.ready {
        fail(&format!(
            "healthz after shutdown: {health:?} (want neither live nor ready)"
        ));
    }
    let late = server.handle(RequestEnvelope::read_feed(UserId::new(1)));
    if late.status != StatusCode::Unavailable {
        fail(&format!(
            "post-shutdown request got {} (want unavailable)",
            late.status
        ));
    }

    println!(
        "serve_smoke: OK — {served} served, {throttled} throttled, \
         {samples} metric samples, {events} trace events"
    );
}
