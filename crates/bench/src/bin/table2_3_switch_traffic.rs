//! **Tables 2 and 3** — average per-switch traffic at the top, intermediate
//! and rack tiers for DynaSoRe (warm-started from hMETIS) and SPAR,
//! normalised to Random, at 30% (Table 2) or 150% (Table 3) extra memory.
//!
//! ```text
//! cargo run --release -p dynasore-bench --bin table2_3_switch_traffic -- --extra-memory 30
//! cargo run --release -p dynasore-bench --bin table2_3_switch_traffic -- --extra-memory 150
//! ```

use dynasore_baselines::{SparEngine, StaticPlacement};
use dynasore_bench::{
    dataset, dynasore_engine, fmt_norm, paper_topology, print_row, run_synthetic_after_warmup,
    ExperimentScale,
};
use dynasore_core::InitialPlacement;
use dynasore_graph::GraphPreset;
use dynasore_topology::Tier;
use dynasore_types::MemoryBudget;

fn main() -> Result<(), dynasore_types::Error> {
    let scale = ExperimentScale::from_args(ExperimentScale::default());
    let topology = paper_topology()?;
    let which_table = if scale.extra_memory <= 60 { 2 } else { 3 };
    println!(
        "# Table {which_table}: per-switch traffic (normalised to Random) with {}% extra memory",
        scale.extra_memory
    );
    print_row(["tier", "system", "Facebook", "Twitter", "LiveJournal"].map(String::from));

    // Collect normalised per-tier averages per graph for both systems.
    let presets = [
        GraphPreset::FacebookLike,
        GraphPreset::TwitterLike,
        GraphPreset::LiveJournalLike,
    ];
    let mut dynasore_rows = vec![Vec::new(); 3];
    let mut spar_rows = vec![Vec::new(); 3];

    for preset in presets {
        let graph = dataset(preset, &scale)?;
        let random = run_synthetic_after_warmup(
            StaticPlacement::random(&graph, &topology, scale.seed)?,
            &graph,
            &topology,
            scale.days,
            scale.seed,
        )?;
        let budget = MemoryBudget::with_extra_percent(graph.user_count(), scale.extra_memory);
        let dynasore = run_synthetic_after_warmup(
            dynasore_engine(
                &graph,
                &topology,
                scale.extra_memory,
                InitialPlacement::HierarchicalMetis { seed: scale.seed },
            )?,
            &graph,
            &topology,
            scale.days,
            scale.seed,
        )?;
        let spar = run_synthetic_after_warmup(
            SparEngine::new(&graph, &topology, budget, scale.seed)?,
            &graph,
            &topology,
            scale.days,
            scale.seed,
        )?;
        for (i, tier) in Tier::all().into_iter().enumerate() {
            dynasore_rows[i].push(fmt_norm(dynasore.normalized_tier_average(tier, &random)));
            spar_rows[i].push(fmt_norm(spar.normalized_tier_average(tier, &random)));
        }
    }

    for (i, tier) in ["Top switch", "Inter switch", "Rack switch"]
        .iter()
        .enumerate()
    {
        print_row(
            std::iter::once((*tier).to_string())
                .chain(std::iter::once("DynaSoRe".to_string()))
                .chain(dynasore_rows[i].iter().cloned()),
        );
        print_row(
            std::iter::once((*tier).to_string())
                .chain(std::iter::once("SPAR".to_string()))
                .chain(spar_rows[i].iter().cloned()),
        );
    }
    Ok(())
}
