//! **Recovery convergence** — how fast the system returns to steady state
//! after losing a whole rack, the headline scenario the cluster-dynamics
//! subsystem exists for. The paper's §3.3 argues cache servers are
//! disposable because the durable tier can regenerate any view; this bench
//! quantifies the price: the recovery traffic burst at the moment of the
//! failure, and the number of requests until per-read traffic re-converges
//! to its pre-failure level.
//!
//! ```text
//! cargo run --release -p dynasore-bench --bin recovery_convergence \
//!     [-- --users N --seed N --quick]
//! ```
//!
//! Method: drive a converged DynaSoRe engine directly (as
//! `hotpath_throughput` does), measure the average messages per read over a
//! healthy window, kill rack 0, then replay read windows until the per-read
//! message average plateaus (two consecutive windows within 5% of each
//! other). The shrunken cluster settles at a *new* steady state — reported
//! as a ratio over the healthy level, since 4% of the capacity is gone —
//! and the windows spent getting there are the convergence time. The same
//! is repeated after bringing the rack back. The replay is compressed time
//! (no maintenance ticks run between windows), so the trajectory isolates
//! the placement's reaction from statistics-window rotation.
//!
//! Convergence is additionally reported as **wall-clock estimates**: the
//! reads consumed until the plateau, divided by the paper workload's read
//! rate (4 reads per user per day), give the real time a production cluster
//! would spend re-converging; and the recovery burst's persistent-tier
//! units, pushed through the [`NetworkModel::datacenter`] core switch,
//! give the time the refill transfer itself occupies the fabric.
//!
//! Finally, the bench *measures* recovery bandwidth from real bytes: it
//! writes every user's view into a file-backed
//! [`LogStructuredStore`](dynasore_store::LogStructuredStore) (140-byte
//! tweet-sized events), syncs, then times a cold reopen — the replay that
//! rebuilds the durable tier's index from disk. `bytes replayed ÷
//! wall-clock` is printed next to the message-count estimate above.
//! `--data-dir PATH` chooses where the throwaway segment files live
//! (default: a per-process directory under the system temp dir); the
//! directory is removed before the bench exits.
//!
//! `--shards N` (N ≥ 2) additionally measures the sharded tier: the same
//! data volume split over N [`ShardedLogStore`] shards, replayed serially
//! (shard after shard — the single-threaded bound) and in parallel (the
//! tier's concurrent reopen, whose wall-clock is the largest shard's replay,
//! reported as `max_shard_bytes`), with per-shard byte counts alongside.
//!
//! `--trace-out PATH` / `--metrics-out PATH` attach a
//! [`StoreObs`](dynasore_store::StoreObs) to the measured stores and dump
//! the flight-recorder timeline (JSON Lines: group-commit fills, segment
//! rotations, replay completions stamped with monotonic nanoseconds) and
//! the metrics registry (Prometheus text format). Observation is passive:
//! the JSON report is unchanged by either flag.
//!
//! [`ShardedLogStore`]: dynasore_store::ShardedLogStore

use std::path::PathBuf;
use std::time::Instant;

use dynasore_core::{DynaSoReEngine, InitialPlacement};
use dynasore_graph::{GraphPreset, SocialGraph};
use dynasore_store::StoreObs;
use dynasore_topology::Topology;
use dynasore_types::{
    ClusterEvent, MemoryBudget, Message, NetworkModel, PlacementEngine, RackId, SimTime,
    TraceEventKind, UserId, DAY_SECS, PROTOCOL_MESSAGE_UNITS,
};

struct Options {
    users: usize,
    seed: u64,
    quick: bool,
    data_dir: Option<PathBuf>,
    shards: usize,
    trace_out: Option<PathBuf>,
    metrics_out: Option<PathBuf>,
}

impl Options {
    fn from_args() -> Options {
        let mut o = Options {
            users: 50_000,
            seed: 42,
            quick: false,
            data_dir: None,
            shards: 1,
            trace_out: None,
            metrics_out: None,
        };
        let args: Vec<String> = std::env::args().collect();
        let mut i = 1;
        while i < args.len() {
            match args[i].as_str() {
                "--users" if i + 1 < args.len() => {
                    o.users = args[i + 1].parse().unwrap_or(o.users);
                    i += 1;
                }
                "--seed" if i + 1 < args.len() => {
                    o.seed = args[i + 1].parse().unwrap_or(o.seed);
                    i += 1;
                }
                "--data-dir" if i + 1 < args.len() => {
                    o.data_dir = Some(PathBuf::from(&args[i + 1]));
                    i += 1;
                }
                "--shards" if i + 1 < args.len() => {
                    o.shards = args[i + 1].parse().unwrap_or(o.shards).max(1);
                    i += 1;
                }
                "--trace-out" if i + 1 < args.len() => {
                    o.trace_out = Some(PathBuf::from(&args[i + 1]));
                    i += 1;
                }
                "--metrics-out" if i + 1 < args.len() => {
                    o.metrics_out = Some(PathBuf::from(&args[i + 1]));
                    i += 1;
                }
                "--quick" => o.quick = true,
                _ => {}
            }
            i += 1;
        }
        if o.quick {
            o.users = o.users.min(2_000);
        }
        o
    }
}

/// Measured (not estimated) recovery I/O of the file-backed durable tier.
struct MeasuredRecovery {
    views: usize,
    events: u64,
    log_bytes: u64,
    segments: usize,
    replayed_bytes: u64,
    replay_secs: f64,
    bandwidth_bytes_per_sec: f64,
}

/// Writes every user's view into a file-backed log store under `dir`, syncs,
/// then times a cold reopen — the real recovery path: the index is rebuilt
/// by reading the segment bytes back off disk. The directory is removed
/// before returning. Because the bench deletes the directory when done, it
/// refuses to run in one that already has contents: only files this run
/// created are ever removed.
fn measure_file_backed_recovery(
    dir: &PathBuf,
    users: usize,
    obs: Option<&StoreObs>,
) -> MeasuredRecovery {
    // Event size shared with the simulator's durable tier (tweet-sized, as
    // the paper assumes), so the bench and `Simulation::with_durable_tier`
    // measure the same bytes-per-write calibration.
    use dynasore_store::{LogConfig, LogStructuredStore, SIM_EVENT_BYTES};

    const EVENTS_PER_USER: u64 = 2;

    if let Ok(mut entries) = std::fs::read_dir(dir) {
        if entries.next().is_some() {
            eprintln!(
                "error: --data-dir {} already exists and is not empty; the bench deletes \
                 its data directory when done, so pick a fresh (or empty) path",
                dir.display()
            );
            std::process::exit(2);
        }
    }

    let result = (|| -> dynasore_types::Result<MeasuredRecovery> {
        let store = LogStructuredStore::open(dir, LogConfig::default())?;
        if let Some(obs) = obs {
            store.set_observer(obs.clone());
        }
        for u in 0..users as u32 {
            for k in 0..EVENTS_PER_USER {
                store.append(UserId::new(u), vec![(u as u8) ^ (k as u8); SIM_EVENT_BYTES])?;
            }
        }
        store.sync()?;
        let log_bytes = store.bytes_on_disk();
        let segments = store.segment_count();
        drop(store);

        let start = Instant::now();
        let recovered = LogStructuredStore::open(dir, LogConfig::default())?;
        let replay_secs = start.elapsed().as_secs_f64();
        let stats = recovered.recovery_stats();
        let views = recovered.user_count();
        if let Some(obs) = obs {
            obs.trace(TraceEventKind::ReplayCompleted {
                bytes: stats.bytes_replayed,
                shards: 1,
            });
        }
        Ok(MeasuredRecovery {
            views,
            events: stats.records_replayed,
            log_bytes,
            segments,
            replayed_bytes: stats.bytes_replayed,
            replay_secs,
            bandwidth_bytes_per_sec: stats.bytes_replayed as f64 / replay_secs.max(1e-9),
        })
    })();
    let cleanup = std::fs::remove_dir_all(dir);
    let measured = result.expect("file-backed recovery measurement");
    cleanup.expect("remove file-backed store directory");
    measured
}

/// Measured recovery of the *sharded* durable tier: the same data volume as
/// the single-log measurement, split over N shards, replayed both serially
/// (one shard after another) and in parallel (the tier's concurrent reopen,
/// whose critical path is the largest shard).
struct MeasuredShardedRecovery {
    shards: usize,
    log_bytes: u64,
    replayed_bytes: u64,
    max_shard_bytes: u64,
    per_shard_bytes: Vec<u64>,
    serial_replay_secs: f64,
    parallel_replay_secs: f64,
}

/// Writes the same per-user events as [`measure_file_backed_recovery`] into
/// a sharded store under `dir`, syncs, then times recovery twice: a serial
/// shard-by-shard `read_back`, and the tier's own parallel reopen. The
/// directory is removed before returning.
fn measure_sharded_recovery(
    dir: &PathBuf,
    users: usize,
    shards: usize,
    obs: Option<&StoreObs>,
) -> MeasuredShardedRecovery {
    use dynasore_store::{LogStructuredStore, ShardedConfig, ShardedLogStore, SIM_EVENT_BYTES};

    const EVENTS_PER_USER: u64 = 2;

    if let Ok(mut entries) = std::fs::read_dir(dir) {
        if entries.next().is_some() {
            eprintln!(
                "error: sharded data dir {} already exists and is not empty",
                dir.display()
            );
            std::process::exit(2);
        }
    }

    let result = (|| -> dynasore_types::Result<MeasuredShardedRecovery> {
        let config = ShardedConfig {
            shards,
            flush_interval: None,
            ..ShardedConfig::default()
        };
        let store = match obs {
            Some(obs) => ShardedLogStore::open_observed(dir, config, obs.clone())?,
            None => ShardedLogStore::open(dir, config)?,
        };
        for u in 0..users as u32 {
            for k in 0..EVENTS_PER_USER {
                store
                    .append_version(UserId::new(u), vec![(u as u8) ^ (k as u8); SIM_EVENT_BYTES])?;
            }
        }
        store.sync()?;
        let log_bytes = store.bytes_on_disk();
        drop(store);

        // Serial: replay one shard after another — the lower bound a
        // single-threaded recovery pays regardless of layout.
        let serial_start = Instant::now();
        for i in 0..shards {
            LogStructuredStore::read_back(dir.join(format!("shard-{i:04}")))?;
        }
        let serial_replay_secs = serial_start.elapsed().as_secs_f64();

        // Parallel: the tier's own reopen, one replay thread per shard; the
        // wall-clock tracks the largest shard, not the sum.
        let parallel_start = Instant::now();
        let recovered = ShardedLogStore::open(dir, config)?;
        let parallel_replay_secs = parallel_start.elapsed().as_secs_f64();
        let stats = recovered.recovery_stats();
        if let Some(obs) = obs {
            obs.trace(TraceEventKind::ReplayCompleted {
                bytes: stats.total.bytes_replayed,
                shards: shards as u32,
            });
        }
        Ok(MeasuredShardedRecovery {
            shards,
            log_bytes,
            replayed_bytes: stats.total.bytes_replayed,
            max_shard_bytes: stats.max_shard_bytes_replayed(),
            per_shard_bytes: stats.per_shard.iter().map(|s| s.bytes_replayed).collect(),
            serial_replay_secs,
            parallel_replay_secs,
        })
    })();
    let cleanup = std::fs::remove_dir_all(dir);
    let measured = result.expect("sharded recovery measurement");
    cleanup.expect("remove sharded store directory");
    measured
}

/// Drives one window of reads and returns the average application messages
/// per read (the per-request network cost the placement is minimising).
fn read_window(
    engine: &mut DynaSoReEngine,
    graph: &SocialGraph,
    out: &mut Vec<Message>,
    start: u64,
    len: u64,
    users: u64,
) -> f64 {
    let mut messages = 0u64;
    for k in start..start + len {
        let user = UserId::new(((k.wrapping_mul(7_919)) % users) as u32);
        out.clear();
        engine.handle_read(user, graph.followees(user), SimTime::from_secs(2), out);
        messages += out.len() as u64;
    }
    messages as f64 / len as f64
}

/// Replays read windows until two consecutive windows agree within 5%
/// (steady state), or `max_windows` is hit. Returns `(windows, peak, final
/// window average)`.
fn run_until_plateau(
    engine: &mut DynaSoReEngine,
    graph: &SocialGraph,
    out: &mut Vec<Message>,
    window: u64,
    max_windows: u64,
    window_offset: u64,
    users: u64,
) -> (u64, f64, f64) {
    let mut peak = 0f64;
    let mut prev: Option<f64> = None;
    let mut last = 0f64;
    for w in 0..max_windows {
        let avg = read_window(
            engine,
            graph,
            out,
            (window_offset + w) * window,
            window,
            users,
        );
        peak = peak.max(avg);
        last = avg;
        if let Some(prev) = prev {
            if (avg - prev).abs() <= 0.05 * prev {
                return (w + 1, peak, avg);
            }
        }
        prev = Some(avg);
    }
    (max_windows, peak, last)
}

fn main() {
    let opts = Options::from_args();
    let graph = SocialGraph::generate(GraphPreset::FacebookLike, opts.users, opts.seed)
        .expect("graph generation");
    let topology = Topology::paper_tree().expect("paper tree");
    let mut engine = DynaSoReEngine::builder()
        .topology(topology)
        .budget(MemoryBudget::with_extra_percent(opts.users, 30))
        .initial_placement(InitialPlacement::Random { seed: opts.seed })
        .build(&graph)
        .expect("engine build");

    let users = opts.users as u64;
    let window = if opts.quick { 5_000 } else { 20_000 };
    let max_windows = 40u64;
    let mut out: Vec<Message> = Vec::new();

    // Converge the placement, then take the healthy baseline.
    for k in 0..2 * users {
        let user = UserId::new(((k.wrapping_mul(7_919)) % users) as u32);
        out.clear();
        engine.handle_read(user, graph.followees(user), SimTime::from_secs(1), &mut out);
        out.clear();
        engine.handle_write(user, SimTime::from_secs(1), &mut out);
    }
    let healthy = read_window(&mut engine, &graph, &mut out, 0, window, users);
    let healthy_replicas: usize = (0..users)
        .map(|u| engine.replica_count(UserId::new(u as u32)))
        .sum();

    // Kill rack 0 and measure the recovery burst.
    let event_start = Instant::now();
    out.clear();
    engine.on_cluster_change(
        ClusterEvent::RackDown {
            rack: RackId::new(0),
        },
        SimTime::from_secs(2),
        &mut out,
    );
    let failover_secs = event_start.elapsed().as_secs_f64();
    let recovery_messages = out.iter().filter(|m| m.involves_persistent()).count();
    let recovered_views = engine.recovered_views();

    // Replay read windows until per-read traffic plateaus: the placement
    // re-replicates towards the readers the dead rack used to serve, and
    // settles at the degraded cluster's own steady state.
    let (windows_to_converge, degraded_peak, degraded_steady) =
        run_until_plateau(&mut engine, &graph, &mut out, window, max_windows, 1, users);

    // Bring the rack back and measure re-absorption of the capacity.
    out.clear();
    engine.on_cluster_change(
        ClusterEvent::RackUp {
            rack: RackId::new(0),
        },
        SimTime::from_secs(3),
        &mut out,
    );
    let (windows_to_reabsorb, _, restored_steady) = run_until_plateau(
        &mut engine,
        &graph,
        &mut out,
        window,
        max_windows,
        max_windows + 1,
        users,
    );

    let unreachable = engine.unreachable_reads();

    // Measured recovery bandwidth from real bytes: persist every view in a
    // file-backed log store and time the cold reopen that replays it.
    let data_dir = opts.data_dir.clone().unwrap_or_else(|| {
        std::env::temp_dir().join(format!("dynasore-recovery-{}", std::process::id()))
    });
    let obs = (opts.trace_out.is_some() || opts.metrics_out.is_some()).then(StoreObs::default);
    let measured = measure_file_backed_recovery(&data_dir, opts.users, obs.as_ref());

    // With `--shards N`, repeat the measurement over the sharded tier and
    // report parallel (max-shard) replay next to the serial bound.
    let measured_sharded = (opts.shards > 1).then(|| {
        let mut sharded_dir = data_dir.clone().into_os_string();
        sharded_dir.push("-sharded");
        measure_sharded_recovery(
            &PathBuf::from(sharded_dir),
            opts.users,
            opts.shards,
            obs.as_ref(),
        )
    });

    // Wall-clock estimates: the paper workload reads at 4 reads per user per
    // day, so a window of N reads spans N / (users × 4 / 86400) seconds of
    // real time; the recovery burst itself occupies the datacenter model's
    // core switch for its protocol units divided by the top service rate.
    let reads_per_sec = opts.users as f64 * 4.0 / DAY_SECS as f64;
    let converge_wallclock_secs = (windows_to_converge * window) as f64 / reads_per_sec;
    let reabsorb_wallclock_secs = (windows_to_reabsorb * window) as f64 / reads_per_sec;
    let fabric = NetworkModel::datacenter();
    let recovery_transfer_secs = recovery_messages as f64 * PROTOCOL_MESSAGE_UNITS as f64
        / fabric.top_service.as_units_per_sec() as f64;

    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"recovery_convergence\",\n",
            "  \"users\": {users},\n",
            "  \"seed\": {seed},\n",
            "  \"quick\": {quick},\n",
            "  \"window_reads\": {window},\n",
            "  \"assumed_read_rate_per_sec\": {read_rate:.3},\n",
            "  \"healthy_app_messages_per_read\": {healthy:.2},\n",
            "  \"healthy_total_replicas\": {healthy_replicas},\n",
            "  \"rack_down\": {{\n",
            "    \"handling_secs\": {failover:.6},\n",
            "    \"recovery_messages\": {recovery},\n",
            "    \"recovered_views\": {recovered},\n",
            "    \"peak_messages_per_read\": {peak:.2},\n",
            "    \"steady_messages_per_read\": {steady:.2},\n",
            "    \"steady_over_healthy\": {steady_ratio:.3},\n",
            "    \"windows_to_converge\": {converge},\n",
            "    \"reads_to_converge\": {converge_reads},\n",
            "    \"estimated_wallclock_secs\": {converge_wallclock:.1},\n",
            "    \"recovery_transfer_secs\": {recovery_transfer:.6}\n",
            "  }},\n",
            "  \"rack_up\": {{\n",
            "    \"windows_to_reabsorb\": {reabsorb},\n",
            "    \"estimated_wallclock_secs\": {reabsorb_wallclock:.1},\n",
            "    \"steady_messages_per_read\": {restored:.2}\n",
            "  }},\n",
            "  \"persistent_tier\": {{\n",
            "    \"views_persisted\": {pt_views},\n",
            "    \"events_replayed\": {pt_events},\n",
            "    \"log_bytes\": {pt_log_bytes},\n",
            "    \"segments\": {pt_segments},\n",
            "    \"replayed_bytes\": {pt_replayed},\n",
            "    \"replay_secs\": {pt_secs:.6},\n",
            "    \"measured_recovery_bandwidth_bytes_per_sec\": {pt_bw:.0}\n",
            "  }},\n",
            "{sharded_section}",
            "  \"unreachable_reads\": {unreachable}\n",
            "}}\n"
        ),
        users = opts.users,
        seed = opts.seed,
        quick = opts.quick,
        window = window,
        read_rate = reads_per_sec,
        healthy = healthy,
        healthy_replicas = healthy_replicas,
        failover = failover_secs,
        recovery = recovery_messages,
        recovered = recovered_views,
        peak = degraded_peak,
        steady = degraded_steady,
        steady_ratio = degraded_steady / healthy,
        converge = windows_to_converge,
        converge_reads = windows_to_converge * window,
        converge_wallclock = converge_wallclock_secs,
        recovery_transfer = recovery_transfer_secs,
        reabsorb = windows_to_reabsorb,
        reabsorb_wallclock = reabsorb_wallclock_secs,
        restored = restored_steady,
        pt_views = measured.views,
        pt_events = measured.events,
        pt_log_bytes = measured.log_bytes,
        pt_segments = measured.segments,
        pt_replayed = measured.replayed_bytes,
        pt_secs = measured.replay_secs,
        pt_bw = measured.bandwidth_bytes_per_sec,
        sharded_section = measured_sharded
            .as_ref()
            .map(|m| {
                let per_shard = m
                    .per_shard_bytes
                    .iter()
                    .map(|b| b.to_string())
                    .collect::<Vec<_>>()
                    .join(", ");
                format!(
                    concat!(
                        "  \"persistent_tier_sharded\": {{\n",
                        "    \"shards\": {shards},\n",
                        "    \"log_bytes\": {log_bytes},\n",
                        "    \"replayed_bytes\": {replayed},\n",
                        "    \"max_shard_bytes\": {max_shard},\n",
                        "    \"per_shard_replayed_bytes\": [{per_shard}],\n",
                        "    \"serial_replay_secs\": {serial:.6},\n",
                        "    \"parallel_replay_secs\": {parallel:.6},\n",
                        "    \"serial_bandwidth_bytes_per_sec\": {serial_bw:.0},\n",
                        "    \"parallel_bandwidth_bytes_per_sec\": {parallel_bw:.0}\n",
                        "  }},\n",
                    ),
                    shards = m.shards,
                    log_bytes = m.log_bytes,
                    replayed = m.replayed_bytes,
                    max_shard = m.max_shard_bytes,
                    per_shard = per_shard,
                    serial = m.serial_replay_secs,
                    parallel = m.parallel_replay_secs,
                    serial_bw = m.replayed_bytes as f64 / m.serial_replay_secs.max(1e-9),
                    parallel_bw = m.replayed_bytes as f64 / m.parallel_replay_secs.max(1e-9),
                )
            })
            .unwrap_or_default(),
        unreachable = unreachable,
    );
    eprintln!(
        "# recovery_convergence: rack loss recovered {recovered_views} views with \
         {recovery_messages} persistent-tier messages in {failover_secs:.3}s; \
         converged after {windows_to_converge} windows \
         (~{converge_wallclock_secs:.0}s wall-clock at the paper's read rate, \
         refill transfer {recovery_transfer_secs:.3}s on the core switch)"
    );
    eprintln!(
        "# recovery_convergence: file-backed tier replayed {} views / {} bytes in {:.3}s \
         = {:.1} MB/s measured recovery bandwidth",
        measured.views,
        measured.replayed_bytes,
        measured.replay_secs,
        measured.bandwidth_bytes_per_sec / 1e6,
    );
    if let Some(m) = &measured_sharded {
        eprintln!(
            "# recovery_convergence: {} shards replayed {} bytes — serial {:.3}s, \
             parallel {:.3}s (critical path {} bytes = largest shard)",
            m.shards,
            m.replayed_bytes,
            m.serial_replay_secs,
            m.parallel_replay_secs,
            m.max_shard_bytes,
        );
    }
    if let Some(obs) = &obs {
        if let Some(path) = &opts.trace_out {
            std::fs::write(path, obs.to_jsonl()).expect("write trace timeline");
            eprintln!(
                "# recovery_convergence: wrote {} trace events to {}",
                obs.event_count(),
                path.display()
            );
        }
        if let Some(path) = &opts.metrics_out {
            std::fs::write(path, obs.render_prometheus()).expect("write metrics");
            eprintln!(
                "# recovery_convergence: wrote metrics to {}",
                path.display()
            );
        }
    }
    print!("{json}");
}
