//! **Recovery convergence** — how fast the system returns to steady state
//! after losing a whole rack, the headline scenario the cluster-dynamics
//! subsystem exists for. The paper's §3.3 argues cache servers are
//! disposable because the durable tier can regenerate any view; this bench
//! quantifies the price: the recovery traffic burst at the moment of the
//! failure, and the number of requests until per-read traffic re-converges
//! to its pre-failure level.
//!
//! ```text
//! cargo run --release -p dynasore-bench --bin recovery_convergence \
//!     [-- --users N --seed N --quick]
//! ```
//!
//! Method: drive a converged DynaSoRe engine directly (as
//! `hotpath_throughput` does), measure the average messages per read over a
//! healthy window, kill rack 0, then replay read windows until the per-read
//! message average plateaus (two consecutive windows within 5% of each
//! other). The shrunken cluster settles at a *new* steady state — reported
//! as a ratio over the healthy level, since 4% of the capacity is gone —
//! and the windows spent getting there are the convergence time. The same
//! is repeated after bringing the rack back. The replay is compressed time
//! (no maintenance ticks run between windows), so the trajectory isolates
//! the placement's reaction from statistics-window rotation.
//!
//! Convergence is additionally reported as **wall-clock estimates**: the
//! reads consumed until the plateau, divided by the paper workload's read
//! rate (4 reads per user per day), give the real time a production cluster
//! would spend re-converging; and the recovery burst's persistent-tier
//! units, pushed through the [`NetworkModel::datacenter`] core switch,
//! give the time the refill transfer itself occupies the fabric.

use std::time::Instant;

use dynasore_core::{DynaSoReEngine, InitialPlacement};
use dynasore_graph::{GraphPreset, SocialGraph};
use dynasore_topology::Topology;
use dynasore_types::{
    ClusterEvent, MemoryBudget, Message, NetworkModel, PlacementEngine, RackId, SimTime, UserId,
    DAY_SECS, PROTOCOL_MESSAGE_UNITS,
};

struct Options {
    users: usize,
    seed: u64,
    quick: bool,
}

impl Options {
    fn from_args() -> Options {
        let mut o = Options {
            users: 50_000,
            seed: 42,
            quick: false,
        };
        let args: Vec<String> = std::env::args().collect();
        let mut i = 1;
        while i < args.len() {
            match args[i].as_str() {
                "--users" if i + 1 < args.len() => {
                    o.users = args[i + 1].parse().unwrap_or(o.users);
                    i += 1;
                }
                "--seed" if i + 1 < args.len() => {
                    o.seed = args[i + 1].parse().unwrap_or(o.seed);
                    i += 1;
                }
                "--quick" => o.quick = true,
                _ => {}
            }
            i += 1;
        }
        if o.quick {
            o.users = o.users.min(2_000);
        }
        o
    }
}

/// Drives one window of reads and returns the average application messages
/// per read (the per-request network cost the placement is minimising).
fn read_window(
    engine: &mut DynaSoReEngine,
    graph: &SocialGraph,
    out: &mut Vec<Message>,
    start: u64,
    len: u64,
    users: u64,
) -> f64 {
    let mut messages = 0u64;
    for k in start..start + len {
        let user = UserId::new(((k.wrapping_mul(7_919)) % users) as u32);
        out.clear();
        engine.handle_read(user, graph.followees(user), SimTime::from_secs(2), out);
        messages += out.len() as u64;
    }
    messages as f64 / len as f64
}

/// Replays read windows until two consecutive windows agree within 5%
/// (steady state), or `max_windows` is hit. Returns `(windows, peak, final
/// window average)`.
fn run_until_plateau(
    engine: &mut DynaSoReEngine,
    graph: &SocialGraph,
    out: &mut Vec<Message>,
    window: u64,
    max_windows: u64,
    window_offset: u64,
    users: u64,
) -> (u64, f64, f64) {
    let mut peak = 0f64;
    let mut prev: Option<f64> = None;
    let mut last = 0f64;
    for w in 0..max_windows {
        let avg = read_window(
            engine,
            graph,
            out,
            (window_offset + w) * window,
            window,
            users,
        );
        peak = peak.max(avg);
        last = avg;
        if let Some(prev) = prev {
            if (avg - prev).abs() <= 0.05 * prev {
                return (w + 1, peak, avg);
            }
        }
        prev = Some(avg);
    }
    (max_windows, peak, last)
}

fn main() {
    let opts = Options::from_args();
    let graph = SocialGraph::generate(GraphPreset::FacebookLike, opts.users, opts.seed)
        .expect("graph generation");
    let topology = Topology::paper_tree().expect("paper tree");
    let mut engine = DynaSoReEngine::builder()
        .topology(topology)
        .budget(MemoryBudget::with_extra_percent(opts.users, 30))
        .initial_placement(InitialPlacement::Random { seed: opts.seed })
        .build(&graph)
        .expect("engine build");

    let users = opts.users as u64;
    let window = if opts.quick { 5_000 } else { 20_000 };
    let max_windows = 40u64;
    let mut out: Vec<Message> = Vec::new();

    // Converge the placement, then take the healthy baseline.
    for k in 0..2 * users {
        let user = UserId::new(((k.wrapping_mul(7_919)) % users) as u32);
        out.clear();
        engine.handle_read(user, graph.followees(user), SimTime::from_secs(1), &mut out);
        out.clear();
        engine.handle_write(user, SimTime::from_secs(1), &mut out);
    }
    let healthy = read_window(&mut engine, &graph, &mut out, 0, window, users);
    let healthy_replicas: usize = (0..users)
        .map(|u| engine.replica_count(UserId::new(u as u32)))
        .sum();

    // Kill rack 0 and measure the recovery burst.
    let event_start = Instant::now();
    out.clear();
    engine.on_cluster_change(
        ClusterEvent::RackDown {
            rack: RackId::new(0),
        },
        SimTime::from_secs(2),
        &mut out,
    );
    let failover_secs = event_start.elapsed().as_secs_f64();
    let recovery_messages = out.iter().filter(|m| m.involves_persistent()).count();
    let recovered_views = engine.recovered_views();

    // Replay read windows until per-read traffic plateaus: the placement
    // re-replicates towards the readers the dead rack used to serve, and
    // settles at the degraded cluster's own steady state.
    let (windows_to_converge, degraded_peak, degraded_steady) =
        run_until_plateau(&mut engine, &graph, &mut out, window, max_windows, 1, users);

    // Bring the rack back and measure re-absorption of the capacity.
    out.clear();
    engine.on_cluster_change(
        ClusterEvent::RackUp {
            rack: RackId::new(0),
        },
        SimTime::from_secs(3),
        &mut out,
    );
    let (windows_to_reabsorb, _, restored_steady) = run_until_plateau(
        &mut engine,
        &graph,
        &mut out,
        window,
        max_windows,
        max_windows + 1,
        users,
    );

    let unreachable = engine.unreachable_reads();

    // Wall-clock estimates: the paper workload reads at 4 reads per user per
    // day, so a window of N reads spans N / (users × 4 / 86400) seconds of
    // real time; the recovery burst itself occupies the datacenter model's
    // core switch for its protocol units divided by the top service rate.
    let reads_per_sec = opts.users as f64 * 4.0 / DAY_SECS as f64;
    let converge_wallclock_secs = (windows_to_converge * window) as f64 / reads_per_sec;
    let reabsorb_wallclock_secs = (windows_to_reabsorb * window) as f64 / reads_per_sec;
    let fabric = NetworkModel::datacenter();
    let recovery_transfer_secs = recovery_messages as f64 * PROTOCOL_MESSAGE_UNITS as f64
        / fabric.top_service.as_units_per_sec() as f64;

    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"recovery_convergence\",\n",
            "  \"users\": {users},\n",
            "  \"seed\": {seed},\n",
            "  \"quick\": {quick},\n",
            "  \"window_reads\": {window},\n",
            "  \"assumed_read_rate_per_sec\": {read_rate:.3},\n",
            "  \"healthy_app_messages_per_read\": {healthy:.2},\n",
            "  \"healthy_total_replicas\": {healthy_replicas},\n",
            "  \"rack_down\": {{\n",
            "    \"handling_secs\": {failover:.6},\n",
            "    \"recovery_messages\": {recovery},\n",
            "    \"recovered_views\": {recovered},\n",
            "    \"peak_messages_per_read\": {peak:.2},\n",
            "    \"steady_messages_per_read\": {steady:.2},\n",
            "    \"steady_over_healthy\": {steady_ratio:.3},\n",
            "    \"windows_to_converge\": {converge},\n",
            "    \"reads_to_converge\": {converge_reads},\n",
            "    \"estimated_wallclock_secs\": {converge_wallclock:.1},\n",
            "    \"recovery_transfer_secs\": {recovery_transfer:.6}\n",
            "  }},\n",
            "  \"rack_up\": {{\n",
            "    \"windows_to_reabsorb\": {reabsorb},\n",
            "    \"estimated_wallclock_secs\": {reabsorb_wallclock:.1},\n",
            "    \"steady_messages_per_read\": {restored:.2}\n",
            "  }},\n",
            "  \"unreachable_reads\": {unreachable}\n",
            "}}\n"
        ),
        users = opts.users,
        seed = opts.seed,
        quick = opts.quick,
        window = window,
        read_rate = reads_per_sec,
        healthy = healthy,
        healthy_replicas = healthy_replicas,
        failover = failover_secs,
        recovery = recovery_messages,
        recovered = recovered_views,
        peak = degraded_peak,
        steady = degraded_steady,
        steady_ratio = degraded_steady / healthy,
        converge = windows_to_converge,
        converge_reads = windows_to_converge * window,
        converge_wallclock = converge_wallclock_secs,
        recovery_transfer = recovery_transfer_secs,
        reabsorb = windows_to_reabsorb,
        reabsorb_wallclock = reabsorb_wallclock_secs,
        restored = restored_steady,
        unreachable = unreachable,
    );
    eprintln!(
        "# recovery_convergence: rack loss recovered {recovered_views} views with \
         {recovery_messages} persistent-tier messages in {failover_secs:.3}s; \
         converged after {windows_to_converge} windows \
         (~{converge_wallclock_secs:.0}s wall-clock at the paper's read rate, \
         refill transfer {recovery_transfer_secs:.3}s on the core switch)"
    );
    print!("{json}");
}
