//! **Figure 5** — flash event: a user gains 100 followers at day 2 (removed
//! at day 7); DynaSoRe should replicate her view while it is hot and evict
//! the replicas within roughly a day of the spike ending. The paper repeats
//! the experiment 100 times on the Facebook graph with 30% extra memory and
//! plots the average number of replicas and the reads handled per replica.
//!
//! ```text
//! cargo run --release -p dynasore-bench --bin fig5_flash_event [-- --users N --seed N]
//! ```
//!
//! The number of repetitions defaults to 10 (the paper uses 100); pass
//! `--days` to change the trace length (default 10, as in the paper).

use dynasore_bench::{dataset, dynasore_engine, paper_topology, print_row, ExperimentScale};
use dynasore_core::InitialPlacement;
use dynasore_graph::GraphPreset;
use dynasore_sim::{PlacementEngine, Simulation};
use dynasore_types::{SimTime, UserId};
use dynasore_workload::{FlashEventPlan, SyntheticTraceGenerator};

const REPETITIONS: usize = 10;
const PROBE_SECS: u64 = 6 * 3_600;

fn main() -> Result<(), dynasore_types::Error> {
    let scale = ExperimentScale::from_args(ExperimentScale {
        users: 6_000,
        days: 10,
        extra_memory: 30,
        ..ExperimentScale::default()
    });
    let topology = paper_topology()?;
    let graph = dataset(GraphPreset::FacebookLike, &scale)?;

    let probes_per_run = (scale.days * 86_400 / PROBE_SECS) as usize + 1;
    let mut replica_sums = vec![0f64; probes_per_run];
    let mut reads_per_replica_sums = vec![0f64; probes_per_run];
    let mut counts = vec![0usize; probes_per_run];

    for rep in 0..REPETITIONS {
        let seed = scale.seed + rep as u64;
        // Pick a random, not-too-popular target user, as the paper does.
        let target = UserId::new(((seed * 7_919) % scale.users as u64) as u32);
        let plan = FlashEventPlan::paper_defaults(&graph, target, seed)?;
        let engine = dynasore_engine(
            &graph,
            &topology,
            scale.extra_memory,
            InitialPlacement::HierarchicalMetis { seed: scale.seed },
        )?;
        let trace = SyntheticTraceGenerator::paper_defaults(&graph, scale.days, seed)?;
        let mut sim =
            Simulation::new(topology.clone(), engine, &graph).with_mutations(plan.mutations());

        let mut last_reads = 0u64;
        let mut probe_idx = 0usize;
        sim.run_with_probe(trace, PROBE_SECS, |_time, engine, _graph| {
            if probe_idx >= probes_per_run {
                return;
            }
            let replicas = engine.replica_count(target).max(1);
            let reads_now = engine.recorded_reads(target);
            // Reads observed since the previous probe, per replica.
            let delta = reads_now.saturating_sub(last_reads);
            last_reads = reads_now;
            replica_sums[probe_idx] += replicas as f64;
            reads_per_replica_sums[probe_idx] += delta as f64 / replicas as f64;
            counts[probe_idx] += 1;
            probe_idx += 1;
        })?;
    }

    println!(
        "# Figure 5: flash event (+100 followers at day 2, removed at day 7), Facebook, {}% extra memory, {} repetitions",
        scale.extra_memory, REPETITIONS
    );
    print_row(["day", "avg_replicas", "avg_reads_per_replica_per_probe"].map(String::from));
    for i in 0..probes_per_run {
        if counts[i] == 0 {
            continue;
        }
        let day = (i as u64 * PROBE_SECS) as f64 / 86_400.0;
        print_row([
            format!("{day:.2}"),
            format!("{:.2}", replica_sums[i] / counts[i] as f64),
            format!("{:.2}", reads_per_replica_sums[i] / counts[i] as f64),
        ]);
    }
    println!("# expected shape: ~1 replica before day 2, several during the spike,");
    println!(
        "# and back to ~1 within a day of the spike ending at day {}.",
        7.min(scale.days)
    );
    let _ = SimTime::ZERO; // keep the import used even if probes are skipped
    Ok(())
}
