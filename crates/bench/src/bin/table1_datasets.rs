//! **Table 1** — number of users and links in each dataset.
//!
//! The paper's datasets are proprietary crawls; this binary reports both the
//! paper's published sizes and the properties of the synthetic stand-ins
//! generated at the requested scale, so the substitution is visible in every
//! experiment log.
//!
//! ```text
//! cargo run --release -p dynasore-bench --bin table1_datasets [-- --users N]
//! ```

use dynasore_bench::{print_row, ExperimentScale};
use dynasore_graph::{metrics, GraphPreset, SocialGraph};

fn main() -> Result<(), dynasore_types::Error> {
    let scale = ExperimentScale::from_args(ExperimentScale::default());
    println!("# Table 1: number of users and links in each dataset");
    println!(
        "# (paper values, followed by the synthetic stand-in generated at --users {})",
        scale.users
    );
    print_row(
        [
            "dataset",
            "paper users",
            "paper links",
            "generated users",
            "generated links",
            "avg degree",
            "max in-degree",
            "reciprocity",
        ]
        .map(String::from),
    );
    for preset in GraphPreset::all() {
        let graph = SocialGraph::generate(preset, scale.users, scale.seed)?;
        let stats = metrics::degree_stats(&graph);
        print_row([
            preset.name().to_string(),
            format!("{:.1}M", preset.paper_user_count() as f64 / 1e6),
            format!("{:.0}M", preset.paper_link_count() as f64 / 1e6),
            stats.user_count.to_string(),
            stats.edge_count.to_string(),
            format!("{:.1}", stats.mean_out_degree),
            stats.max_in_degree.to_string(),
            format!("{:.2}", metrics::reciprocity(&graph)),
        ]);
    }
    Ok(())
}
