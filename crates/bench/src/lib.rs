//! Shared harness for the experiment binaries that regenerate every table
//! and figure of the DynaSoRe paper.
//!
//! Each binary in `src/bin/` reproduces one table or figure (see DESIGN.md
//! for the full index and EXPERIMENTS.md for recorded results). All binaries
//! accept `--users N`, `--days N` and `--seed N` overrides so the default
//! quick runs can be scaled up towards the paper's dimensions.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use dynasore_core::{DynaSoReEngine, InitialPlacement};
use dynasore_graph::{GraphPreset, SocialGraph};
use dynasore_sim::{PlacementEngine, SimReport, Simulation};
use dynasore_topology::Topology;
use dynasore_types::{MemoryBudget, Result};
use dynasore_workload::SyntheticTraceGenerator;

/// Command-line options shared by every experiment binary.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExperimentScale {
    /// Number of users in the synthetic social graph.
    pub users: usize,
    /// Number of measured days of traffic.
    pub days: u64,
    /// Seed for graphs, traces and placement.
    pub seed: u64,
    /// Extra-memory percentage, where a single value is needed.
    pub extra_memory: u32,
    /// Use the flat topology instead of the tree.
    pub flat: bool,
}

impl Default for ExperimentScale {
    fn default() -> Self {
        ExperimentScale {
            users: 8_000,
            days: 1,
            seed: 42,
            extra_memory: 30,
            flat: false,
        }
    }
}

impl ExperimentScale {
    /// Parses `--users N`, `--days N`, `--seed N`, `--extra-memory N` and
    /// `--topology flat|tree` from the process arguments, starting from the
    /// given defaults.
    pub fn from_args(mut defaults: ExperimentScale) -> ExperimentScale {
        let args: Vec<String> = std::env::args().collect();
        let mut i = 1;
        while i < args.len() {
            match args[i].as_str() {
                "--users" if i + 1 < args.len() => {
                    defaults.users = args[i + 1].parse().unwrap_or(defaults.users);
                    i += 1;
                }
                "--days" if i + 1 < args.len() => {
                    defaults.days = args[i + 1].parse().unwrap_or(defaults.days);
                    i += 1;
                }
                "--seed" if i + 1 < args.len() => {
                    defaults.seed = args[i + 1].parse().unwrap_or(defaults.seed);
                    i += 1;
                }
                "--extra-memory" if i + 1 < args.len() => {
                    defaults.extra_memory = args[i + 1].parse().unwrap_or(defaults.extra_memory);
                    i += 1;
                }
                "--topology" if i + 1 < args.len() => {
                    defaults.flat = args[i + 1] == "flat";
                    i += 1;
                }
                _ => {}
            }
            i += 1;
        }
        defaults
    }
}

/// The evaluation cluster of §4.3: 5 intermediate switches × 5 racks × 10
/// machines (1 broker + 9 servers per rack).
pub fn paper_topology() -> Result<Topology> {
    Topology::paper_tree()
}

/// The flat cluster of §4.5: 250 machines behind one switch.
pub fn paper_flat_topology() -> Result<Topology> {
    Topology::paper_flat()
}

/// The topology selected by an [`ExperimentScale`].
pub fn topology_for(scale: &ExperimentScale) -> Result<Topology> {
    if scale.flat {
        paper_flat_topology()
    } else {
        paper_topology()
    }
}

/// Runs an engine through one warm-up day of synthetic traffic (not
/// measured — the paper reports traffic after convergence, §4.4) followed by
/// `days` measured days, and returns the measured report.
pub fn run_synthetic_after_warmup<E: PlacementEngine>(
    engine: E,
    graph: &SocialGraph,
    topology: &Topology,
    days: u64,
    seed: u64,
) -> Result<SimReport> {
    let mut sim = Simulation::new(topology.clone(), engine, graph);
    let warmup = SyntheticTraceGenerator::paper_defaults(graph, 1, seed)?;
    sim.run(warmup)?;
    let trace = SyntheticTraceGenerator::paper_defaults(graph, days, seed.wrapping_add(1))?;
    sim.run(trace)
}

/// Convenience constructor for a DynaSoRe engine on the given setup.
pub fn dynasore_engine(
    graph: &SocialGraph,
    topology: &Topology,
    extra_memory: u32,
    placement: InitialPlacement,
) -> Result<DynaSoReEngine> {
    DynaSoReEngine::builder()
        .topology(topology.clone())
        .budget(MemoryBudget::with_extra_percent(
            graph.user_count(),
            extra_memory,
        ))
        .initial_placement(placement)
        .build(graph)
}

/// Generates the scaled-down synthetic stand-in of one of the paper's
/// datasets and prints the scale factor relative to Table 1.
pub fn dataset(preset: GraphPreset, scale: &ExperimentScale) -> Result<SocialGraph> {
    let graph = SocialGraph::generate(preset, scale.users, scale.seed)?;
    eprintln!(
        "# dataset {preset}: {} users, {} links (paper: {} users, {} links; scale ≈ 1/{:.0})",
        graph.user_count(),
        graph.edge_count(),
        preset.paper_user_count(),
        preset.paper_link_count(),
        preset.paper_user_count() as f64 / graph.user_count() as f64
    );
    Ok(graph)
}

/// Prints a row of tab-separated values (the output format of every
/// experiment binary, easy to paste into a plotting tool).
pub fn print_row<I: IntoIterator<Item = String>>(cells: I) {
    let cells: Vec<String> = cells.into_iter().collect();
    println!("{}", cells.join("\t"));
}

/// Formats a normalised traffic value the way the paper's figures do.
pub fn fmt_norm(value: f64) -> String {
    format!("{value:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_defaults_and_topologies() {
        let scale = ExperimentScale::default();
        assert_eq!(scale.users, 8_000);
        assert!(!scale.flat);
        assert_eq!(paper_topology().unwrap().server_count(), 225);
        assert_eq!(paper_flat_topology().unwrap().server_count(), 250);
        assert_eq!(topology_for(&scale).unwrap().server_count(), 225);
        let flat = ExperimentScale {
            flat: true,
            ..scale
        };
        assert_eq!(topology_for(&flat).unwrap().server_count(), 250);
    }

    #[test]
    fn harness_runs_a_small_experiment_end_to_end() {
        let scale = ExperimentScale {
            users: 600,
            days: 1,
            seed: 3,
            extra_memory: 30,
            flat: false,
        };
        let topology = Topology::tree(2, 2, 4, 1).unwrap();
        let graph = dataset(GraphPreset::TwitterLike, &scale).unwrap();
        let engine = dynasore_engine(
            &graph,
            &topology,
            scale.extra_memory,
            InitialPlacement::Random { seed: scale.seed },
        )
        .unwrap();
        let report =
            run_synthetic_after_warmup(engine, &graph, &topology, scale.days, scale.seed).unwrap();
        assert!(report.top_switch_total() > 0);
        assert_eq!(
            report.read_count() + report.write_count(),
            (scale.users as u64) * 5 * scale.days
        );
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_norm(0.123456), "0.123");
        // print_row only writes to stdout; just exercise it.
        print_row(["a".to_string(), "b".to_string()]);
    }
}
