//! Hierarchical partitioning (the paper's *hMETIS* baseline).
//!
//! Standard partitioning assigns users directly to servers and ignores the
//! data-centre tree. The hierarchical variant "first generate[s] one
//! partition for each intermediate switch, and then recursively
//! re-partition[s] them to assign views to rack switches and then servers"
//! (§4.1), so that friends who end up on different servers still tend to
//! share a rack or an intermediate switch.

use dynasore_graph::SocialGraph;
use dynasore_types::{Error, Result, UserId};

use crate::multilevel::WeightedGraph;
use crate::partitioner::{Partitioner, Partitioning};

/// The shape of the cluster tree used to drive hierarchical partitioning:
/// how many children each level has.
///
/// For the paper's evaluation cluster (5 intermediate switches × 5 racks ×
/// 9 servers) the shape is `[5, 5, 9]`, producing `5 × 5 × 9 = 225` leaf
/// parts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TreeShape {
    fanouts: Vec<usize>,
}

impl TreeShape {
    /// Creates a tree shape from per-level fan-outs, root first.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] if the shape is empty or any fan-out
    /// is zero.
    pub fn new(fanouts: Vec<usize>) -> Result<Self> {
        if fanouts.is_empty() {
            return Err(Error::invalid_config(
                "tree shape must have at least one level",
            ));
        }
        if fanouts.contains(&0) {
            return Err(Error::invalid_config("tree fan-outs must be positive"));
        }
        Ok(TreeShape { fanouts })
    }

    /// Per-level fan-outs, root first.
    pub fn fanouts(&self) -> &[usize] {
        &self.fanouts
    }

    /// Total number of leaves (`product of fan-outs`).
    pub fn leaf_count(&self) -> usize {
        self.fanouts.iter().product()
    }

    /// Number of levels.
    pub fn depth(&self) -> usize {
        self.fanouts.len()
    }
}

/// A hierarchical partitioning: the leaf-level [`Partitioning`] plus the
/// assignment at every intermediate level.
#[derive(Debug, Clone)]
pub struct HierarchicalPartitioning {
    shape: TreeShape,
    /// `levels[l][user] = index of the level-`l` group the user belongs to`.
    /// Level 0 groups users per intermediate switch; the last level is the
    /// leaf (server) assignment.
    levels: Vec<Vec<u32>>,
}

impl HierarchicalPartitioning {
    /// The tree shape that was partitioned against.
    pub fn shape(&self) -> &TreeShape {
        &self.shape
    }

    /// The group of `user` at tree level `level` (0 = children of the root).
    ///
    /// # Panics
    ///
    /// Panics if `level` or `user` is out of range.
    pub fn group_at_level(&self, level: usize, user: UserId) -> usize {
        self.levels[level][user.as_usize()] as usize
    }

    /// The leaf-level partitioning (user → server slot index).
    pub fn leaves(&self) -> Result<Partitioning> {
        let leaf = self
            .levels
            .last()
            .expect("hierarchical partitioning always has at least one level")
            .clone();
        Partitioning::from_assignment(leaf, self.shape.leaf_count())
    }

    /// Edge cut at a given level: number of directed edges whose endpoints
    /// fall under different level-`level` groups. Lower levels (closer to
    /// the leaves) always cut at least as much as higher levels.
    pub fn edge_cut_at_level(&self, graph: &SocialGraph, level: usize) -> usize {
        let assignment = &self.levels[level];
        graph
            .edges()
            .filter(|&(u, v)| assignment[u.as_usize()] != assignment[v.as_usize()])
            .count()
    }
}

/// Recursively partitions `graph` following `shape`.
///
/// The returned leaf index encodes the path from the root: for shape
/// `[a, b, c]`, leaf = `(i_intermediate * b + i_rack) * c + i_server`, which
/// is exactly the order in which the topology crate numbers servers.
///
/// # Errors
///
/// Returns [`Error::InvalidConfig`] if the graph has fewer users than leaves
/// or the shape is degenerate.
pub fn hierarchical(
    graph: &SocialGraph,
    shape: &TreeShape,
    imbalance: f64,
    seed: u64,
) -> Result<HierarchicalPartitioning> {
    if graph.user_count() < shape.leaf_count() {
        return Err(Error::invalid_config(format!(
            "cannot split {} users into {} leaves",
            graph.user_count(),
            shape.leaf_count()
        )));
    }

    let working = WeightedGraph::from_social(graph);
    let n = graph.user_count();

    // groups[user] = group id at the current level; starts with everyone in
    // group 0 (the root).
    let mut groups: Vec<u32> = vec![0; n];
    let mut group_count = 1usize;
    let mut levels: Vec<Vec<u32>> = Vec::with_capacity(shape.depth());

    for (level, &fanout) in shape.fanouts().iter().enumerate() {
        let mut next_groups = vec![0u32; n];
        // Partition each current group independently into `fanout` children.
        for g in 0..group_count {
            let members: Vec<u32> = (0..n as u32)
                .filter(|&u| groups[u as usize] == g as u32)
                .collect();
            if members.is_empty() {
                continue;
            }
            let child_assignment = if fanout == 1 {
                vec![0u32; members.len()]
            } else if members.len() <= fanout {
                // Degenerate: one member per child (round-robin).
                (0..members.len() as u32)
                    .map(|i| i % fanout as u32)
                    .collect()
            } else {
                let sub = induced_subgraph(&working, &members);
                let partitioner = Partitioner::new(fanout).imbalance(imbalance).seed(
                    seed.wrapping_add((level as u64) << 32)
                        .wrapping_add(g as u64),
                );
                partitioner.partition_weighted(&sub)
            };
            for (local, &user) in members.iter().enumerate() {
                next_groups[user as usize] =
                    groups[user as usize] * fanout as u32 + child_assignment[local];
            }
        }
        groups = next_groups;
        group_count *= fanout;
        levels.push(groups.clone());
    }

    Ok(HierarchicalPartitioning {
        shape: shape.clone(),
        levels,
    })
}

/// Extracts the subgraph induced by `members` (global vertex ids), relabelled
/// to local ids `0..members.len()`.
fn induced_subgraph(graph: &WeightedGraph, members: &[u32]) -> WeightedGraph {
    let mut global_to_local: std::collections::HashMap<u32, u32> =
        std::collections::HashMap::with_capacity(members.len());
    for (local, &g) in members.iter().enumerate() {
        global_to_local.insert(g, local as u32);
    }
    let mut vertex_weight = Vec::with_capacity(members.len());
    let mut adj = Vec::with_capacity(members.len());
    for &g in members {
        vertex_weight.push(graph.vertex_weight[g as usize]);
        let mut local_adj: Vec<(u32, u64)> = graph.adj[g as usize]
            .iter()
            .filter_map(|&(w, ew)| global_to_local.get(&w).map(|&lw| (lw, ew)))
            .collect();
        local_adj.sort_unstable();
        adj.push(local_adj);
    }
    WeightedGraph { vertex_weight, adj }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynasore_graph::GraphPreset;

    #[test]
    fn tree_shape_validation() {
        assert!(TreeShape::new(vec![]).is_err());
        assert!(TreeShape::new(vec![2, 0]).is_err());
        let s = TreeShape::new(vec![5, 5, 9]).unwrap();
        assert_eq!(s.leaf_count(), 225);
        assert_eq!(s.depth(), 3);
        assert_eq!(s.fanouts(), &[5, 5, 9]);
    }

    #[test]
    fn hierarchical_rejects_too_small_graphs() {
        let g = SocialGraph::new(10);
        let shape = TreeShape::new(vec![4, 4]).unwrap();
        assert!(hierarchical(&g, &shape, 0.05, 1).is_err());
    }

    #[test]
    fn leaf_assignment_covers_all_leaves_reasonably() {
        let g = SocialGraph::generate(GraphPreset::FacebookLike, 1_000, 3).unwrap();
        let shape = TreeShape::new(vec![2, 2, 3]).unwrap();
        let h = hierarchical(&g, &shape, 0.05, 3).unwrap();
        let leaves = h.leaves().unwrap();
        assert_eq!(leaves.part_count(), 12);
        let sizes = leaves.part_sizes();
        assert_eq!(sizes.iter().sum::<usize>(), 1_000);
        // Every leaf receives a reasonable share (within 2x of ideal).
        let ideal = 1_000 / 12;
        for (leaf, &size) in sizes.iter().enumerate() {
            assert!(size > ideal / 3, "leaf {leaf} too small: {size}");
            assert!(size < ideal * 2, "leaf {leaf} too large: {size}");
        }
    }

    #[test]
    fn leaf_index_encodes_the_path() {
        let g = SocialGraph::generate(GraphPreset::TwitterLike, 600, 9).unwrap();
        let shape = TreeShape::new(vec![3, 2, 2]).unwrap();
        let h = hierarchical(&g, &shape, 0.1, 5).unwrap();
        let leaves = h.leaves().unwrap();
        for u in g.users() {
            let top = h.group_at_level(0, u);
            let mid = h.group_at_level(1, u);
            let leaf = h.group_at_level(2, u);
            assert_eq!(mid / 2, top, "rack group must refine the switch group");
            assert_eq!(leaf / 2, mid, "server group must refine the rack group");
            assert_eq!(leaves.part_of(u), leaf);
        }
    }

    #[test]
    fn upper_levels_cut_fewer_edges_than_leaves() {
        let g = SocialGraph::generate(GraphPreset::FacebookLike, 800, 13).unwrap();
        let shape = TreeShape::new(vec![3, 3, 3]).unwrap();
        let h = hierarchical(&g, &shape, 0.05, 13).unwrap();
        let top_cut = h.edge_cut_at_level(&g, 0);
        let rack_cut = h.edge_cut_at_level(&g, 1);
        let leaf_cut = h.edge_cut_at_level(&g, 2);
        assert!(top_cut <= rack_cut);
        assert!(rack_cut <= leaf_cut);
        // Hierarchical partitioning keeps most edges below the top switch.
        assert!(
            (top_cut as f64) < 0.8 * g.edge_count() as f64,
            "top cut {top_cut} of {} edges",
            g.edge_count()
        );
    }

    #[test]
    fn hierarchical_beats_flat_partitioning_at_the_top_level() {
        // This is the property the hMETIS baseline relies on (§4.4): when the
        // cluster hierarchy is taken into account, fewer friend pairs are
        // separated by the top switch than with a direct flat partition.
        let g = SocialGraph::generate(GraphPreset::FacebookLike, 900, 21).unwrap();
        let shape = TreeShape::new(vec![3, 3]).unwrap();
        let h = hierarchical(&g, &shape, 0.05, 21).unwrap();

        let flat = Partitioner::new(9).seed(21).partition(&g).unwrap();
        // Group the flat parts arbitrarily into 3 "switches" of 3 parts each.
        let flat_top_cut = g
            .edges()
            .filter(|&(u, v)| flat.part_of(u) / 3 != flat.part_of(v) / 3)
            .count();
        let hier_top_cut = h.edge_cut_at_level(&g, 0);
        assert!(
            hier_top_cut <= flat_top_cut,
            "hierarchical top cut {hier_top_cut} vs flat grouped cut {flat_top_cut}"
        );
    }
}
