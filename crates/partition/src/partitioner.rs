//! Public multilevel k-way partitioner.

use rand::rngs::StdRng;
use rand::SeedableRng;

use dynasore_graph::SocialGraph;
use dynasore_types::{Error, Result, UserId};

use crate::multilevel::{coarsen, initial_partition, project, refine, WeightedGraph};

/// Default allowed imbalance (5%), the same default METIS uses.
pub const DEFAULT_IMBALANCE: f64 = 0.05;

/// A multilevel k-way graph partitioner in the style of METIS.
///
/// See the [crate documentation](crate) for the role partitioning plays in
/// the paper. The partitioner is deterministic for a given seed.
///
/// # Example
///
/// ```
/// use dynasore_graph::{GraphPreset, SocialGraph};
/// use dynasore_partition::Partitioner;
///
/// let g = SocialGraph::generate(GraphPreset::TwitterLike, 400, 1).unwrap();
/// let p = Partitioner::new(4).imbalance(0.1).seed(9).partition(&g).unwrap();
/// assert_eq!(p.part_count(), 4);
/// assert_eq!(p.assignment().len(), 400);
/// ```
#[derive(Debug, Clone)]
pub struct Partitioner {
    parts: usize,
    imbalance: f64,
    seed: u64,
    coarsen_until: usize,
    refinement_passes: usize,
}

impl Partitioner {
    /// Creates a partitioner producing `parts` balanced parts.
    pub fn new(parts: usize) -> Self {
        Partitioner {
            parts,
            imbalance: DEFAULT_IMBALANCE,
            seed: 0,
            coarsen_until: 0, // derived from parts unless overridden
            refinement_passes: 3,
        }
    }

    /// Sets the allowed imbalance: the heaviest part may weigh at most
    /// `(1 + imbalance) × total / parts`.
    pub fn imbalance(mut self, imbalance: f64) -> Self {
        self.imbalance = imbalance;
        self
    }

    /// Sets the random seed controlling matching and tie-breaking.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Stops coarsening once the graph has at most this many vertices
    /// (defaults to `max(20 × parts, 200)`).
    pub fn coarsen_until(mut self, vertices: usize) -> Self {
        self.coarsen_until = vertices;
        self
    }

    /// Number of boundary-refinement sweeps per level (default 3).
    pub fn refinement_passes(mut self, passes: usize) -> Self {
        self.refinement_passes = passes;
        self
    }

    /// Partitions the social graph.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] if `parts` is zero, the graph is
    /// empty, there are fewer users than parts, or the imbalance is
    /// negative.
    pub fn partition(&self, graph: &SocialGraph) -> Result<Partitioning> {
        if self.parts == 0 {
            return Err(Error::invalid_config("parts must be positive"));
        }
        if graph.user_count() == 0 {
            return Err(Error::invalid_config("cannot partition an empty graph"));
        }
        if graph.user_count() < self.parts {
            return Err(Error::invalid_config(format!(
                "cannot split {} users into {} parts",
                graph.user_count(),
                self.parts
            )));
        }
        if self.imbalance < 0.0 {
            return Err(Error::invalid_config("imbalance must be non-negative"));
        }

        let working = WeightedGraph::from_social(graph);
        let assignment = self.partition_weighted(&working);
        Ok(Partitioning {
            assignment,
            parts: self.parts,
        })
    }

    /// Multilevel partition of an already-built working graph. Also used by
    /// the hierarchical partitioner on induced subgraphs.
    pub(crate) fn partition_weighted(&self, working: &WeightedGraph) -> Vec<u32> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let total = working.total_weight();
        let max_part_weight = (((total as f64) / self.parts as f64) * (1.0 + self.imbalance))
            .ceil()
            .max(1.0) as u64;
        let coarsen_until = if self.coarsen_until == 0 {
            (20 * self.parts).max(200)
        } else {
            self.coarsen_until
        };

        // Coarsening phase.
        let mut levels: Vec<(WeightedGraph, Vec<u32>)> = Vec::new(); // (fine graph, fine_to_coarse)
        let mut current = working.clone();
        while current.vertex_count() > coarsen_until {
            let c = coarsen(&current, &mut rng);
            // Stop if coarsening stalls (graph too dense to shrink further).
            if c.coarse.vertex_count() as f64 > 0.95 * current.vertex_count() as f64 {
                break;
            }
            levels.push((current, c.fine_to_coarse));
            current = c.coarse;
        }

        // Initial partition on the coarsest graph.
        let mut assignment = initial_partition(&current, self.parts, max_part_weight, &mut rng);
        refine(
            &current,
            &mut assignment,
            self.parts,
            max_part_weight,
            self.refinement_passes,
            &mut rng,
        );

        // Uncoarsening with refinement.
        while let Some((fine, fine_to_coarse)) = levels.pop() {
            assignment = project(&fine_to_coarse, &assignment);
            refine(
                &fine,
                &mut assignment,
                self.parts,
                max_part_weight,
                self.refinement_passes,
                &mut rng,
            );
        }
        assignment
    }
}

/// The result of partitioning: a dense map from user to part.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partitioning {
    assignment: Vec<u32>,
    parts: usize,
}

impl Partitioning {
    /// Builds a partitioning from a raw assignment vector.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] if any entry is `>= parts`.
    pub fn from_assignment(assignment: Vec<u32>, parts: usize) -> Result<Self> {
        if let Some(&bad) = assignment.iter().find(|&&p| p as usize >= parts) {
            return Err(Error::invalid_config(format!(
                "assignment references part {bad} but only {parts} parts exist"
            )));
        }
        Ok(Partitioning { assignment, parts })
    }

    /// Number of parts.
    pub fn part_count(&self) -> usize {
        self.parts
    }

    /// Number of users assigned.
    pub fn user_count(&self) -> usize {
        self.assignment.len()
    }

    /// The part a user belongs to.
    ///
    /// # Panics
    ///
    /// Panics if `user` is out of range.
    pub fn part_of(&self, user: UserId) -> usize {
        self.assignment[user.as_usize()] as usize
    }

    /// The raw assignment vector (`assignment[user_index] = part`).
    pub fn assignment(&self) -> &[u32] {
        &self.assignment
    }

    /// Number of users in each part.
    pub fn part_sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.parts];
        for &p in &self.assignment {
            sizes[p as usize] += 1;
        }
        sizes
    }

    /// The size of the largest part.
    pub fn max_part_size(&self) -> usize {
        self.part_sizes().into_iter().max().unwrap_or(0)
    }

    /// Ratio of the largest part to the ideal size (1.0 = perfectly
    /// balanced).
    pub fn balance(&self) -> f64 {
        if self.assignment.is_empty() || self.parts == 0 {
            return 1.0;
        }
        let ideal = self.assignment.len() as f64 / self.parts as f64;
        self.max_part_size() as f64 / ideal
    }

    /// Users assigned to `part`.
    pub fn users_in_part(&self, part: usize) -> Vec<UserId> {
        self.assignment
            .iter()
            .enumerate()
            .filter(|&(_, &p)| p as usize == part)
            .map(|(u, _)| UserId::new(u as u32))
            .collect()
    }

    /// Number of directed edges of `graph` whose endpoints lie in different
    /// parts — the quantity partitioning minimises.
    pub fn edge_cut(&self, graph: &SocialGraph) -> usize {
        graph
            .edges()
            .filter(|&(u, v)| self.part_of(u) != self.part_of(v))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynasore_graph::GraphPreset;

    fn ring_of_cliques(cliques: usize, size: usize) -> SocialGraph {
        let mut g = SocialGraph::new(cliques * size);
        for c in 0..cliques {
            let base = (c * size) as u32;
            for i in 0..size as u32 {
                for j in 0..size as u32 {
                    if i != j {
                        g.add_edge(UserId::new(base + i), UserId::new(base + j));
                    }
                }
            }
            // one bridge to the next clique
            let next = (((c + 1) % cliques) * size) as u32;
            g.add_edge(UserId::new(base), UserId::new(next));
        }
        g
    }

    #[test]
    fn rejects_invalid_inputs() {
        let g = ring_of_cliques(2, 3);
        assert!(Partitioner::new(0).partition(&g).is_err());
        assert!(Partitioner::new(10).partition(&g).is_err());
        assert!(Partitioner::new(2).imbalance(-0.5).partition(&g).is_err());
        assert!(Partitioner::new(1).partition(&SocialGraph::new(0)).is_err());
    }

    #[test]
    fn partitions_are_deterministic_per_seed() {
        let g = ring_of_cliques(4, 5);
        let a = Partitioner::new(4).seed(1).partition(&g).unwrap();
        let b = Partitioner::new(4).seed(1).partition(&g).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn clique_ring_is_cut_at_bridges() {
        let g = ring_of_cliques(4, 6);
        let p = Partitioner::new(4).seed(7).partition(&g).unwrap();
        // Ideal cut: 4 bridge edges. Allow some slack but require far better
        // than a random split (expected cut ~ 3/4 of 124 edges ≈ 93).
        let cut = p.edge_cut(&g);
        assert!(cut <= 20, "edge cut too high: {cut}");
        assert!(p.balance() <= 1.34, "imbalance too high: {}", p.balance());
    }

    #[test]
    fn partitioning_beats_random_assignment_on_social_graphs() {
        let g = SocialGraph::generate(GraphPreset::FacebookLike, 800, 5).unwrap();
        let p = Partitioner::new(8).seed(5).partition(&g).unwrap();
        // Random assignment cuts ~ (1 - 1/8) of edges.
        let random_cut = (g.edge_count() as f64 * (1.0 - 1.0 / 8.0)) as usize;
        let cut = p.edge_cut(&g);
        assert!(
            (cut as f64) < 0.8 * random_cut as f64,
            "cut {cut} not better than random {random_cut}"
        );
    }

    #[test]
    fn balance_holds_on_generated_graphs() {
        let g = SocialGraph::generate(GraphPreset::TwitterLike, 600, 2).unwrap();
        let p = Partitioner::new(6)
            .imbalance(0.05)
            .seed(3)
            .partition(&g)
            .unwrap();
        assert_eq!(p.part_sizes().iter().sum::<usize>(), 600);
        assert!(p.balance() <= 1.12, "balance {}", p.balance());
        assert_eq!(p.part_count(), 6);
    }

    #[test]
    fn single_part_puts_everything_together() {
        let g = ring_of_cliques(2, 4);
        let p = Partitioner::new(1).partition(&g).unwrap();
        assert_eq!(p.part_sizes(), vec![8]);
        assert_eq!(p.edge_cut(&g), 0);
        assert!((p.balance() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn from_assignment_validates_parts() {
        assert!(Partitioning::from_assignment(vec![0, 1, 2], 3).is_ok());
        assert!(Partitioning::from_assignment(vec![0, 3], 3).is_err());
    }

    #[test]
    fn users_in_part_round_trips() {
        let g = ring_of_cliques(3, 4);
        let p = Partitioner::new(3).seed(11).partition(&g).unwrap();
        let mut total = 0;
        for part in 0..3 {
            for u in p.users_in_part(part) {
                assert_eq!(p.part_of(u), part);
                total += 1;
            }
        }
        assert_eq!(total, 12);
    }
}
