//! Graph partitioning substrate: a from-scratch multilevel k-way partitioner
//! standing in for METIS, plus the hierarchical variant used by the paper's
//! *hMETIS* baseline.
//!
//! The paper uses graph partitioning twice:
//!
//! * as the **METIS baseline** — partition the social graph into one part per
//!   server and place each user's view on her part's server (§4.1);
//! * as the **hierarchical METIS (hMETIS) baseline and DynaSoRe warm start** —
//!   first partition across intermediate switches, then recursively
//!   re-partition each part across racks and then servers, so that friends
//!   split across servers still tend to share a rack or an intermediate
//!   switch (§4.1, §4.4).
//!
//! The implementation follows the classic multilevel scheme used by METIS:
//! heavy-edge-matching coarsening, greedy region-growing initial partition,
//! and boundary Kernighan–Lin refinement during uncoarsening.
//!
//! # Example
//!
//! ```
//! use dynasore_graph::{GraphPreset, SocialGraph};
//! use dynasore_partition::Partitioner;
//!
//! let graph = SocialGraph::generate(GraphPreset::FacebookLike, 600, 3).unwrap();
//! let partitioning = Partitioner::new(8).seed(42).partition(&graph).unwrap();
//! assert_eq!(partitioning.part_count(), 8);
//! assert_eq!(partitioning.part_sizes().iter().sum::<usize>(), 600);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod hierarchy;
mod multilevel;
mod partitioner;

pub use hierarchy::{hierarchical, HierarchicalPartitioning, TreeShape};
pub use partitioner::{Partitioner, Partitioning, DEFAULT_IMBALANCE};
