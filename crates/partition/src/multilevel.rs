//! Internal multilevel machinery: weighted undirected graphs, heavy-edge
//! matching coarsening, greedy initial partitioning and boundary
//! Kernighan–Lin refinement.

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::seq::SliceRandom;

use dynasore_graph::SocialGraph;

/// An undirected weighted graph in adjacency-list form, the working
/// representation of the multilevel partitioner.
#[derive(Debug, Clone)]
pub(crate) struct WeightedGraph {
    /// Vertex weights (number of original users collapsed into the vertex).
    pub vertex_weight: Vec<u64>,
    /// `adj[v]` = list of `(neighbour, edge_weight)`, deduplicated.
    pub adj: Vec<Vec<(u32, u64)>>,
}

impl WeightedGraph {
    pub fn vertex_count(&self) -> usize {
        self.vertex_weight.len()
    }

    pub fn total_weight(&self) -> u64 {
        self.vertex_weight.iter().sum()
    }

    /// Builds the undirected working graph from a directed social graph.
    /// Reciprocated links get weight 2, single-direction links weight 1, so
    /// mutual friendships bind users more strongly — matching how METIS is
    /// typically fed symmetrised social graphs.
    pub fn from_social(graph: &SocialGraph) -> Self {
        let n = graph.user_count();
        let mut maps: Vec<HashMap<u32, u64>> = vec![HashMap::new(); n];
        for (u, v) in graph.edges() {
            let (a, b) = (u.index(), v.index());
            *maps[a as usize].entry(b).or_insert(0) += 1;
            *maps[b as usize].entry(a).or_insert(0) += 1;
        }
        let adj = maps
            .into_iter()
            .map(|m| {
                let mut v: Vec<(u32, u64)> = m.into_iter().collect();
                v.sort_unstable();
                v
            })
            .collect();
        WeightedGraph {
            vertex_weight: vec![1; n],
            adj,
        }
    }

    /// Sum of the weights of edges crossing between different parts.
    #[cfg(test)]
    pub fn edge_cut(&self, assignment: &[u32]) -> u64 {
        let mut cut = 0u64;
        for (v, neigh) in self.adj.iter().enumerate() {
            for &(w, weight) in neigh {
                if (w as usize) > v && assignment[v] != assignment[w as usize] {
                    cut += weight;
                }
            }
        }
        cut
    }
}

/// Result of one coarsening step.
pub(crate) struct Coarsening {
    pub coarse: WeightedGraph,
    /// `fine_to_coarse[v]` = coarse vertex containing fine vertex `v`.
    pub fine_to_coarse: Vec<u32>,
}

/// One level of heavy-edge matching: visits vertices in random order and
/// matches each unmatched vertex with its unmatched neighbour of maximum
/// edge weight (ties broken by smaller vertex weight to keep the coarse
/// graph balanced).
pub(crate) fn coarsen(graph: &WeightedGraph, rng: &mut StdRng) -> Coarsening {
    let n = graph.vertex_count();
    let mut order: Vec<u32> = (0..n as u32).collect();
    order.shuffle(rng);

    const UNMATCHED: u32 = u32::MAX;
    let mut mate = vec![UNMATCHED; n];
    for &v in &order {
        let v = v as usize;
        if mate[v] != UNMATCHED {
            continue;
        }
        let mut best: Option<(u32, u64, u64)> = None; // (neighbour, edge w, vertex w)
        for &(w, ew) in &graph.adj[v] {
            if mate[w as usize] != UNMATCHED || w as usize == v {
                continue;
            }
            let vw = graph.vertex_weight[w as usize];
            let better = match best {
                None => true,
                Some((_, bew, bvw)) => ew > bew || (ew == bew && vw < bvw),
            };
            if better {
                best = Some((w, ew, vw));
            }
        }
        match best {
            Some((w, _, _)) => {
                mate[v] = w;
                mate[w as usize] = v as u32;
            }
            None => mate[v] = v as u32, // matched with itself
        }
    }

    // Number coarse vertices.
    let mut fine_to_coarse = vec![UNMATCHED; n];
    let mut next = 0u32;
    for v in 0..n {
        if fine_to_coarse[v] != UNMATCHED {
            continue;
        }
        let m = mate[v] as usize;
        fine_to_coarse[v] = next;
        fine_to_coarse[m] = next;
        next += 1;
    }
    let coarse_n = next as usize;

    // Build the coarse graph.
    let mut vertex_weight = vec![0u64; coarse_n];
    for v in 0..n {
        vertex_weight[fine_to_coarse[v] as usize] += graph.vertex_weight[v];
    }
    let mut maps: Vec<HashMap<u32, u64>> = vec![HashMap::new(); coarse_n];
    for v in 0..n {
        let cv = fine_to_coarse[v];
        for &(w, ew) in &graph.adj[v] {
            let cw = fine_to_coarse[w as usize];
            if cv == cw {
                continue;
            }
            *maps[cv as usize].entry(cw).or_insert(0) += ew;
        }
    }
    let adj = maps
        .into_iter()
        .map(|m| {
            let mut v: Vec<(u32, u64)> = m.into_iter().collect();
            v.sort_unstable();
            v
        })
        .collect();

    Coarsening {
        coarse: WeightedGraph { vertex_weight, adj },
        fine_to_coarse,
    }
}

/// Greedy region-growing k-way initial partition of (a small) graph.
///
/// Seeds one random vertex per part, then repeatedly assigns the unassigned
/// vertex with the strongest connection to an under-full part; vertices with
/// no assigned neighbours fall back to the lightest part.
pub(crate) fn initial_partition(
    graph: &WeightedGraph,
    parts: usize,
    max_part_weight: u64,
    rng: &mut StdRng,
) -> Vec<u32> {
    let n = graph.vertex_count();
    let mut assignment = vec![u32::MAX; n];
    let mut part_weight = vec![0u64; parts];
    if n == 0 {
        return assignment;
    }

    // Seed each part with a distinct random vertex (when possible).
    let mut order: Vec<u32> = (0..n as u32).collect();
    order.shuffle(rng);
    for (p, &v) in order.iter().take(parts).enumerate() {
        assignment[v as usize] = p as u32;
        part_weight[p] += graph.vertex_weight[v as usize];
    }

    // Assign the rest greedily in random order.
    for &v in order.iter().skip(parts.min(n)) {
        let v = v as usize;
        if assignment[v] != u32::MAX {
            continue;
        }
        // Connectivity of v towards each part.
        let mut conn = vec![0u64; parts];
        for &(w, ew) in &graph.adj[v] {
            let p = assignment[w as usize];
            if p != u32::MAX {
                conn[p as usize] += ew;
            }
        }
        let vw = graph.vertex_weight[v];
        let mut best: Option<usize> = None;
        for p in 0..parts {
            if part_weight[p] + vw > max_part_weight {
                continue;
            }
            let better = match best {
                None => true,
                Some(bp) => {
                    conn[p] > conn[bp] || (conn[p] == conn[bp] && part_weight[p] < part_weight[bp])
                }
            };
            if better {
                best = Some(p);
            }
        }
        // If every part is over the cap (can happen with very skewed coarse
        // vertices), fall back to the lightest part.
        let chosen = best.unwrap_or_else(|| {
            (0..parts)
                .min_by_key(|&p| part_weight[p])
                .expect("at least one part")
        });
        assignment[v] = chosen as u32;
        part_weight[chosen] += vw;
    }
    assignment
}

/// Boundary Kernighan–Lin refinement: repeatedly moves boundary vertices to
/// the neighbouring part with the highest gain, as long as the balance
/// constraint is respected. `passes` full sweeps are performed (2–4 is
/// plenty in practice).
pub(crate) fn refine(
    graph: &WeightedGraph,
    assignment: &mut [u32],
    parts: usize,
    max_part_weight: u64,
    passes: usize,
    rng: &mut StdRng,
) {
    let n = graph.vertex_count();
    let mut part_weight = vec![0u64; parts];
    for v in 0..n {
        part_weight[assignment[v] as usize] += graph.vertex_weight[v];
    }

    let mut order: Vec<u32> = (0..n as u32).collect();
    for _ in 0..passes {
        order.shuffle(rng);
        let mut moved = 0usize;
        for &v in &order {
            let v = v as usize;
            if graph.adj[v].is_empty() {
                continue;
            }
            let from = assignment[v] as usize;
            // Connectivity towards each part present in the neighbourhood.
            // A BTreeMap keeps the iteration order deterministic, which in
            // turn keeps the whole partitioner deterministic per seed.
            let mut conn: std::collections::BTreeMap<usize, u64> =
                std::collections::BTreeMap::new();
            for &(w, ew) in &graph.adj[v] {
                *conn.entry(assignment[w as usize] as usize).or_insert(0) += ew;
            }
            let internal = conn.get(&from).copied().unwrap_or(0);
            let vw = graph.vertex_weight[v];
            let mut best_gain = 0i64;
            let mut best_part = from;
            for (&p, &c) in &conn {
                if p == from {
                    continue;
                }
                if part_weight[p] + vw > max_part_weight {
                    continue;
                }
                let gain = c as i64 - internal as i64;
                if gain > best_gain {
                    best_gain = gain;
                    best_part = p;
                }
            }
            if best_part != from && best_gain > 0 {
                assignment[v] = best_part as u32;
                part_weight[from] -= vw;
                part_weight[best_part] += vw;
                moved += 1;
            }
        }
        if moved == 0 {
            break;
        }
    }
}

/// Projects a coarse assignment back to the finer graph.
pub(crate) fn project(fine_to_coarse: &[u32], coarse_assignment: &[u32]) -> Vec<u32> {
    fine_to_coarse
        .iter()
        .map(|&cv| coarse_assignment[cv as usize])
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynasore_types::UserId;
    use rand::SeedableRng;

    fn u(i: u32) -> UserId {
        UserId::new(i)
    }

    /// Two 4-cliques joined by a single edge.
    fn two_cliques() -> SocialGraph {
        let mut g = SocialGraph::new(8);
        for base in [0u32, 4u32] {
            for i in 0..4 {
                for j in 0..4 {
                    if i != j {
                        g.add_edge(u(base + i), u(base + j));
                    }
                }
            }
        }
        g.add_edge(u(0), u(4));
        g
    }

    #[test]
    fn weighted_graph_from_social_symmetrises() {
        let g = two_cliques();
        let wg = WeightedGraph::from_social(&g);
        assert_eq!(wg.vertex_count(), 8);
        // Within a clique every pair is reciprocated, weight 2.
        let w01 = wg.adj[0].iter().find(|&&(n, _)| n == 1).unwrap().1;
        assert_eq!(w01, 2);
        // The bridge 0-4 is one-directional, weight 1.
        let w04 = wg.adj[0].iter().find(|&&(n, _)| n == 4).unwrap().1;
        assert_eq!(w04, 1);
        assert_eq!(wg.total_weight(), 8);
    }

    #[test]
    fn coarsening_halves_the_graph_roughly() {
        let g = two_cliques();
        let wg = WeightedGraph::from_social(&g);
        let mut rng = StdRng::seed_from_u64(1);
        let c = coarsen(&wg, &mut rng);
        assert!(c.coarse.vertex_count() <= wg.vertex_count());
        assert!(c.coarse.vertex_count() >= wg.vertex_count() / 2);
        // Weight is conserved.
        assert_eq!(c.coarse.total_weight(), wg.total_weight());
        // Every fine vertex maps to a valid coarse vertex.
        for &cv in &c.fine_to_coarse {
            assert!((cv as usize) < c.coarse.vertex_count());
        }
    }

    #[test]
    fn initial_partition_respects_capacity() {
        let g = two_cliques();
        let wg = WeightedGraph::from_social(&g);
        let mut rng = StdRng::seed_from_u64(3);
        let a = initial_partition(&wg, 2, 5, &mut rng);
        let mut sizes = [0u64; 2];
        for (v, &p) in a.iter().enumerate() {
            sizes[p as usize] += wg.vertex_weight[v];
        }
        assert!(sizes[0] <= 5 && sizes[1] <= 5);
        assert_eq!(sizes[0] + sizes[1], 8);
    }

    #[test]
    fn refinement_finds_the_clique_cut() {
        let g = two_cliques();
        let wg = WeightedGraph::from_social(&g);
        let mut rng = StdRng::seed_from_u64(5);
        // Deliberately bad start: interleaved assignment.
        let mut assignment: Vec<u32> = (0..8).map(|v| (v % 2) as u32).collect();
        let before = wg.edge_cut(&assignment);
        refine(&wg, &mut assignment, 2, 5, 4, &mut rng);
        let after = wg.edge_cut(&assignment);
        assert!(after < before, "refinement should reduce the cut");
        // The optimal cut separates the two cliques (cut weight 1).
        assert!(after <= 4, "cut after refinement: {after}");
    }

    #[test]
    fn project_maps_through_coarse_assignment() {
        let fine_to_coarse = vec![0u32, 0, 1, 1, 2];
        let coarse_assignment = vec![5u32, 6, 7];
        assert_eq!(
            project(&fine_to_coarse, &coarse_assignment),
            vec![5, 5, 6, 6, 7]
        );
    }
}
