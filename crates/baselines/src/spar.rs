//! SPAR (Pujol et al., SIGCOMM 2010) adapted to a bounded memory budget, as
//! described in §4.1 of the DynaSoRe paper.
//!
//! SPAR "ensures the views of the social friends of a user are stored on the
//! same server as her own view", which makes reads server-local at the price
//! of updating many replicas on every write. The original SPAR assumes
//! unbounded storage; the paper's adaptation replicates a friend's view onto
//! a user's server only "as long as storage is available".

use std::collections::HashSet;

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use dynasore_graph::SocialGraph;
use dynasore_topology::Topology;
use dynasore_types::{
    ClusterEvent, Error, MachineId, MemoryBudget, RackId, Result, SimTime, SubtreeId, UserId,
    VIEW_TRANSFER_PROTOCOL_MESSAGES,
};
use dynasore_types::{MemoryUsage, Message, PlacementEngine, TrafficSink};
use dynasore_workload::GraphMutation;

#[derive(Debug, Clone)]
struct SparServer {
    machine: MachineId,
    capacity: usize,
    views: HashSet<UserId>,
}

impl SparServer {
    fn is_full(&self) -> bool {
        self.views.len() >= self.capacity
    }
}

/// The SPAR placement engine with a memory budget.
///
/// # Example
///
/// ```
/// use dynasore_baselines::SparEngine;
/// use dynasore_graph::{GraphPreset, SocialGraph};
/// use dynasore_types::PlacementEngine;
/// use dynasore_topology::Topology;
/// use dynasore_types::MemoryBudget;
///
/// let graph = SocialGraph::generate(GraphPreset::TwitterLike, 300, 1).unwrap();
/// let topology = Topology::tree(2, 2, 4, 1).unwrap();
/// let budget = MemoryBudget::with_extra_percent(300, 50);
/// let spar = SparEngine::new(&graph, &topology, budget, 7).unwrap();
/// assert_eq!(spar.name(), "spar");
/// // Every view exists at least once; replication uses the extra memory.
/// assert!(spar.memory_usage().used_slots >= 300);
/// ```
#[derive(Debug, Clone)]
pub struct SparEngine {
    topology: Topology,
    servers: Vec<SparServer>,
    /// Dense server index of each user's primary (master) replica.
    primary: Vec<usize>,
    /// All dense server indices holding a replica of each user's view
    /// (primary included).
    replicas: Vec<Vec<usize>>,
    /// Broker executing each user's requests: the broker of her primary's
    /// rack.
    proxies: Vec<MachineId>,
    /// Read targets that could not be served because the view had no live
    /// replica.
    unreachable_reads: u64,
}

impl SparEngine {
    /// Builds the SPAR placement for `graph` on `topology` within `budget`.
    ///
    /// Following §4.4, one replica is first created per user (on the least
    /// loaded server at her arrival), then every edge of the social graph is
    /// added in random order, each addition replicating the followee's view
    /// onto the follower's primary server while space remains.
    ///
    /// # Errors
    ///
    /// Returns an error if the graph is empty, the budget does not cover the
    /// user count, or the cluster cannot hold one copy of every view.
    pub fn new(
        graph: &SocialGraph,
        topology: &Topology,
        budget: MemoryBudget,
        seed: u64,
    ) -> Result<Self> {
        if graph.user_count() == 0 {
            return Err(Error::invalid_config(
                "cannot place views for an empty graph",
            ));
        }
        if budget.view_count() != graph.user_count() {
            return Err(Error::invalid_config(format!(
                "memory budget covers {} views but the graph has {} users",
                budget.view_count(),
                graph.user_count()
            )));
        }
        let server_count = topology.server_count();
        let capacity = budget.slots_per_server(server_count)?;
        if capacity * server_count < graph.user_count() {
            return Err(Error::InsufficientCapacity {
                required: graph.user_count(),
                available: capacity * server_count,
            });
        }

        let mut servers: Vec<SparServer> = topology
            .servers()
            .iter()
            .map(|s| SparServer {
                machine: s.machine(),
                capacity,
                views: HashSet::new(),
            })
            .collect();

        let mut rng = StdRng::seed_from_u64(seed);

        // Phase 1: primaries, in random user order, on the least loaded
        // server.
        let mut user_order: Vec<u32> = (0..graph.user_count() as u32).collect();
        user_order.shuffle(&mut rng);
        let mut primary = vec![0usize; graph.user_count()];
        let mut replicas = vec![Vec::new(); graph.user_count()];
        for &u in &user_order {
            let user = UserId::new(u);
            let target = (0..servers.len())
                .min_by_key(|&i| servers[i].views.len())
                .expect("at least one server");
            servers[target].views.insert(user);
            primary[user.as_usize()] = target;
            replicas[user.as_usize()].push(target);
        }

        // Phase 2: simulate the addition of all social edges in random
        // order, co-locating followee views with their readers while space
        // remains.
        let mut edges: Vec<(UserId, UserId)> = graph.edges().collect();
        edges.shuffle(&mut rng);
        for (follower, followee) in edges {
            Self::try_colocate_static(&mut servers, &primary, &mut replicas, follower, followee);
        }

        let proxies = primary
            .iter()
            .map(|&s| {
                topology
                    .local_broker(servers[s].machine)
                    .map(|b| b.machine())
            })
            .collect::<Result<Vec<_>>>()?;

        Ok(SparEngine {
            topology: topology.clone(),
            servers,
            primary,
            replicas,
            proxies,
            unreachable_reads: 0,
        })
    }

    /// Replicates `followee`'s view onto `follower`'s primary server if it
    /// is not already there and the server has space. Returns the target
    /// server index if a replica was created.
    fn try_colocate_static(
        servers: &mut [SparServer],
        primary: &[usize],
        replicas: &mut [Vec<usize>],
        follower: UserId,
        followee: UserId,
    ) -> Option<usize> {
        if follower.as_usize() >= primary.len() || followee.as_usize() >= primary.len() {
            return None;
        }
        let target = primary[follower.as_usize()];
        if replicas[followee.as_usize()].contains(&target) {
            return None;
        }
        if servers[target].is_full() {
            return None;
        }
        servers[target].views.insert(followee);
        replicas[followee.as_usize()].push(target);
        Some(target)
    }

    /// The machine holding `user`'s primary replica.
    pub fn primary_server(&self, user: UserId) -> Option<MachineId> {
        self.primary
            .get(user.as_usize())
            .map(|&s| self.servers[s].machine)
    }

    /// The machines holding any replica of `user`'s view.
    pub fn replica_servers(&self, user: UserId) -> Vec<MachineId> {
        self.replicas
            .get(user.as_usize())
            .map(|r| r.iter().map(|&i| self.servers[i].machine).collect())
            .unwrap_or_default()
    }

    /// Average number of replicas per view.
    pub fn average_replication(&self) -> f64 {
        if self.replicas.is_empty() {
            return 0.0;
        }
        let total: usize = self.replicas.iter().map(Vec::len).sum();
        total as f64 / self.replicas.len() as f64
    }

    /// Fraction of follower→followee pairs whose followee view is stored on
    /// the follower's primary server (perfect SPAR = 1.0; lower when memory
    /// runs out).
    pub fn colocation_ratio(&self, graph: &SocialGraph) -> f64 {
        let mut colocated = 0usize;
        let mut total = 0usize;
        for (follower, followee) in graph.edges() {
            total += 1;
            let target = self.primary[follower.as_usize()];
            if self.replicas[followee.as_usize()].contains(&target) {
                colocated += 1;
            }
        }
        if total == 0 {
            1.0
        } else {
            colocated as f64 / total as f64
        }
    }

    // --- Cluster dynamics --------------------------------------------------
    //
    // SPAR's reactions are correct-if-simple: replicas on failed machines
    // vanish, a surviving replica is promoted to primary, views whose last
    // copy died are re-filled from the persistent tier onto the least
    // loaded live server, and drained machines move their sole copies
    // machine-to-machine. SPAR never rebuilds co-location after a failure —
    // its read locality degrades, which is exactly the behaviour the
    // comparison experiments should show.

    /// The live server with the fewest stored views (free space preferred,
    /// ties by dense index), excluding `exclude`.
    fn least_loaded_live_server(&self, exclude: Option<usize>) -> Option<usize> {
        let mut best_any: Option<(usize, usize)> = None;
        let mut best_free: Option<(usize, usize)> = None;
        for (i, server) in self.servers.iter().enumerate() {
            if Some(i) == exclude || !self.topology.is_live(server.machine) {
                continue;
            }
            let key = (server.views.len(), i);
            if best_any.map_or(true, |b| key < b) {
                best_any = Some(key);
            }
            if !server.is_full() && best_free.map_or(true, |b| key < b) {
                best_free = Some(key);
            }
        }
        best_free.or(best_any).map(|(_, i)| i)
    }

    /// The broker that should execute requests for a user whose primary
    /// lives on server `sidx`: the closest live broker to that machine.
    fn proxy_near(&self, sidx: usize) -> MachineId {
        let machine = self.servers[sidx].machine;
        self.topology
            .closest_live_broker(machine)
            .map(|b| b.machine())
            .unwrap_or(machine)
    }

    /// Promotes the lowest-indexed surviving replica of `user` to primary
    /// and re-homes her proxy next to it.
    fn promote_primary(&mut self, user: usize) {
        if let Some(&new_primary) = self.replicas[user].iter().min() {
            self.primary[user] = new_primary;
            self.proxies[user] = self.proxy_near(new_primary);
        }
    }

    /// Re-fills the lost view of `user` from the persistent tier.
    fn recover_view(&mut self, user: usize, out: &mut dyn TrafficSink) {
        let Some(target) = self.least_loaded_live_server(None) else {
            return; // Every server is dead; the view stays lost.
        };
        let target_machine = self.servers[target].machine;
        self.servers[target].views.insert(UserId::new(user as u32));
        self.replicas[user].push(target);
        self.primary[user] = target;
        self.proxies[user] = self.proxy_near(target);
        for _ in 0..VIEW_TRANSFER_PROTOCOL_MESSAGES {
            out.record(Message::persistent_fetch(target_machine));
        }
    }

    /// Re-homes every proxy hosted on a machine that is no longer live to
    /// the closest live broker.
    fn rehome_dead_proxies(&mut self) {
        for user in 0..self.proxies.len() {
            if !self.topology.is_live(self.proxies[user]) {
                if let Some(broker) = self.topology.closest_live_broker(self.proxies[user]) {
                    self.proxies[user] = broker.machine();
                }
            }
        }
    }

    /// Crash-fails a batch of machines.
    fn take_down(&mut self, machines: &[MachineId], out: &mut dyn TrafficSink) {
        let mut dead_servers: Vec<usize> = Vec::new();
        let mut any = false;
        for &machine in machines {
            if self.topology.is_live(machine) && self.topology.set_live(machine, false).is_ok() {
                any = true;
                if let Some(sidx) = self.topology.server_ordinal(machine) {
                    dead_servers.push(sidx);
                }
            }
        }
        if !any {
            return;
        }
        for &sidx in &dead_servers {
            self.servers[sidx].views.clear();
        }
        // Iterate users in id order (never the servers' hash sets) so the
        // recovery sequence — and therefore the message stream — is
        // deterministic.
        for user in 0..self.replicas.len() {
            self.replicas[user].retain(|i| !dead_servers.contains(i));
            if self.replicas[user].is_empty() {
                self.recover_view(user, out);
            } else if !self.replicas[user].contains(&self.primary[user]) {
                self.promote_primary(user);
            }
        }
        self.rehome_dead_proxies();
    }

    /// Revives a batch of machines (empty) and recovers any still-lost
    /// views onto the returned capacity.
    fn bring_up(&mut self, machines: &[MachineId], out: &mut dyn TrafficSink) {
        let mut any = false;
        for &machine in machines {
            if self.topology.contains(machine)
                && !self.topology.is_live(machine)
                && !self.topology.is_retired(machine)
            {
                self.topology
                    .set_live(machine, true)
                    .expect("machine exists");
                any = true;
            }
        }
        if !any {
            return;
        }
        for user in 0..self.replicas.len() {
            if self.replicas[user].is_empty() {
                self.recover_view(user, out);
            }
        }
    }

    /// Gracefully drains one machine, migrating sole replicas
    /// machine-to-machine.
    fn drain(&mut self, machine: MachineId, out: &mut dyn TrafficSink) {
        if !self.topology.is_live(machine) {
            return;
        }
        self.topology
            .set_live(machine, false)
            .expect("machine exists");
        if let Some(sidx) = self.topology.server_ordinal(machine) {
            for user in 0..self.replicas.len() {
                if !self.replicas[user].contains(&sidx) {
                    continue;
                }
                if self.replicas[user].len() > 1 {
                    self.replicas[user].retain(|&i| i != sidx);
                    if self.primary[user] == sidx {
                        self.promote_primary(user);
                    }
                } else if let Some(target) = self.least_loaded_live_server(Some(sidx)) {
                    let target_machine = self.servers[target].machine;
                    self.servers[target].views.insert(UserId::new(user as u32));
                    self.replicas[user] = vec![target];
                    self.primary[user] = target;
                    self.proxies[user] = self.proxy_near(target);
                    for _ in 0..VIEW_TRANSFER_PROTOCOL_MESSAGES {
                        out.record(Message::protocol(machine, target_machine));
                    }
                } else {
                    self.replicas[user].clear(); // No live capacity: lost.
                }
            }
            self.servers[sidx].views.clear();
        }
        self.rehome_dead_proxies();
    }

    /// Decommissions a whole rack (elastic shrink): every machine of the
    /// rack is marked dead up front, then each user's copies on the rack are
    /// dropped (when other copies survive) or migrated machine-to-machine
    /// (sole copies) — the same ladder as a drain, batched so nothing moves
    /// from one dying machine to another. The rack is then retired for good.
    fn retire_rack(&mut self, rack: RackId, out: &mut dyn TrafficSink) {
        if self.topology.is_rack_retired(rack) || self.topology.active_rack_count() <= 1 {
            return;
        }
        let machines = self
            .topology
            .machines_in_subtree(SubtreeId::Rack(rack.index()));
        let mut dying: Vec<usize> = Vec::new();
        for &machine in &machines {
            let _ = self.topology.set_live(machine, false);
            if let Some(sidx) = self.topology.server_ordinal(machine) {
                dying.push(sidx);
            }
        }
        if machines.is_empty() {
            return;
        }
        // Users in id order so the migration message stream is deterministic.
        for user in 0..self.replicas.len() {
            if !self.replicas[user].iter().any(|i| dying.contains(i)) {
                continue;
            }
            if self.replicas[user].iter().any(|i| !dying.contains(i)) {
                // Copies survive elsewhere: drop the rack's copies.
                self.replicas[user].retain(|i| !dying.contains(i));
                if !self.replicas[user].contains(&self.primary[user]) {
                    self.promote_primary(user);
                }
            } else if let Some(target) = self.least_loaded_live_server(None) {
                // Every copy lives on the dying rack: migrate one off it.
                let source = self.servers[self.replicas[user][0]].machine;
                let target_machine = self.servers[target].machine;
                self.servers[target].views.insert(UserId::new(user as u32));
                self.replicas[user] = vec![target];
                self.primary[user] = target;
                self.proxies[user] = self.proxy_near(target);
                for _ in 0..VIEW_TRANSFER_PROTOCOL_MESSAGES {
                    out.record(Message::protocol(source, target_machine));
                }
            } else {
                self.replicas[user].clear(); // No live capacity: lost.
            }
        }
        for &sidx in &dying {
            self.servers[sidx].views.clear();
        }
        self.rehome_dead_proxies();
        let _ = self.topology.remove_rack(rack);
    }

    /// Mirrors a freshly added rack with empty SPAR servers.
    fn absorb_new_rack(&mut self) {
        let capacity = self.servers.first().map(|s| s.capacity).unwrap_or(0);
        if self.topology.add_rack().is_err() {
            return;
        }
        for server in &self.topology.servers()[self.servers.len()..] {
            self.servers.push(SparServer {
                machine: server.machine(),
                capacity,
                views: HashSet::new(),
            });
        }
    }
}

impl PlacementEngine for SparEngine {
    fn name(&self) -> &str {
        "spar"
    }

    fn handle_read(
        &mut self,
        user: UserId,
        targets: &[UserId],
        _time: SimTime,
        out: &mut dyn TrafficSink,
    ) {
        let Some(&broker) = self.proxies.get(user.as_usize()) else {
            return;
        };
        for &target in targets {
            let Some(replica_idxs) = self.replicas.get(target.as_usize()) else {
                continue;
            };
            if replica_idxs.is_empty() {
                // Known user with no live replica: only possible while a
                // lost view awaits recovery capacity.
                self.unreachable_reads += 1;
                continue;
            }
            // Route to the closest replica (usually the reader's own
            // server thanks to co-location).
            let server = replica_idxs
                .iter()
                .map(|&i| self.servers[i].machine)
                .min_by_key(|&m| (self.topology.distance(broker, m), m.index()))
                .expect("non-empty replica set");
            out.record(Message::application(broker, server));
            out.record(Message::application(server, broker));
        }
    }

    fn handle_write(&mut self, user: UserId, _time: SimTime, out: &mut dyn TrafficSink) {
        let Some(&broker) = self.proxies.get(user.as_usize()) else {
            return;
        };
        // Every replica of the user's view must be updated.
        for &ridx in &self.replicas[user.as_usize()] {
            out.record(Message::application(broker, self.servers[ridx].machine));
        }
    }

    fn on_graph_change(
        &mut self,
        mutation: GraphMutation,
        _time: SimTime,
        out: &mut dyn TrafficSink,
    ) {
        if let GraphMutation::AddEdge { follower, followee } = mutation {
            // SPAR reacts to the evolution of the social network by
            // co-locating the new friend's view, if memory allows.
            let created = Self::try_colocate_static(
                &mut self.servers,
                &self.primary,
                &mut self.replicas,
                follower,
                followee,
            );
            if let Some(target) = created {
                let source = self.servers[self.primary[followee.as_usize()]].machine;
                let target_machine = self.servers[target].machine;
                out.record(Message::protocol(source, target_machine));
                for _ in 0..VIEW_TRANSFER_PROTOCOL_MESSAGES {
                    out.record(Message::protocol(source, target_machine));
                }
            }
        }
        // SPAR never reclaims replicas on edge removal.
    }

    fn on_cluster_change(
        &mut self,
        event: ClusterEvent,
        _time: SimTime,
        out: &mut dyn TrafficSink,
    ) {
        match event {
            ClusterEvent::MachineDown { machine } => self.take_down(&[machine], out),
            ClusterEvent::MachineUp { machine } => self.bring_up(&[machine], out),
            ClusterEvent::RackDown { rack } => {
                let machines = self
                    .topology
                    .machines_in_subtree(SubtreeId::Rack(rack.index()));
                self.take_down(&machines, out);
            }
            ClusterEvent::RackUp { rack } => {
                let machines = self
                    .topology
                    .machines_in_subtree(SubtreeId::Rack(rack.index()));
                self.bring_up(&machines, out);
            }
            ClusterEvent::DrainMachine { machine } => self.drain(machine, out),
            ClusterEvent::AddRack => self.absorb_new_rack(),
            ClusterEvent::RemoveRack { rack } => self.retire_rack(rack, out),
        }
    }

    fn unreachable_reads(&self) -> u64 {
        self.unreachable_reads
    }

    fn replica_count(&self, user: UserId) -> usize {
        self.replicas
            .get(user.as_usize())
            .map(Vec::len)
            .unwrap_or(0)
    }

    fn memory_usage(&self) -> MemoryUsage {
        // Dead servers hold nothing and their capacity is unreachable.
        MemoryUsage {
            used_slots: self
                .servers
                .iter()
                .filter(|s| self.topology.is_live(s.machine))
                .map(|s| s.views.len())
                .sum(),
            capacity_slots: self
                .servers
                .iter()
                .filter(|s| self.topology.is_live(s.machine))
                .map(|s| s.capacity)
                .sum(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynasore_graph::GraphPreset;
    use dynasore_types::MessageClass;

    fn setup() -> (SocialGraph, Topology) {
        let graph = SocialGraph::generate(GraphPreset::FacebookLike, 400, 4).unwrap();
        let topology = Topology::tree(2, 2, 5, 1).unwrap();
        (graph, topology)
    }

    #[test]
    fn construction_validates_inputs() {
        let (graph, topology) = setup();
        assert!(
            SparEngine::new(&SocialGraph::new(0), &topology, MemoryBudget::exact(0), 1).is_err()
        );
        assert!(SparEngine::new(&graph, &topology, MemoryBudget::exact(10), 1).is_err());
        assert!(SparEngine::new(&graph, &topology, MemoryBudget::exact(400), 1).is_ok());
    }

    #[test]
    fn every_view_has_a_primary_and_capacity_is_respected() {
        let (graph, topology) = setup();
        let budget = MemoryBudget::with_extra_percent(400, 100);
        let spar = SparEngine::new(&graph, &topology, budget, 2).unwrap();
        for user in graph.users() {
            assert!(spar.replica_count(user) >= 1);
            assert!(spar
                .replica_servers(user)
                .contains(&spar.primary_server(user).unwrap()));
        }
        let capacity = budget.slots_per_server(topology.server_count()).unwrap();
        for server in &spar.servers {
            assert!(server.views.len() <= capacity);
        }
        let usage = spar.memory_usage();
        assert!(
            usage.used_slots > 400,
            "extra memory should be used for replication"
        );
        assert!(usage.used_slots <= usage.capacity_slots);
    }

    #[test]
    fn more_memory_means_more_colocation() {
        let (graph, topology) = setup();
        let tight = SparEngine::new(&graph, &topology, MemoryBudget::exact(400), 3).unwrap();
        let roomy = SparEngine::new(
            &graph,
            &topology,
            MemoryBudget::with_extra_percent(400, 200),
            3,
        )
        .unwrap();
        let tight_ratio = tight.colocation_ratio(&graph);
        let roomy_ratio = roomy.colocation_ratio(&graph);
        assert!(roomy_ratio > tight_ratio);
        assert!(roomy.average_replication() > tight.average_replication());
        // With 0% extra memory there is essentially no room to replicate.
        assert!(tight.average_replication() < 1.1);
    }

    #[test]
    fn reads_prefer_the_local_server_and_writes_update_all_replicas() {
        let (graph, topology) = setup();
        let budget = MemoryBudget::with_extra_percent(400, 200);
        let mut spar = SparEngine::new(&graph, &topology, budget, 5).unwrap();
        // Find a user with at least one followee co-located on her server.
        let user = graph
            .users()
            .find(|&u| {
                !graph.followees(u).is_empty()
                    && graph.followees(u).iter().any(|&v| {
                        spar.replica_servers(v)
                            .contains(&spar.primary_server(u).unwrap())
                    })
            })
            .expect("co-located pair exists");
        let targets = graph.followees(user).to_vec();
        let mut out = Vec::new();
        spar.handle_read(user, &targets, SimTime::ZERO, &mut out);
        assert_eq!(out.len(), 2 * targets.len());
        // At least one read stayed within the user's own rack.
        let broker = spar.proxies[user.as_usize()];
        assert!(out
            .iter()
            .any(|m| topology.distance(m.from, m.to) <= 1 && (m.from == broker || m.to == broker)));

        out.clear();
        let writer = graph
            .users()
            .max_by_key(|&u| spar.replica_count(u))
            .unwrap();
        spar.handle_write(writer, SimTime::ZERO, &mut out);
        assert_eq!(out.len(), spar.replica_count(writer));
        assert!(out.iter().all(|m| m.class == MessageClass::Application));
    }

    #[test]
    fn graph_changes_trigger_colocation_when_space_allows() {
        // A small, sparse graph with ample memory so that servers keep spare
        // capacity after the initial placement.
        let mut graph = SocialGraph::new(40);
        for i in 0..20u32 {
            graph.add_edge(UserId::new(i), UserId::new(i + 20));
        }
        let topology = Topology::tree(2, 2, 5, 1).unwrap();
        let budget = MemoryBudget::with_extra_percent(40, 200);
        let mut spar = SparEngine::new(&graph, &topology, budget, 6).unwrap();
        // Find a (follower, followee) pair that is not yet co-located.
        let pair = graph
            .users()
            .flat_map(|u| graph.users().map(move |v| (u, v)))
            .find(|&(u, v)| {
                u != v
                    && !graph.contains_edge(u, v)
                    && !spar
                        .replica_servers(v)
                        .contains(&spar.primary_server(u).unwrap())
                    && !spar.servers[spar.primary[u.as_usize()]].is_full()
            })
            .expect("some non-colocated pair with spare capacity");
        let before = spar.replica_count(pair.1);
        let mut out = Vec::new();
        spar.on_graph_change(
            GraphMutation::AddEdge {
                follower: pair.0,
                followee: pair.1,
            },
            SimTime::ZERO,
            &mut out,
        );
        assert_eq!(spar.replica_count(pair.1), before + 1);
        assert!(!out.is_empty());
        assert!(out.iter().all(|m| m.class == MessageClass::Protocol));
        // Removing the edge does not reclaim the replica.
        spar.on_graph_change(
            GraphMutation::RemoveEdge {
                follower: pair.0,
                followee: pair.1,
            },
            SimTime::ZERO,
            &mut out,
        );
        assert_eq!(spar.replica_count(pair.1), before + 1);
    }

    #[test]
    fn machine_failure_promotes_or_recovers_every_view() {
        let (graph, topology) = setup();
        let budget = MemoryBudget::with_extra_percent(400, 50);
        let mut spar = SparEngine::new(&graph, &topology, budget, 9).unwrap();
        let victim = topology.servers()[0].machine();
        let mut out = Vec::new();
        spar.on_cluster_change(
            ClusterEvent::MachineDown { machine: victim },
            SimTime::ZERO,
            &mut out,
        );
        for user in graph.users() {
            assert!(spar.replica_count(user) >= 1, "view of {user} lost");
            assert!(!spar.replica_servers(user).contains(&victim));
            let primary = spar.primary_server(user).unwrap();
            assert_ne!(primary, victim);
            assert!(spar.replica_servers(user).contains(&primary));
            let proxy = spar.proxies[user.as_usize()];
            assert_ne!(proxy, victim);
        }
        assert!(out.iter().any(|m| m.involves_persistent()));
        // Reads and writes keep working; nothing is unreachable.
        let reader = graph
            .users()
            .find(|&u| !graph.followees(u).is_empty())
            .unwrap();
        let targets = graph.followees(reader).to_vec();
        out.clear();
        spar.handle_read(reader, &targets, SimTime::ZERO, &mut out);
        assert_eq!(spar.unreachable_reads(), 0);
        // The machine rejoins empty.
        spar.on_cluster_change(
            ClusterEvent::MachineUp { machine: victim },
            SimTime::ZERO,
            &mut out,
        );
        assert_eq!(spar.servers[0].views.len(), 0);
    }

    #[test]
    fn drain_and_add_rack_keep_spar_consistent() {
        let (graph, topology) = setup();
        let budget = MemoryBudget::with_extra_percent(400, 50);
        let mut spar = SparEngine::new(&graph, &topology, budget, 4).unwrap();
        let victim = topology.servers()[3].machine();
        let mut out = Vec::new();
        spar.on_cluster_change(
            ClusterEvent::DrainMachine { machine: victim },
            SimTime::ZERO,
            &mut out,
        );
        assert!(out.iter().all(|m| !m.involves_persistent()));
        for user in graph.users() {
            assert!(spar.replica_count(user) >= 1);
            assert!(!spar.replica_servers(user).contains(&victim));
        }
        let before_capacity = spar.memory_usage().capacity_slots;
        spar.on_cluster_change(ClusterEvent::AddRack, SimTime::ZERO, &mut out);
        assert!(spar.memory_usage().capacity_slots > before_capacity);
        assert_eq!(spar.servers.len(), spar.topology.server_count());
    }

    #[test]
    fn unknown_users_are_ignored() {
        let (graph, topology) = setup();
        let mut spar = SparEngine::new(&graph, &topology, MemoryBudget::exact(400), 7).unwrap();
        let mut out = Vec::new();
        spar.handle_read(
            UserId::new(9_999),
            &[UserId::new(0)],
            SimTime::ZERO,
            &mut out,
        );
        spar.handle_write(UserId::new(9_999), SimTime::ZERO, &mut out);
        assert!(out.is_empty());
        assert_eq!(spar.replica_count(UserId::new(9_999)), 0);
    }
}
