//! Baseline view-placement strategies from the paper's evaluation (§4.1):
//!
//! * [`StaticPlacement`] — the three static assignments:
//!   * **Random** — views hashed uniformly onto servers, ignoring both the
//!     social graph and the cluster topology (how Memcached/Redis place
//!     data). This is the normalisation baseline of every figure.
//!   * **METIS** — a balanced graph partition of the social graph, one part
//!     per server, parts assigned to servers at random.
//!   * **Hierarchical METIS (hMETIS)** — the partition is computed
//!     recursively along the cluster tree (intermediate switches → racks →
//!     servers), so separated friends still tend to share a sub-tree.
//! * [`SparEngine`] — SPAR (Pujol et al., SIGCOMM 2010) adapted to a memory
//!   budget: the views of a user's friends are co-located with her own view
//!   as long as storage is available, which makes reads local but multiplies
//!   the cost of writes.
//!
//! All engines implement [`PlacementEngine`](dynasore_types::PlacementEngine)
//! and can be driven by the simulator interchangeably with
//! [`DynaSoReEngine`](dynasore_core::DynaSoReEngine).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod spar;
mod static_engine;

pub use spar::SparEngine;
pub use static_engine::StaticPlacement;
