//! Static placements: Random, METIS and hierarchical METIS.

use dynasore_core::{placement::initial_assignment, InitialPlacement};
use dynasore_graph::SocialGraph;
use dynasore_topology::Topology;
use dynasore_types::{MachineId, Result, SimTime, UserId};
use dynasore_types::{MemoryUsage, Message, PlacementEngine, TrafficSink};

/// A static view placement: every user's view is stored on exactly one
/// server, chosen before the experiment starts and never changed.
///
/// "The random placement and graph partitioning approaches produce static
/// assignments of views to servers, which persists during the whole
/// experiment" (§4.4). The proxies of a user are deployed on the broker of
/// the rack hosting her view (§4.1).
///
/// # Example
///
/// ```
/// use dynasore_baselines::StaticPlacement;
/// use dynasore_graph::{GraphPreset, SocialGraph};
/// use dynasore_types::PlacementEngine;
/// use dynasore_topology::Topology;
///
/// let graph = SocialGraph::generate(GraphPreset::TwitterLike, 300, 1).unwrap();
/// let topology = Topology::tree(2, 2, 4, 1).unwrap();
/// let random = StaticPlacement::random(&graph, &topology, 7).unwrap();
/// assert_eq!(random.name(), "random");
/// let metis = StaticPlacement::metis(&graph, &topology, 7).unwrap();
/// assert_eq!(metis.name(), "metis");
/// ```
#[derive(Debug, Clone)]
pub struct StaticPlacement {
    name: String,
    topology: Topology,
    /// `servers[assignment[user]]` is the machine holding the user's view.
    assignment: Vec<u32>,
    servers: Vec<MachineId>,
    /// Broker executing each user's requests (the broker of the view's
    /// rack).
    proxies: Vec<MachineId>,
}

impl StaticPlacement {
    fn build(
        name: &str,
        placement: &InitialPlacement,
        graph: &SocialGraph,
        topology: &Topology,
    ) -> Result<Self> {
        let assignment = initial_assignment(placement, graph, topology)?;
        let servers: Vec<MachineId> = topology.servers().iter().map(|s| s.machine()).collect();
        let proxies = assignment
            .iter()
            .map(|&s| {
                topology
                    .local_broker(servers[s as usize])
                    .map(|b| b.machine())
            })
            .collect::<Result<Vec<_>>>()?;
        Ok(StaticPlacement {
            name: name.to_string(),
            topology: topology.clone(),
            assignment,
            servers,
            proxies,
        })
    }

    /// Uniform random placement (the paper's *Random* baseline).
    ///
    /// # Errors
    ///
    /// Returns an error if the graph is empty or the topology has no
    /// servers.
    pub fn random(graph: &SocialGraph, topology: &Topology, seed: u64) -> Result<Self> {
        StaticPlacement::build(
            "random",
            &InitialPlacement::Random { seed },
            graph,
            topology,
        )
    }

    /// Flat graph-partitioning placement (the paper's *METIS* baseline).
    ///
    /// # Errors
    ///
    /// Returns an error if the graph has fewer users than the cluster has
    /// servers.
    pub fn metis(graph: &SocialGraph, topology: &Topology, seed: u64) -> Result<Self> {
        StaticPlacement::build("metis", &InitialPlacement::Metis { seed }, graph, topology)
    }

    /// Hierarchical graph-partitioning placement (the paper's *hMETIS*
    /// baseline).
    ///
    /// # Errors
    ///
    /// Returns an error if the graph has fewer users than the cluster has
    /// servers.
    pub fn hierarchical_metis(graph: &SocialGraph, topology: &Topology, seed: u64) -> Result<Self> {
        StaticPlacement::build(
            "hmetis",
            &InitialPlacement::HierarchicalMetis { seed },
            graph,
            topology,
        )
    }

    /// The machine storing `user`'s view.
    pub fn server_of(&self, user: UserId) -> Option<MachineId> {
        self.assignment
            .get(user.as_usize())
            .map(|&s| self.servers[s as usize])
    }

    /// The broker executing `user`'s requests.
    pub fn proxy_of(&self, user: UserId) -> Option<MachineId> {
        self.proxies.get(user.as_usize()).copied()
    }

    /// The raw user → dense-server-index assignment.
    pub fn assignment(&self) -> &[u32] {
        &self.assignment
    }
}

impl PlacementEngine for StaticPlacement {
    fn name(&self) -> &str {
        &self.name
    }

    fn handle_read(
        &mut self,
        user: UserId,
        targets: &[UserId],
        _time: SimTime,
        out: &mut dyn TrafficSink,
    ) {
        let Some(broker) = self.proxy_of(user) else {
            return;
        };
        for &target in targets {
            let Some(server) = self.server_of(target) else {
                continue;
            };
            out.record(Message::application(broker, server));
            out.record(Message::application(server, broker));
        }
    }

    fn handle_write(&mut self, user: UserId, _time: SimTime, out: &mut dyn TrafficSink) {
        let (Some(broker), Some(server)) = (self.proxy_of(user), self.server_of(user)) else {
            return;
        };
        out.record(Message::application(broker, server));
    }

    fn replica_count(&self, user: UserId) -> usize {
        usize::from(user.as_usize() < self.assignment.len())
    }

    fn memory_usage(&self) -> MemoryUsage {
        MemoryUsage {
            used_slots: self.assignment.len(),
            capacity_slots: self.assignment.len(),
        }
    }
}

// `topology` is kept for parity with future extensions (e.g. rack-aware
// reporting); reference it so the field is clearly intentional.
impl StaticPlacement {
    /// The topology this placement was computed for.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynasore_graph::GraphPreset;
    use dynasore_types::MessageClass;

    fn setup() -> (SocialGraph, Topology) {
        let graph = SocialGraph::generate(GraphPreset::FacebookLike, 400, 2).unwrap();
        let topology = Topology::tree(2, 2, 5, 1).unwrap();
        (graph, topology)
    }

    #[test]
    fn every_user_has_a_server_and_a_local_proxy() {
        let (graph, topology) = setup();
        for engine in [
            StaticPlacement::random(&graph, &topology, 1).unwrap(),
            StaticPlacement::metis(&graph, &topology, 1).unwrap(),
            StaticPlacement::hierarchical_metis(&graph, &topology, 1).unwrap(),
        ] {
            for user in graph.users() {
                let server = engine.server_of(user).unwrap();
                let proxy = engine.proxy_of(user).unwrap();
                assert!(topology.is_server(server));
                assert!(topology.is_broker(proxy));
                assert_eq!(
                    topology.rack_of(server).unwrap(),
                    topology.rack_of(proxy).unwrap(),
                    "{}: proxy must be in the view's rack",
                    engine.name()
                );
                assert_eq!(engine.replica_count(user), 1);
            }
            assert_eq!(engine.memory_usage().used_slots, 400);
            assert_eq!(engine.replica_count(UserId::new(9_999)), 0);
            assert_eq!(engine.topology().server_count(), topology.server_count());
        }
    }

    #[test]
    fn reads_contact_the_target_servers() {
        let (graph, topology) = setup();
        let mut engine = StaticPlacement::random(&graph, &topology, 3).unwrap();
        let reader = UserId::new(0);
        let targets: Vec<UserId> = graph.followees(reader).to_vec();
        let mut out = Vec::new();
        engine.handle_read(reader, &targets, SimTime::ZERO, &mut out);
        // One request and one answer per target.
        assert_eq!(out.len(), 2 * targets.len());
        assert!(out.iter().all(|m| m.class == MessageClass::Application));
        out.clear();
        engine.handle_write(reader, SimTime::ZERO, &mut out);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn unknown_users_are_ignored() {
        let (graph, topology) = setup();
        let mut engine = StaticPlacement::metis(&graph, &topology, 3).unwrap();
        let mut out = Vec::new();
        engine.handle_read(
            UserId::new(9_999),
            &[UserId::new(1)],
            SimTime::ZERO,
            &mut out,
        );
        engine.handle_write(UserId::new(9_999), SimTime::ZERO, &mut out);
        assert!(out.is_empty());
        out.clear();
        engine.handle_read(
            UserId::new(0),
            &[UserId::new(9_999)],
            SimTime::ZERO,
            &mut out,
        );
        assert!(out.is_empty());
    }

    #[test]
    fn metis_keeps_more_reads_inside_racks_than_random() {
        let (graph, topology) = setup();
        let random = StaticPlacement::random(&graph, &topology, 5).unwrap();
        let metis = StaticPlacement::metis(&graph, &topology, 5).unwrap();
        let local_fraction = |engine: &StaticPlacement| {
            let mut local = 0usize;
            let mut total = 0usize;
            for user in graph.users() {
                let broker = engine.proxy_of(user).unwrap();
                for &t in graph.followees(user) {
                    let server = engine.server_of(t).unwrap();
                    total += 1;
                    if topology.rack_of(broker).unwrap() == topology.rack_of(server).unwrap() {
                        local += 1;
                    }
                }
            }
            local as f64 / total as f64
        };
        assert!(
            local_fraction(&metis) > local_fraction(&random),
            "graph partitioning should keep more reads rack-local"
        );
    }
}
