//! Static placements: Random, METIS and hierarchical METIS.

use dynasore_core::{placement::initial_assignment, InitialPlacement};
use dynasore_graph::SocialGraph;
use dynasore_topology::Topology;
use dynasore_types::{
    ClusterEvent, MachineId, Result, SimTime, SubtreeId, UserId, VIEW_TRANSFER_PROTOCOL_MESSAGES,
};
use dynasore_types::{MemoryUsage, Message, PlacementEngine, TrafficSink};

/// A static view placement: every user's view is stored on exactly one
/// server, chosen before the experiment starts and never changed.
///
/// "The random placement and graph partitioning approaches produce static
/// assignments of views to servers, which persists during the whole
/// experiment" (§4.4). The proxies of a user are deployed on the broker of
/// the rack hosting her view (§4.1).
///
/// # Example
///
/// ```
/// use dynasore_baselines::StaticPlacement;
/// use dynasore_graph::{GraphPreset, SocialGraph};
/// use dynasore_types::PlacementEngine;
/// use dynasore_topology::Topology;
///
/// let graph = SocialGraph::generate(GraphPreset::TwitterLike, 300, 1).unwrap();
/// let topology = Topology::tree(2, 2, 4, 1).unwrap();
/// let random = StaticPlacement::random(&graph, &topology, 7).unwrap();
/// assert_eq!(random.name(), "random");
/// let metis = StaticPlacement::metis(&graph, &topology, 7).unwrap();
/// assert_eq!(metis.name(), "metis");
/// ```
#[derive(Debug, Clone)]
pub struct StaticPlacement {
    name: String,
    topology: Topology,
    /// `servers[assignment[user]]` is the machine holding the user's view.
    assignment: Vec<u32>,
    servers: Vec<MachineId>,
    /// Broker executing each user's requests (the broker of the view's
    /// rack).
    proxies: Vec<MachineId>,
    /// Read targets that could not be served because every server was dead.
    unreachable_reads: u64,
}

impl StaticPlacement {
    fn build(
        name: &str,
        placement: &InitialPlacement,
        graph: &SocialGraph,
        topology: &Topology,
    ) -> Result<Self> {
        let assignment = initial_assignment(placement, graph, topology)?;
        let servers: Vec<MachineId> = topology.servers().iter().map(|s| s.machine()).collect();
        let proxies = assignment
            .iter()
            .map(|&s| {
                topology
                    .local_broker(servers[s as usize])
                    .map(|b| b.machine())
            })
            .collect::<Result<Vec<_>>>()?;
        Ok(StaticPlacement {
            name: name.to_string(),
            topology: topology.clone(),
            assignment,
            servers,
            proxies,
            unreachable_reads: 0,
        })
    }

    /// Uniform random placement (the paper's *Random* baseline).
    ///
    /// # Errors
    ///
    /// Returns an error if the graph is empty or the topology has no
    /// servers.
    pub fn random(graph: &SocialGraph, topology: &Topology, seed: u64) -> Result<Self> {
        StaticPlacement::build(
            "random",
            &InitialPlacement::Random { seed },
            graph,
            topology,
        )
    }

    /// Flat graph-partitioning placement (the paper's *METIS* baseline).
    ///
    /// # Errors
    ///
    /// Returns an error if the graph has fewer users than the cluster has
    /// servers.
    pub fn metis(graph: &SocialGraph, topology: &Topology, seed: u64) -> Result<Self> {
        StaticPlacement::build("metis", &InitialPlacement::Metis { seed }, graph, topology)
    }

    /// Hierarchical graph-partitioning placement (the paper's *hMETIS*
    /// baseline).
    ///
    /// # Errors
    ///
    /// Returns an error if the graph has fewer users than the cluster has
    /// servers.
    pub fn hierarchical_metis(graph: &SocialGraph, topology: &Topology, seed: u64) -> Result<Self> {
        StaticPlacement::build(
            "hmetis",
            &InitialPlacement::HierarchicalMetis { seed },
            graph,
            topology,
        )
    }

    /// The machine storing `user`'s view.
    pub fn server_of(&self, user: UserId) -> Option<MachineId> {
        self.assignment
            .get(user.as_usize())
            .map(|&s| self.servers[s as usize])
    }

    /// The broker executing `user`'s requests.
    pub fn proxy_of(&self, user: UserId) -> Option<MachineId> {
        self.proxies.get(user.as_usize()).copied()
    }

    /// The raw user → dense-server-index assignment.
    pub fn assignment(&self) -> &[u32] {
        &self.assignment
    }

    // --- Cluster dynamics --------------------------------------------------
    //
    // A static placement has no statistics to optimise with, so its
    // reactions are the minimum needed for correctness: views on failed
    // machines are re-filled from the persistent tier onto the live server
    // with the fewest views (drained machines transfer machine-to-machine
    // instead), proxies follow their views, and recovered machines simply
    // rejoin as empty re-assignment targets. Nothing ever moves *back*.

    /// Per-server view counts derived from the current assignment.
    fn server_loads(&self) -> Vec<u32> {
        let mut loads = vec![0u32; self.servers.len()];
        for &s in &self.assignment {
            loads[s as usize] += 1;
        }
        loads
    }

    /// The live server with the fewest assigned views (ties by index),
    /// excluding `exclude`.
    fn least_loaded_live(&self, loads: &[u32], exclude: Option<usize>) -> Option<usize> {
        let mut best: Option<(u32, usize)> = None;
        for (i, &load) in loads.iter().enumerate() {
            if Some(i) == exclude || !self.topology.is_live(self.servers[i]) {
                continue;
            }
            if best.map_or(true, |b| (load, i) < b) {
                best = Some((load, i));
            }
        }
        best.map(|(_, i)| i)
    }

    /// Moves every view assigned to a newly dead/draining server in
    /// `sources` to live servers, charging the refill either to the
    /// persistent tier (crash) or to the vacated machine (drain).
    fn reassign_views(
        &mut self,
        sources: &[usize],
        from_persistent: bool,
        out: &mut dyn TrafficSink,
    ) {
        let mut loads = self.server_loads();
        for user in 0..self.assignment.len() {
            let current = self.assignment[user] as usize;
            if !sources.contains(&current) {
                continue;
            }
            let Some(target) = self.least_loaded_live(&loads, None) else {
                continue; // Every server is dead; reads will be unreachable.
            };
            let old_machine = self.servers[current];
            let new_machine = self.servers[target];
            self.assignment[user] = target as u32;
            loads[current] -= 1;
            loads[target] += 1;
            self.proxies[user] = self
                .topology
                .closest_live_broker(new_machine)
                .map(|b| b.machine())
                .unwrap_or(new_machine);
            for _ in 0..VIEW_TRANSFER_PROTOCOL_MESSAGES {
                if from_persistent {
                    out.record(Message::persistent_fetch(new_machine));
                } else {
                    out.record(Message::protocol(old_machine, new_machine));
                }
            }
        }
        // Proxies hosted on dead brokers re-home even if their view stayed
        // put.
        for user in 0..self.proxies.len() {
            if !self.topology.is_live(self.proxies[user]) {
                if let Some(broker) = self.topology.closest_live_broker(self.proxies[user]) {
                    self.proxies[user] = broker.machine();
                }
            }
        }
    }

    /// Crash-fails or drains a batch of machines.
    fn take_down(&mut self, machines: &[MachineId], crash: bool, out: &mut dyn TrafficSink) {
        let mut dead_servers: Vec<usize> = Vec::new();
        let mut any = false;
        for &machine in machines {
            if self.topology.is_live(machine) && self.topology.set_live(machine, false).is_ok() {
                any = true;
                if let Some(sidx) = self.topology.server_ordinal(machine) {
                    dead_servers.push(sidx);
                }
            }
        }
        if any {
            self.reassign_views(&dead_servers, crash, out);
        }
    }

    /// Revives a batch of machines. The placement stays static — views that
    /// were reassigned do not move back — but views stranded on servers that
    /// died while *no* live target existed are re-filled from the persistent
    /// tier now that capacity has returned.
    fn bring_up(&mut self, machines: &[MachineId], out: &mut dyn TrafficSink) {
        let mut any = false;
        for &machine in machines {
            if self.topology.contains(machine)
                && !self.topology.is_live(machine)
                && !self.topology.is_retired(machine)
            {
                self.topology
                    .set_live(machine, true)
                    .expect("machine exists");
                any = true;
            }
        }
        if !any {
            return;
        }
        let stranded: Vec<usize> = (0..self.servers.len())
            .filter(|&i| !self.topology.is_live(self.servers[i]))
            .filter(|&i| self.assignment.iter().any(|&s| s as usize == i))
            .collect();
        if !stranded.is_empty() {
            self.reassign_views(&stranded, true, out);
        }
    }
}

impl PlacementEngine for StaticPlacement {
    fn name(&self) -> &str {
        &self.name
    }

    fn handle_read(
        &mut self,
        user: UserId,
        targets: &[UserId],
        _time: SimTime,
        out: &mut dyn TrafficSink,
    ) {
        let Some(broker) = self.proxy_of(user) else {
            return;
        };
        for &target in targets {
            let Some(server) = self.server_of(target) else {
                continue;
            };
            if !self.topology.is_live(server) {
                // Only possible while every server is dead and the view
                // could not be reassigned.
                self.unreachable_reads += 1;
                continue;
            }
            out.record(Message::application(broker, server));
            out.record(Message::application(server, broker));
        }
    }

    fn handle_write(&mut self, user: UserId, _time: SimTime, out: &mut dyn TrafficSink) {
        let (Some(broker), Some(server)) = (self.proxy_of(user), self.server_of(user)) else {
            return;
        };
        out.record(Message::application(broker, server));
    }

    fn on_cluster_change(
        &mut self,
        event: ClusterEvent,
        _time: SimTime,
        out: &mut dyn TrafficSink,
    ) {
        match event {
            ClusterEvent::MachineDown { machine } => self.take_down(&[machine], true, out),
            ClusterEvent::MachineUp { machine } => self.bring_up(&[machine], out),
            ClusterEvent::RackDown { rack } => {
                let machines = self
                    .topology
                    .machines_in_subtree(SubtreeId::Rack(rack.index()));
                self.take_down(&machines, true, out);
            }
            ClusterEvent::RackUp { rack } => {
                let machines = self
                    .topology
                    .machines_in_subtree(SubtreeId::Rack(rack.index()));
                self.bring_up(&machines, out);
            }
            ClusterEvent::DrainMachine { machine } => self.take_down(&[machine], false, out),
            ClusterEvent::AddRack => {
                if self.topology.add_rack().is_ok() {
                    self.servers = self
                        .topology
                        .servers()
                        .iter()
                        .map(|s| s.machine())
                        .collect();
                }
            }
            ClusterEvent::RemoveRack { rack } => {
                // Elastic shrink: evacuate the rack like a batch drain
                // (machine-to-machine transfers, no persistent refill), then
                // retire it so nothing can revive its machines.
                if self.topology.is_rack_retired(rack) || self.topology.active_rack_count() <= 1 {
                    return;
                }
                let machines = self
                    .topology
                    .machines_in_subtree(SubtreeId::Rack(rack.index()));
                self.take_down(&machines, false, out);
                let _ = self.topology.remove_rack(rack);
            }
        }
    }

    fn unreachable_reads(&self) -> u64 {
        self.unreachable_reads
    }

    fn replica_count(&self, user: UserId) -> usize {
        usize::from(user.as_usize() < self.assignment.len())
    }

    fn memory_usage(&self) -> MemoryUsage {
        MemoryUsage {
            used_slots: self.assignment.len(),
            capacity_slots: self.assignment.len(),
        }
    }
}

// `topology` is kept for parity with future extensions (e.g. rack-aware
// reporting); reference it so the field is clearly intentional.
impl StaticPlacement {
    /// The topology this placement was computed for.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynasore_graph::GraphPreset;
    use dynasore_types::MessageClass;

    fn setup() -> (SocialGraph, Topology) {
        let graph = SocialGraph::generate(GraphPreset::FacebookLike, 400, 2).unwrap();
        let topology = Topology::tree(2, 2, 5, 1).unwrap();
        (graph, topology)
    }

    #[test]
    fn every_user_has_a_server_and_a_local_proxy() {
        let (graph, topology) = setup();
        for engine in [
            StaticPlacement::random(&graph, &topology, 1).unwrap(),
            StaticPlacement::metis(&graph, &topology, 1).unwrap(),
            StaticPlacement::hierarchical_metis(&graph, &topology, 1).unwrap(),
        ] {
            for user in graph.users() {
                let server = engine.server_of(user).unwrap();
                let proxy = engine.proxy_of(user).unwrap();
                assert!(topology.is_server(server));
                assert!(topology.is_broker(proxy));
                assert_eq!(
                    topology.rack_of(server).unwrap(),
                    topology.rack_of(proxy).unwrap(),
                    "{}: proxy must be in the view's rack",
                    engine.name()
                );
                assert_eq!(engine.replica_count(user), 1);
            }
            assert_eq!(engine.memory_usage().used_slots, 400);
            assert_eq!(engine.replica_count(UserId::new(9_999)), 0);
            assert_eq!(engine.topology().server_count(), topology.server_count());
        }
    }

    #[test]
    fn reads_contact_the_target_servers() {
        let (graph, topology) = setup();
        let mut engine = StaticPlacement::random(&graph, &topology, 3).unwrap();
        let reader = UserId::new(0);
        let targets: Vec<UserId> = graph.followees(reader).to_vec();
        let mut out = Vec::new();
        engine.handle_read(reader, &targets, SimTime::ZERO, &mut out);
        // One request and one answer per target.
        assert_eq!(out.len(), 2 * targets.len());
        assert!(out.iter().all(|m| m.class == MessageClass::Application));
        out.clear();
        engine.handle_write(reader, SimTime::ZERO, &mut out);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn unknown_users_are_ignored() {
        let (graph, topology) = setup();
        let mut engine = StaticPlacement::metis(&graph, &topology, 3).unwrap();
        let mut out = Vec::new();
        engine.handle_read(
            UserId::new(9_999),
            &[UserId::new(1)],
            SimTime::ZERO,
            &mut out,
        );
        engine.handle_write(UserId::new(9_999), SimTime::ZERO, &mut out);
        assert!(out.is_empty());
        out.clear();
        engine.handle_read(
            UserId::new(0),
            &[UserId::new(9_999)],
            SimTime::ZERO,
            &mut out,
        );
        assert!(out.is_empty());
    }

    #[test]
    fn failures_reassign_views_to_live_servers() {
        let (graph, topology) = setup();
        let mut engine = StaticPlacement::random(&graph, &topology, 8).unwrap();
        let victim = topology.servers()[0].machine();
        let displaced: Vec<UserId> = graph
            .users()
            .filter(|&u| engine.server_of(u) == Some(victim))
            .collect();
        assert!(!displaced.is_empty());
        let mut out = Vec::new();
        engine.on_cluster_change(
            ClusterEvent::MachineDown { machine: victim },
            SimTime::ZERO,
            &mut out,
        );
        for &user in &displaced {
            let server = engine.server_of(user).unwrap();
            assert_ne!(server, victim);
            assert!(engine.topology.is_live(server));
            let proxy = engine.proxy_of(user).unwrap();
            assert!(engine.topology.is_live(proxy));
        }
        assert!(out.iter().any(|m| m.involves_persistent()));
        // Drains transfer machine-to-machine instead.
        let drained = topology.servers()[1].machine();
        out.clear();
        engine.on_cluster_change(
            ClusterEvent::DrainMachine { machine: drained },
            SimTime::ZERO,
            &mut out,
        );
        assert!(out.iter().all(|m| !m.involves_persistent()));
        for user in graph.users() {
            assert_ne!(engine.server_of(user), Some(drained));
        }
        // Recovery makes the machine a valid future target again; AddRack
        // extends the server table.
        engine.on_cluster_change(
            ClusterEvent::MachineUp { machine: victim },
            SimTime::ZERO,
            &mut out,
        );
        assert!(engine.topology.is_live(victim));
        let before = engine.servers.len();
        engine.on_cluster_change(ClusterEvent::AddRack, SimTime::ZERO, &mut out);
        assert!(engine.servers.len() > before);
        assert_eq!(engine.unreachable_reads(), 0);
    }

    #[test]
    fn total_outage_then_revival_recovers_stranded_views() {
        let (graph, topology) = setup();
        let mut engine = StaticPlacement::random(&graph, &topology, 11).unwrap();
        let mut out = Vec::new();
        // Kill every rack: no live target exists, views stay stranded.
        for rack in 0..topology.rack_count() as u32 {
            engine.on_cluster_change(
                ClusterEvent::RackDown {
                    rack: dynasore_types::RackId::new(rack),
                },
                SimTime::ZERO,
                &mut out,
            );
        }
        let reader = UserId::new(0);
        let targets: Vec<UserId> = graph.followees(reader).to_vec();
        engine.handle_read(reader, &targets, SimTime::ZERO, &mut out);
        assert!(engine.unreachable_reads() > 0, "total outage must be felt");

        // Revive a single server: every stranded view is re-filled from the
        // persistent tier onto it and reads work again.
        let survivor = topology.servers()[0].machine();
        out.clear();
        engine.on_cluster_change(
            ClusterEvent::MachineUp { machine: survivor },
            SimTime::ZERO,
            &mut out,
        );
        assert!(out.iter().any(|m| m.involves_persistent()));
        for user in graph.users() {
            assert_eq!(engine.server_of(user), Some(survivor));
        }
        let before = engine.unreachable_reads();
        engine.handle_read(reader, &targets, SimTime::ZERO, &mut out);
        assert_eq!(engine.unreachable_reads(), before);
    }

    #[test]
    fn metis_keeps_more_reads_inside_racks_than_random() {
        let (graph, topology) = setup();
        let random = StaticPlacement::random(&graph, &topology, 5).unwrap();
        let metis = StaticPlacement::metis(&graph, &topology, 5).unwrap();
        let local_fraction = |engine: &StaticPlacement| {
            let mut local = 0usize;
            let mut total = 0usize;
            for user in graph.users() {
                let broker = engine.proxy_of(user).unwrap();
                for &t in graph.followees(user) {
                    let server = engine.server_of(t).unwrap();
                    total += 1;
                    if topology.rack_of(broker).unwrap() == topology.rack_of(server).unwrap() {
                        local += 1;
                    }
                }
            }
            local as f64 / total as f64
        };
        assert!(
            local_fraction(&metis) > local_fraction(&random),
            "graph partitioning should keep more reads rack-local"
        );
    }
}
