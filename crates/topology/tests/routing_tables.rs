//! Property tests: the dense routing tables must agree with a naive
//! tree-walk reference on random topologies.
//!
//! The `Topology` constructor precomputes per-machine rack/intermediate
//! tables, contiguous per-subtree server/broker ranges and first-broker
//! tables; every hot-path query is answered from them. These properties
//! recompute each answer from first principles (the machine-numbering
//! invariants of the tree) and compare.

use dynasore_topology::{Topology, TopologyKind};
use dynasore_types::{MachineId, RackId, SubtreeId};
use proptest::prelude::*;

/// Naive reference: rack of a machine, from the machine-numbering rule
/// (machines are numbered densely, rack by rack).
fn naive_rack(machines_per_rack: usize, machine: MachineId) -> u32 {
    (machine.as_usize() / machines_per_rack) as u32
}

/// Naive reference: intermediate switch above a rack.
fn naive_intermediate(racks_per_intermediate: usize, rack: u32) -> u32 {
    rack / racks_per_intermediate as u32
}

/// Naive reference for the switch distance, walking up the tree level by
/// level.
fn naive_distance(
    machines_per_rack: usize,
    racks_per_intermediate: usize,
    a: MachineId,
    b: MachineId,
) -> u32 {
    if a == b {
        return 0;
    }
    let (ra, rb) = (
        naive_rack(machines_per_rack, a),
        naive_rack(machines_per_rack, b),
    );
    if ra == rb {
        return 1;
    }
    if naive_intermediate(racks_per_intermediate, ra)
        == naive_intermediate(racks_per_intermediate, rb)
    {
        return 3;
    }
    5
}

/// Naive reference for the coarse access origin (§3.2): sibling racks
/// individually, remote intermediates in aggregate.
fn naive_access_origin(
    machines_per_rack: usize,
    racks_per_intermediate: usize,
    server: MachineId,
    requester: MachineId,
) -> SubtreeId {
    let rs = naive_rack(machines_per_rack, server);
    let rr = naive_rack(machines_per_rack, requester);
    if naive_intermediate(racks_per_intermediate, rs)
        == naive_intermediate(racks_per_intermediate, rr)
    {
        SubtreeId::Rack(rr)
    } else {
        SubtreeId::Intermediate(naive_intermediate(racks_per_intermediate, rr))
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Table-based `distance`, `lowest_common_ancestor`, `access_origin`
    /// and `local_broker` agree with naive tree walks on random trees.
    #[test]
    fn tables_agree_with_naive_tree_walk(
        inter in 1usize..6,
        racks in 1usize..6,
        machines in 2usize..8,
        brokers in 1usize..3,
        a_pick in 0usize..10_000,
        b_pick in 0usize..10_000,
    ) {
        let brokers = brokers.min(machines - 1);
        let topo = Topology::tree(inter, racks, machines, brokers).unwrap();
        let n = topo.machine_count();
        let a = MachineId::new((a_pick % n) as u32);
        let b = MachineId::new((b_pick % n) as u32);

        // Distance (the pairwise hop class).
        prop_assert_eq!(
            topo.distance(a, b),
            naive_distance(machines, racks, a, b)
        );
        prop_assert_eq!(topo.distance(a, b), topo.distance(b, a));

        // Rack / intermediate tables.
        prop_assert_eq!(topo.rack_of(a).unwrap().index(), naive_rack(machines, a));
        prop_assert_eq!(
            topo.intermediate_of(a).unwrap(),
            naive_intermediate(racks, naive_rack(machines, a))
        );

        // LCA tier follows from the shared-prefix rule.
        let lca = topo.lowest_common_ancestor(a, b);
        let expected = if a == b {
            SubtreeId::Machine(a.index())
        } else if naive_rack(machines, a) == naive_rack(machines, b) {
            SubtreeId::Rack(naive_rack(machines, a))
        } else if naive_intermediate(racks, naive_rack(machines, a))
            == naive_intermediate(racks, naive_rack(machines, b))
        {
            SubtreeId::Intermediate(naive_intermediate(racks, naive_rack(machines, a)))
        } else {
            SubtreeId::Root
        };
        prop_assert_eq!(lca, expected);

        // Access origins.
        prop_assert_eq!(
            topo.access_origin(a, b),
            naive_access_origin(machines, racks, a, b)
        );

        // The local broker is the first broker of the machine's rack.
        let broker = topo.local_broker(a).unwrap();
        prop_assert_eq!(
            naive_rack(machines, broker.machine()),
            naive_rack(machines, a)
        );
        prop_assert!(topo.is_broker(broker.machine()));
        prop_assert_eq!(
            Some(broker),
            topo.first_broker_in_rack(RackId::new(naive_rack(machines, a)))
        );
    }

    /// The contiguous-range subtree slices contain exactly the servers and
    /// brokers a naive membership filter selects, in the same order.
    #[test]
    fn subtree_slices_match_membership_filter(
        inter in 1usize..5,
        racks in 1usize..5,
        machines in 2usize..7,
        pick in 0usize..10_000,
    ) {
        let topo = Topology::tree(inter, racks, machines, 1).unwrap();
        let n = topo.machine_count();
        let probe = MachineId::new((pick % n) as u32);
        let mut subtrees = vec![SubtreeId::Root, SubtreeId::Machine(probe.index())];
        for r in 0..topo.rack_count() as u32 {
            subtrees.push(SubtreeId::Rack(r));
        }
        for i in 0..topo.intermediate_count() as u32 {
            subtrees.push(SubtreeId::Intermediate(i));
        }
        for subtree in subtrees {
            let servers: Vec<_> = topo
                .servers()
                .iter()
                .copied()
                .filter(|s| topo.subtree_contains(subtree, s.machine()))
                .collect();
            prop_assert_eq!(
                topo.servers_in_subtree_slice(subtree),
                &servers[..],
                "servers under {}", subtree
            );
            let brokers: Vec<_> = topo
                .brokers()
                .iter()
                .copied()
                .filter(|b| topo.subtree_contains(subtree, b.machine()))
                .collect();
            prop_assert_eq!(
                topo.brokers_in_subtree_slice(subtree),
                &brokers[..],
                "brokers under {}", subtree
            );
        }
    }

    /// `record_path` charges exactly the switches `path_switches` lists, and
    /// the origin distance matches a switch count derived from the naive
    /// walk.
    #[test]
    fn record_path_matches_path_switches(
        inter in 1usize..5,
        racks in 1usize..5,
        machines in 2usize..7,
        a_pick in 0usize..10_000,
        b_pick in 0usize..10_000,
    ) {
        use dynasore_topology::TrafficAccount;
        use dynasore_types::{MessageClass, SimTime};

        let topo = Topology::tree(inter, racks, machines, 1).unwrap();
        let n = topo.machine_count();
        let a = MachineId::new((a_pick % n) as u32);
        let b = MachineId::new((b_pick % n) as u32);

        let mut by_path = TrafficAccount::hourly();
        by_path.record(
            &topo.path_switches(a, b),
            MessageClass::Application,
            SimTime::ZERO,
        );
        let mut by_record = TrafficAccount::hourly();
        topo.record_path(a, b, MessageClass::Application, SimTime::ZERO, &mut by_record);
        prop_assert_eq!(&by_path, &by_record);
        prop_assert_eq!(
            topo.path_switches(a, b).len() as u32,
            topo.distance(a, b)
        );
    }
}

/// The flat topology routes everything through the single switch and
/// reports machine-granular origins.
#[test]
fn flat_topology_tables() {
    let topo = Topology::flat(12).unwrap();
    assert_eq!(topo.kind(), TopologyKind::Flat);
    for i in 0..12u32 {
        let m = MachineId::new(i);
        assert_eq!(topo.rack_of(m).unwrap().index(), 0);
        assert_eq!(topo.local_broker(m).unwrap().machine(), m);
        assert_eq!(
            topo.access_origin(MachineId::new(0), m),
            SubtreeId::Machine(i)
        );
    }
    assert_eq!(topo.servers_in_subtree_slice(SubtreeId::Root).len(), 12);
    assert_eq!(topo.servers_in_subtree_slice(SubtreeId::Rack(0)).len(), 12);
    assert!(topo
        .servers_in_subtree_slice(SubtreeId::Intermediate(0))
        .is_empty());
}
