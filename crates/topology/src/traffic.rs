//! Per-switch traffic accounting.
//!
//! Every experiment in the paper reports traffic as the number of message
//! units traversing switches: Figure 3 and Figure 4 report the traffic of
//! the top switch, Tables 2 and 3 the average per-switch traffic of each
//! tier, and Figure 6 splits application from system (protocol) traffic.
//! [`TrafficAccount`] accumulates exactly those quantities.

use dynasore_types::{
    Latency, MessageClass, NetworkModel, SimTime, TrafficUnits, HOUR_SECS, NANOS_PER_SEC,
};

use crate::layout::{Switch, Tier};

/// Traffic accumulated at one tier, split by message class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TierTraffic {
    /// Units of application traffic (reads/writes and their answers).
    pub application: TrafficUnits,
    /// Units of protocol traffic (replica management, notifications).
    pub protocol: TrafficUnits,
}

impl TierTraffic {
    /// Application + protocol units.
    pub fn total(&self) -> TrafficUnits {
        self.application + self.protocol
    }

    fn add(&mut self, class: MessageClass, units: TrafficUnits) {
        match class {
            MessageClass::Application => self.application += units,
            MessageClass::Protocol => self.protocol += units,
        }
    }
}

/// Records the traffic of every switch of a topology over time.
///
/// # Example
///
/// ```
/// use dynasore_topology::{Switch, Tier, TrafficAccount};
/// use dynasore_types::{MessageClass, SimTime};
///
/// let mut account = TrafficAccount::new(3_600);
/// account.record(
///     &[Switch::Rack(0), Switch::Intermediate(0), Switch::Top],
///     MessageClass::Application,
///     SimTime::from_secs(10),
/// );
/// assert_eq!(account.tier_total(Tier::Top).application, 10);
/// assert_eq!(account.switch_total(Switch::Rack(0)), 10);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrafficAccount {
    bucket_secs: u64,
    tier_totals: [TierTraffic; 3],
    /// Per-switch totals in dense, index-addressed tables (grown on
    /// demand), so charging a message is pure array arithmetic — no hashing
    /// on the per-request accounting path.
    top_total: TrafficUnits,
    intermediate_totals: Vec<TrafficUnits>,
    rack_totals: Vec<TrafficUnits>,
    /// `series[bucket][tier]`, grown on demand.
    series: Vec<[TierTraffic; 3]>,
    messages: u64,
    /// The time model. With the default [`NetworkModel::infinite`] the queue
    /// state below is never touched and accounting is byte-identical to the
    /// historical unit-count behaviour.
    model: NetworkModel,
    /// Per-switch deterministic queues: the absolute instant (ns) until
    /// which each switch is busy transmitting already-accepted work. A
    /// message arriving earlier waits for the difference (M/D/1-style:
    /// deterministic service, drain happens implicitly as simulated time
    /// advances). Dense and grown on demand, like the totals above.
    top_busy_until: u64,
    inter_busy_until: Vec<u64>,
    rack_busy_until: Vec<u64>,
    /// Largest queueing delay any message experienced at a single switch.
    max_queue_delay_ns: u64,
    /// Largest backlog (queued traffic units) any switch held at a message
    /// arrival.
    max_backlog_units: u64,
}

impl TrafficAccount {
    /// Creates an account whose time series uses buckets of `bucket_secs`
    /// seconds (the paper plots hourly to daily curves; the default
    /// constructor [`TrafficAccount::hourly`] uses one hour).
    ///
    /// # Panics
    ///
    /// Panics if `bucket_secs` is zero.
    pub fn new(bucket_secs: u64) -> Self {
        TrafficAccount::with_model(bucket_secs, NetworkModel::infinite())
    }

    /// Creates an account that additionally tracks per-switch queueing under
    /// the given time model: [`TrafficAccount::record_timed`] then returns a
    /// nonzero latency sample per message and the account accumulates the
    /// maximum queueing delay and backlog any switch reached. With
    /// [`NetworkModel::infinite`] this is exactly [`TrafficAccount::new`].
    ///
    /// # Panics
    ///
    /// Panics if `bucket_secs` is zero.
    pub fn with_model(bucket_secs: u64, model: NetworkModel) -> Self {
        assert!(bucket_secs > 0, "bucket width must be positive");
        TrafficAccount {
            bucket_secs,
            tier_totals: [TierTraffic::default(); 3],
            top_total: 0,
            intermediate_totals: Vec::new(),
            rack_totals: Vec::new(),
            series: Vec::new(),
            messages: 0,
            model,
            top_busy_until: 0,
            inter_busy_until: Vec::new(),
            rack_busy_until: Vec::new(),
            max_queue_delay_ns: 0,
            max_backlog_units: 0,
        }
    }

    /// The time model this account charges queues under.
    pub fn model(&self) -> NetworkModel {
        self.model
    }

    fn add_switch(&mut self, switch: Switch, units: TrafficUnits) {
        match switch {
            Switch::Top => self.top_total += units,
            Switch::Intermediate(i) => {
                let i = i as usize;
                if i >= self.intermediate_totals.len() {
                    self.intermediate_totals.resize(i + 1, 0);
                }
                self.intermediate_totals[i] += units;
            }
            Switch::Rack(r) => {
                let r = r as usize;
                if r >= self.rack_totals.len() {
                    self.rack_totals.resize(r + 1, 0);
                }
                self.rack_totals[r] += units;
            }
        }
    }

    /// Creates an account with one-hour buckets.
    pub fn hourly() -> Self {
        TrafficAccount::new(HOUR_SECS)
    }

    /// The width of a time-series bucket, in seconds.
    pub fn bucket_secs(&self) -> u64 {
        self.bucket_secs
    }

    /// Records one message of `class` traversing the given switches at time
    /// `time`. A message with an empty path (local delivery) costs nothing.
    pub fn record(&mut self, path: &[Switch], class: MessageClass, time: SimTime) {
        self.record_timed(path, class, time);
    }

    /// Records one message and returns its end-to-end latency sample: per
    /// hop, the fixed forwarding latency plus the wait behind the switch's
    /// queued work plus the message's own transmission time. With the
    /// infinite model every sample is [`Latency::ZERO`] and the queue state
    /// is untouched, so unit-count accounting stays byte-identical.
    ///
    /// Hops are charged in path order: the arrival time at hop *k* includes
    /// the delays accumulated at hops *0..k*, so a congested rack switch
    /// delays the message's arrival at the intermediate tier, exactly as a
    /// store-and-forward fabric would.
    pub fn record_timed(&mut self, path: &[Switch], class: MessageClass, time: SimTime) -> Latency {
        if path.is_empty() {
            return Latency::ZERO;
        }
        self.messages += 1;
        let units = class.units();
        let bucket = time.bucket(self.bucket_secs) as usize;
        if bucket >= self.series.len() {
            self.series.resize(bucket + 1, [TierTraffic::default(); 3]);
        }
        let infinite = self.model.is_infinite();
        let hop_ns = self.model.hop_latency.as_nanos();
        let base_ns = time.as_secs().saturating_mul(NANOS_PER_SEC);
        let mut latency_ns = 0u64;
        for &switch in path {
            let tier = switch.tier().index();
            self.tier_totals[tier].add(class, units);
            self.series[bucket][tier].add(class, units);
            self.add_switch(switch, units);
            if infinite {
                continue;
            }
            latency_ns += hop_ns;
            let ns_per_unit = match switch.tier() {
                Tier::Top => self.model.top_service.ns_per_unit(),
                Tier::Intermediate => self.model.intermediate_service.ns_per_unit(),
                Tier::Rack => self.model.rack_service.ns_per_unit(),
            };
            if ns_per_unit == 0 {
                continue;
            }
            let arrival = base_ns + latency_ns;
            let busy_until = self.busy_slot(switch);
            let start = (*busy_until).max(arrival);
            let wait = start - arrival;
            let service = units * ns_per_unit;
            *busy_until = start + service;
            latency_ns += wait + service;
            if wait > self.max_queue_delay_ns {
                self.max_queue_delay_ns = wait;
            }
            let backlog_units = wait / ns_per_unit;
            if backlog_units > self.max_backlog_units {
                self.max_backlog_units = backlog_units;
            }
        }
        Latency::from_nanos(latency_ns)
    }

    fn busy_slot(&mut self, switch: Switch) -> &mut u64 {
        match switch {
            Switch::Top => &mut self.top_busy_until,
            Switch::Intermediate(i) => {
                let i = i as usize;
                if i >= self.inter_busy_until.len() {
                    self.inter_busy_until.resize(i + 1, 0);
                }
                &mut self.inter_busy_until[i]
            }
            Switch::Rack(r) => {
                let r = r as usize;
                if r >= self.rack_busy_until.len() {
                    self.rack_busy_until.resize(r + 1, 0);
                }
                &mut self.rack_busy_until[r]
            }
        }
    }

    /// The queueing delay a message arriving at `switch` at `time` would
    /// experience before transmission begins: the switch's pending work not
    /// yet drained at that instant. The congestion signal placement
    /// decisions consume. Always zero under the infinite model.
    pub fn queued_delay(&self, switch: Switch, time: SimTime) -> Latency {
        let busy_until = match switch {
            Switch::Top => self.top_busy_until,
            Switch::Intermediate(i) => self.inter_busy_until.get(i as usize).copied().unwrap_or(0),
            Switch::Rack(r) => self.rack_busy_until.get(r as usize).copied().unwrap_or(0),
        };
        let now = time.as_secs().saturating_mul(NANOS_PER_SEC);
        Latency::from_nanos(busy_until.saturating_sub(now))
    }

    /// Largest queueing delay any message experienced at a single switch
    /// over the account's lifetime. Zero under the infinite model.
    pub fn max_queue_delay(&self) -> Latency {
        Latency::from_nanos(self.max_queue_delay_ns)
    }

    /// Largest backlog — queued traffic units awaiting transmission — any
    /// switch held when a message arrived. Zero under the infinite model.
    pub fn max_switch_backlog(&self) -> u64 {
        self.max_backlog_units
    }

    /// Number of (non-local) messages recorded.
    pub fn message_count(&self) -> u64 {
        self.messages
    }

    /// Total traffic accumulated at a tier (summed over all its switches).
    pub fn tier_total(&self, tier: Tier) -> TierTraffic {
        self.tier_totals[tier.index()]
    }

    /// Total traffic through one specific switch.
    pub fn switch_total(&self, switch: Switch) -> TrafficUnits {
        match switch {
            Switch::Top => self.top_total,
            Switch::Intermediate(i) => self
                .intermediate_totals
                .get(i as usize)
                .copied()
                .unwrap_or(0),
            Switch::Rack(r) => self.rack_totals.get(r as usize).copied().unwrap_or(0),
        }
    }

    /// Average per-switch traffic of a tier, given how many switches that
    /// tier has in the topology (Tables 2 and 3 report this quantity).
    pub fn tier_average(&self, tier: Tier, switch_count: usize) -> f64 {
        if switch_count == 0 {
            return 0.0;
        }
        self.tier_total(tier).total() as f64 / switch_count as f64
    }

    /// The per-bucket time series of a tier. Buckets with no traffic are
    /// zero-filled up to the last bucket that saw any message.
    pub fn tier_series(&self, tier: Tier) -> Vec<TierTraffic> {
        self.series.iter().map(|b| b[tier.index()]).collect()
    }

    /// Time series of the top switch only, the quantity plotted by
    /// Figures 4 and 6.
    pub fn top_switch_series(&self) -> Vec<TierTraffic> {
        self.tier_series(Tier::Top)
    }

    /// Grand total over every switch and class.
    pub fn grand_total(&self) -> TrafficUnits {
        self.tier_totals.iter().map(TierTraffic::total).sum()
    }

    /// Merges another account (same bucket width and model) into this one.
    /// Queue state merges conservatively: each switch keeps the later
    /// busy-until instant, and the maxima keep the larger observation.
    ///
    /// # Panics
    ///
    /// Panics if the bucket widths or network models differ.
    pub fn merge(&mut self, other: &TrafficAccount) {
        assert_eq!(
            self.bucket_secs, other.bucket_secs,
            "cannot merge accounts with different bucket widths"
        );
        assert_eq!(
            self.model, other.model,
            "cannot merge accounts with different network models"
        );
        for tier in 0..3 {
            self.tier_totals[tier].application += other.tier_totals[tier].application;
            self.tier_totals[tier].protocol += other.tier_totals[tier].protocol;
        }
        self.top_total += other.top_total;
        if other.intermediate_totals.len() > self.intermediate_totals.len() {
            self.intermediate_totals
                .resize(other.intermediate_totals.len(), 0);
        }
        for (i, units) in other.intermediate_totals.iter().enumerate() {
            self.intermediate_totals[i] += units;
        }
        if other.rack_totals.len() > self.rack_totals.len() {
            self.rack_totals.resize(other.rack_totals.len(), 0);
        }
        for (r, units) in other.rack_totals.iter().enumerate() {
            self.rack_totals[r] += units;
        }
        if other.series.len() > self.series.len() {
            self.series
                .resize(other.series.len(), [TierTraffic::default(); 3]);
        }
        for (bucket, tiers) in other.series.iter().enumerate() {
            for (tier, units) in tiers.iter().enumerate() {
                self.series[bucket][tier].application += units.application;
                self.series[bucket][tier].protocol += units.protocol;
            }
        }
        self.messages += other.messages;
        self.top_busy_until = self.top_busy_until.max(other.top_busy_until);
        if other.inter_busy_until.len() > self.inter_busy_until.len() {
            self.inter_busy_until
                .resize(other.inter_busy_until.len(), 0);
        }
        for (i, &busy) in other.inter_busy_until.iter().enumerate() {
            self.inter_busy_until[i] = self.inter_busy_until[i].max(busy);
        }
        if other.rack_busy_until.len() > self.rack_busy_until.len() {
            self.rack_busy_until.resize(other.rack_busy_until.len(), 0);
        }
        for (r, &busy) in other.rack_busy_until.iter().enumerate() {
            self.rack_busy_until[r] = self.rack_busy_until[r].max(busy);
        }
        self.max_queue_delay_ns = self.max_queue_delay_ns.max(other.max_queue_delay_ns);
        self.max_backlog_units = self.max_backlog_units.max(other.max_backlog_units);
    }
}

impl Default for TrafficAccount {
    fn default() -> Self {
        TrafficAccount::hourly()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cross_cluster_path() -> Vec<Switch> {
        vec![
            Switch::Rack(0),
            Switch::Intermediate(0),
            Switch::Top,
            Switch::Intermediate(1),
            Switch::Rack(5),
        ]
    }

    #[test]
    fn record_accumulates_per_tier_and_switch() {
        let mut acc = TrafficAccount::hourly();
        acc.record(
            &cross_cluster_path(),
            MessageClass::Application,
            SimTime::ZERO,
        );
        acc.record(&[Switch::Rack(0)], MessageClass::Protocol, SimTime::ZERO);

        assert_eq!(acc.message_count(), 2);
        assert_eq!(acc.tier_total(Tier::Top).application, 10);
        assert_eq!(acc.tier_total(Tier::Top).protocol, 0);
        // Two intermediate switches were crossed by the application message.
        assert_eq!(acc.tier_total(Tier::Intermediate).application, 20);
        assert_eq!(acc.tier_total(Tier::Rack).application, 20);
        assert_eq!(acc.tier_total(Tier::Rack).protocol, 1);
        assert_eq!(acc.switch_total(Switch::Rack(0)), 11);
        assert_eq!(acc.switch_total(Switch::Rack(5)), 10);
        assert_eq!(acc.switch_total(Switch::Rack(9)), 0);
        assert_eq!(acc.grand_total(), 51);
    }

    #[test]
    fn local_messages_cost_nothing() {
        let mut acc = TrafficAccount::hourly();
        acc.record(&[], MessageClass::Application, SimTime::ZERO);
        assert_eq!(acc.message_count(), 0);
        assert_eq!(acc.grand_total(), 0);
    }

    #[test]
    fn series_is_bucketed_by_time() {
        let mut acc = TrafficAccount::new(60);
        acc.record(
            &[Switch::Top],
            MessageClass::Application,
            SimTime::from_secs(30),
        );
        acc.record(
            &[Switch::Top],
            MessageClass::Application,
            SimTime::from_secs(90),
        );
        acc.record(
            &[Switch::Top],
            MessageClass::Protocol,
            SimTime::from_secs(95),
        );
        let series = acc.top_switch_series();
        assert_eq!(series.len(), 2);
        assert_eq!(series[0].application, 10);
        assert_eq!(series[1].application, 10);
        assert_eq!(series[1].protocol, 1);
        assert_eq!(acc.bucket_secs(), 60);
    }

    #[test]
    fn tier_average_divides_by_switch_count() {
        let mut acc = TrafficAccount::hourly();
        acc.record(
            &cross_cluster_path(),
            MessageClass::Application,
            SimTime::ZERO,
        );
        // 20 units over 2 intermediate switches observed, but the cluster has
        // 5 intermediate switches in total.
        assert!((acc.tier_average(Tier::Intermediate, 5) - 4.0).abs() < 1e-9);
        assert_eq!(acc.tier_average(Tier::Top, 0), 0.0);
    }

    #[test]
    fn merge_combines_everything() {
        let mut a = TrafficAccount::new(60);
        let mut b = TrafficAccount::new(60);
        a.record(
            &[Switch::Top],
            MessageClass::Application,
            SimTime::from_secs(10),
        );
        b.record(
            &[Switch::Top],
            MessageClass::Protocol,
            SimTime::from_secs(70),
        );
        b.record(
            &[Switch::Rack(1)],
            MessageClass::Application,
            SimTime::from_secs(70),
        );
        a.merge(&b);
        assert_eq!(a.message_count(), 3);
        assert_eq!(a.tier_total(Tier::Top).application, 10);
        assert_eq!(a.tier_total(Tier::Top).protocol, 1);
        assert_eq!(a.switch_total(Switch::Rack(1)), 10);
        assert_eq!(a.top_switch_series().len(), 2);
    }

    #[test]
    #[should_panic(expected = "different bucket widths")]
    fn merge_rejects_mismatched_buckets() {
        let mut a = TrafficAccount::new(60);
        let b = TrafficAccount::new(120);
        a.merge(&b);
    }

    #[test]
    fn infinite_model_keeps_unit_accounting_byte_identical() {
        let mut plain = TrafficAccount::hourly();
        let mut modelled = TrafficAccount::with_model(HOUR_SECS, NetworkModel::infinite());
        for t in [0u64, 30, 4_000] {
            plain.record(
                &cross_cluster_path(),
                MessageClass::Application,
                SimTime::from_secs(t),
            );
            let latency = modelled.record_timed(
                &cross_cluster_path(),
                MessageClass::Application,
                SimTime::from_secs(t),
            );
            assert_eq!(latency, Latency::ZERO);
        }
        assert_eq!(plain, modelled);
        assert_eq!(modelled.max_queue_delay(), Latency::ZERO);
        assert_eq!(modelled.max_switch_backlog(), 0);
        assert_eq!(
            modelled.queued_delay(Switch::Top, SimTime::ZERO),
            Latency::ZERO
        );
    }

    #[test]
    fn finite_model_charges_queues_deterministically() {
        // 1 unit takes 1 ms at every tier; 1 µs per hop.
        let model = NetworkModel {
            top_service: dynasore_types::Bandwidth::units_per_sec(1_000),
            intermediate_service: dynasore_types::Bandwidth::units_per_sec(1_000),
            rack_service: dynasore_types::Bandwidth::units_per_sec(1_000),
            hop_latency: Latency::from_micros(1),
            collapse_threshold: Latency::from_secs(1),
        };
        let mut acc = TrafficAccount::with_model(HOUR_SECS, model);
        // First protocol message through an idle top switch: 1 hop latency
        // plus 1 unit × 1 ms service, no wait.
        let first = acc.record_timed(&[Switch::Top], MessageClass::Protocol, SimTime::ZERO);
        assert_eq!(first, Latency::from_nanos(1_000 + 1_000_000));
        // Second message at the same instant queues behind the first: its
        // arrival (after the hop) is at 1 µs, the switch is busy until
        // 1 001 µs, so it waits exactly one service quantum.
        let second = acc.record_timed(&[Switch::Top], MessageClass::Protocol, SimTime::ZERO);
        assert_eq!(second, Latency::from_nanos(1_000 + 1_000_000 + 1_000_000));
        assert_eq!(acc.max_queue_delay(), Latency::from_millis(1));
        assert_eq!(acc.max_switch_backlog(), 1); // one full unit was queued
        assert!(acc.queued_delay(Switch::Top, SimTime::ZERO) > Latency::ZERO);
        // After the queue drained (2 ms of work, ask at t=1s) delay is zero.
        assert_eq!(
            acc.queued_delay(Switch::Top, SimTime::from_secs(1)),
            Latency::ZERO
        );
        // Unit totals are charged exactly as in unit mode.
        assert_eq!(acc.tier_total(Tier::Top).protocol, 2);
        assert_eq!(acc.message_count(), 2);
        // Determinism: an identical replay produces an identical account.
        let mut replay = TrafficAccount::with_model(HOUR_SECS, model);
        replay.record_timed(&[Switch::Top], MessageClass::Protocol, SimTime::ZERO);
        replay.record_timed(&[Switch::Top], MessageClass::Protocol, SimTime::ZERO);
        assert_eq!(acc, replay);
    }

    #[test]
    fn upstream_congestion_delays_downstream_arrival() {
        // Rack switch is slow (1 unit = 1 s), top switch is fast. A message
        // crossing rack → top arrives at the top only after the rack's
        // service completes, so a message right behind it on the same rack
        // still finds the top switch idle.
        let model = NetworkModel {
            top_service: dynasore_types::Bandwidth::units_per_sec(1_000_000),
            intermediate_service: dynasore_types::Bandwidth::INFINITE,
            rack_service: dynasore_types::Bandwidth::units_per_sec(1),
            hop_latency: Latency::ZERO,
            collapse_threshold: Latency::from_secs(1),
        };
        let mut acc = TrafficAccount::with_model(HOUR_SECS, model);
        let path = [Switch::Rack(0), Switch::Top];
        let first = acc.record_timed(&path, MessageClass::Protocol, SimTime::ZERO);
        // 1 s rack service + 1 µs top service.
        assert_eq!(first, Latency::from_nanos(NANOS_PER_SEC + 1_000));
        let second = acc.record_timed(&path, MessageClass::Protocol, SimTime::ZERO);
        // Waits 1 s behind the first at the rack, transmits for 1 s, then
        // reaches the top at t=2s — after the first cleared it: no top wait.
        assert_eq!(second, Latency::from_nanos(2 * NANOS_PER_SEC + 1_000));
        assert_eq!(acc.max_switch_backlog(), 1);
    }

    #[test]
    #[should_panic(expected = "different network models")]
    fn merge_rejects_mismatched_models() {
        let mut a = TrafficAccount::with_model(60, NetworkModel::datacenter());
        let b = TrafficAccount::new(60);
        a.merge(&b);
    }

    #[test]
    fn merge_keeps_later_queue_state() {
        let model = NetworkModel {
            top_service: dynasore_types::Bandwidth::units_per_sec(1),
            intermediate_service: dynasore_types::Bandwidth::INFINITE,
            rack_service: dynasore_types::Bandwidth::INFINITE,
            hop_latency: Latency::ZERO,
            collapse_threshold: Latency::from_secs(1),
        };
        let mut a = TrafficAccount::with_model(60, model);
        let mut b = TrafficAccount::with_model(60, model);
        a.record_timed(&[Switch::Top], MessageClass::Protocol, SimTime::ZERO);
        b.record_timed(
            &[Switch::Top],
            MessageClass::Protocol,
            SimTime::from_secs(5),
        );
        b.record_timed(
            &[Switch::Top],
            MessageClass::Protocol,
            SimTime::from_secs(5),
        );
        a.merge(&b);
        // b's top queue extends to t=7s, later than a's 1s.
        assert_eq!(
            a.queued_delay(Switch::Top, SimTime::from_secs(5)),
            Latency::from_secs(2)
        );
        assert_eq!(a.max_queue_delay(), b.max_queue_delay());
    }

    #[test]
    fn tier_traffic_total() {
        let t = TierTraffic {
            application: 30,
            protocol: 4,
        };
        assert_eq!(t.total(), 34);
        assert_eq!(TierTraffic::default().total(), 0);
    }
}
