//! Per-switch traffic accounting.
//!
//! Every experiment in the paper reports traffic as the number of message
//! units traversing switches: Figure 3 and Figure 4 report the traffic of
//! the top switch, Tables 2 and 3 the average per-switch traffic of each
//! tier, and Figure 6 splits application from system (protocol) traffic.
//! [`TrafficAccount`] accumulates exactly those quantities.

use dynasore_types::{MessageClass, SimTime, TrafficUnits, HOUR_SECS};

use crate::layout::{Switch, Tier};

/// Traffic accumulated at one tier, split by message class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TierTraffic {
    /// Units of application traffic (reads/writes and their answers).
    pub application: TrafficUnits,
    /// Units of protocol traffic (replica management, notifications).
    pub protocol: TrafficUnits,
}

impl TierTraffic {
    /// Application + protocol units.
    pub fn total(&self) -> TrafficUnits {
        self.application + self.protocol
    }

    fn add(&mut self, class: MessageClass, units: TrafficUnits) {
        match class {
            MessageClass::Application => self.application += units,
            MessageClass::Protocol => self.protocol += units,
        }
    }
}

/// Records the traffic of every switch of a topology over time.
///
/// # Example
///
/// ```
/// use dynasore_topology::{Switch, Tier, TrafficAccount};
/// use dynasore_types::{MessageClass, SimTime};
///
/// let mut account = TrafficAccount::new(3_600);
/// account.record(
///     &[Switch::Rack(0), Switch::Intermediate(0), Switch::Top],
///     MessageClass::Application,
///     SimTime::from_secs(10),
/// );
/// assert_eq!(account.tier_total(Tier::Top).application, 10);
/// assert_eq!(account.switch_total(Switch::Rack(0)), 10);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrafficAccount {
    bucket_secs: u64,
    tier_totals: [TierTraffic; 3],
    /// Per-switch totals in dense, index-addressed tables (grown on
    /// demand), so charging a message is pure array arithmetic — no hashing
    /// on the per-request accounting path.
    top_total: TrafficUnits,
    intermediate_totals: Vec<TrafficUnits>,
    rack_totals: Vec<TrafficUnits>,
    /// `series[bucket][tier]`, grown on demand.
    series: Vec<[TierTraffic; 3]>,
    messages: u64,
}

impl TrafficAccount {
    /// Creates an account whose time series uses buckets of `bucket_secs`
    /// seconds (the paper plots hourly to daily curves; the default
    /// constructor [`TrafficAccount::hourly`] uses one hour).
    ///
    /// # Panics
    ///
    /// Panics if `bucket_secs` is zero.
    pub fn new(bucket_secs: u64) -> Self {
        assert!(bucket_secs > 0, "bucket width must be positive");
        TrafficAccount {
            bucket_secs,
            tier_totals: [TierTraffic::default(); 3],
            top_total: 0,
            intermediate_totals: Vec::new(),
            rack_totals: Vec::new(),
            series: Vec::new(),
            messages: 0,
        }
    }

    fn add_switch(&mut self, switch: Switch, units: TrafficUnits) {
        match switch {
            Switch::Top => self.top_total += units,
            Switch::Intermediate(i) => {
                let i = i as usize;
                if i >= self.intermediate_totals.len() {
                    self.intermediate_totals.resize(i + 1, 0);
                }
                self.intermediate_totals[i] += units;
            }
            Switch::Rack(r) => {
                let r = r as usize;
                if r >= self.rack_totals.len() {
                    self.rack_totals.resize(r + 1, 0);
                }
                self.rack_totals[r] += units;
            }
        }
    }

    /// Creates an account with one-hour buckets.
    pub fn hourly() -> Self {
        TrafficAccount::new(HOUR_SECS)
    }

    /// The width of a time-series bucket, in seconds.
    pub fn bucket_secs(&self) -> u64 {
        self.bucket_secs
    }

    /// Records one message of `class` traversing the given switches at time
    /// `time`. A message with an empty path (local delivery) costs nothing.
    pub fn record(&mut self, path: &[Switch], class: MessageClass, time: SimTime) {
        if path.is_empty() {
            return;
        }
        self.messages += 1;
        let units = class.units();
        let bucket = time.bucket(self.bucket_secs) as usize;
        if bucket >= self.series.len() {
            self.series.resize(bucket + 1, [TierTraffic::default(); 3]);
        }
        for &switch in path {
            let tier = switch.tier().index();
            self.tier_totals[tier].add(class, units);
            self.series[bucket][tier].add(class, units);
            self.add_switch(switch, units);
        }
    }

    /// Number of (non-local) messages recorded.
    pub fn message_count(&self) -> u64 {
        self.messages
    }

    /// Total traffic accumulated at a tier (summed over all its switches).
    pub fn tier_total(&self, tier: Tier) -> TierTraffic {
        self.tier_totals[tier.index()]
    }

    /// Total traffic through one specific switch.
    pub fn switch_total(&self, switch: Switch) -> TrafficUnits {
        match switch {
            Switch::Top => self.top_total,
            Switch::Intermediate(i) => self
                .intermediate_totals
                .get(i as usize)
                .copied()
                .unwrap_or(0),
            Switch::Rack(r) => self.rack_totals.get(r as usize).copied().unwrap_or(0),
        }
    }

    /// Average per-switch traffic of a tier, given how many switches that
    /// tier has in the topology (Tables 2 and 3 report this quantity).
    pub fn tier_average(&self, tier: Tier, switch_count: usize) -> f64 {
        if switch_count == 0 {
            return 0.0;
        }
        self.tier_total(tier).total() as f64 / switch_count as f64
    }

    /// The per-bucket time series of a tier. Buckets with no traffic are
    /// zero-filled up to the last bucket that saw any message.
    pub fn tier_series(&self, tier: Tier) -> Vec<TierTraffic> {
        self.series.iter().map(|b| b[tier.index()]).collect()
    }

    /// Time series of the top switch only, the quantity plotted by
    /// Figures 4 and 6.
    pub fn top_switch_series(&self) -> Vec<TierTraffic> {
        self.tier_series(Tier::Top)
    }

    /// Grand total over every switch and class.
    pub fn grand_total(&self) -> TrafficUnits {
        self.tier_totals.iter().map(TierTraffic::total).sum()
    }

    /// Merges another account (same bucket width) into this one.
    ///
    /// # Panics
    ///
    /// Panics if the bucket widths differ.
    pub fn merge(&mut self, other: &TrafficAccount) {
        assert_eq!(
            self.bucket_secs, other.bucket_secs,
            "cannot merge accounts with different bucket widths"
        );
        for tier in 0..3 {
            self.tier_totals[tier].application += other.tier_totals[tier].application;
            self.tier_totals[tier].protocol += other.tier_totals[tier].protocol;
        }
        self.top_total += other.top_total;
        if other.intermediate_totals.len() > self.intermediate_totals.len() {
            self.intermediate_totals
                .resize(other.intermediate_totals.len(), 0);
        }
        for (i, units) in other.intermediate_totals.iter().enumerate() {
            self.intermediate_totals[i] += units;
        }
        if other.rack_totals.len() > self.rack_totals.len() {
            self.rack_totals.resize(other.rack_totals.len(), 0);
        }
        for (r, units) in other.rack_totals.iter().enumerate() {
            self.rack_totals[r] += units;
        }
        if other.series.len() > self.series.len() {
            self.series
                .resize(other.series.len(), [TierTraffic::default(); 3]);
        }
        for (bucket, tiers) in other.series.iter().enumerate() {
            for (tier, units) in tiers.iter().enumerate() {
                self.series[bucket][tier].application += units.application;
                self.series[bucket][tier].protocol += units.protocol;
            }
        }
        self.messages += other.messages;
    }
}

impl Default for TrafficAccount {
    fn default() -> Self {
        TrafficAccount::hourly()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cross_cluster_path() -> Vec<Switch> {
        vec![
            Switch::Rack(0),
            Switch::Intermediate(0),
            Switch::Top,
            Switch::Intermediate(1),
            Switch::Rack(5),
        ]
    }

    #[test]
    fn record_accumulates_per_tier_and_switch() {
        let mut acc = TrafficAccount::hourly();
        acc.record(
            &cross_cluster_path(),
            MessageClass::Application,
            SimTime::ZERO,
        );
        acc.record(&[Switch::Rack(0)], MessageClass::Protocol, SimTime::ZERO);

        assert_eq!(acc.message_count(), 2);
        assert_eq!(acc.tier_total(Tier::Top).application, 10);
        assert_eq!(acc.tier_total(Tier::Top).protocol, 0);
        // Two intermediate switches were crossed by the application message.
        assert_eq!(acc.tier_total(Tier::Intermediate).application, 20);
        assert_eq!(acc.tier_total(Tier::Rack).application, 20);
        assert_eq!(acc.tier_total(Tier::Rack).protocol, 1);
        assert_eq!(acc.switch_total(Switch::Rack(0)), 11);
        assert_eq!(acc.switch_total(Switch::Rack(5)), 10);
        assert_eq!(acc.switch_total(Switch::Rack(9)), 0);
        assert_eq!(acc.grand_total(), 51);
    }

    #[test]
    fn local_messages_cost_nothing() {
        let mut acc = TrafficAccount::hourly();
        acc.record(&[], MessageClass::Application, SimTime::ZERO);
        assert_eq!(acc.message_count(), 0);
        assert_eq!(acc.grand_total(), 0);
    }

    #[test]
    fn series_is_bucketed_by_time() {
        let mut acc = TrafficAccount::new(60);
        acc.record(
            &[Switch::Top],
            MessageClass::Application,
            SimTime::from_secs(30),
        );
        acc.record(
            &[Switch::Top],
            MessageClass::Application,
            SimTime::from_secs(90),
        );
        acc.record(
            &[Switch::Top],
            MessageClass::Protocol,
            SimTime::from_secs(95),
        );
        let series = acc.top_switch_series();
        assert_eq!(series.len(), 2);
        assert_eq!(series[0].application, 10);
        assert_eq!(series[1].application, 10);
        assert_eq!(series[1].protocol, 1);
        assert_eq!(acc.bucket_secs(), 60);
    }

    #[test]
    fn tier_average_divides_by_switch_count() {
        let mut acc = TrafficAccount::hourly();
        acc.record(
            &cross_cluster_path(),
            MessageClass::Application,
            SimTime::ZERO,
        );
        // 20 units over 2 intermediate switches observed, but the cluster has
        // 5 intermediate switches in total.
        assert!((acc.tier_average(Tier::Intermediate, 5) - 4.0).abs() < 1e-9);
        assert_eq!(acc.tier_average(Tier::Top, 0), 0.0);
    }

    #[test]
    fn merge_combines_everything() {
        let mut a = TrafficAccount::new(60);
        let mut b = TrafficAccount::new(60);
        a.record(
            &[Switch::Top],
            MessageClass::Application,
            SimTime::from_secs(10),
        );
        b.record(
            &[Switch::Top],
            MessageClass::Protocol,
            SimTime::from_secs(70),
        );
        b.record(
            &[Switch::Rack(1)],
            MessageClass::Application,
            SimTime::from_secs(70),
        );
        a.merge(&b);
        assert_eq!(a.message_count(), 3);
        assert_eq!(a.tier_total(Tier::Top).application, 10);
        assert_eq!(a.tier_total(Tier::Top).protocol, 1);
        assert_eq!(a.switch_total(Switch::Rack(1)), 10);
        assert_eq!(a.top_switch_series().len(), 2);
    }

    #[test]
    #[should_panic(expected = "different bucket widths")]
    fn merge_rejects_mismatched_buckets() {
        let mut a = TrafficAccount::new(60);
        let b = TrafficAccount::new(120);
        a.merge(&b);
    }

    #[test]
    fn tier_traffic_total() {
        let t = TierTraffic {
            application: 30,
            protocol: 4,
        };
        assert_eq!(t.total(), 34);
        assert_eq!(TierTraffic::default().total(), 0);
    }
}
