//! Data-centre network topologies and traffic accounting.
//!
//! The paper assumes servers are organised in a **three-level tree of
//! switches**: a top (core) switch connecting intermediate switches, each of
//! which connects a set of racks; every rack holds one broker and several
//! view servers behind a rack switch (§2.1, Figure 1). DynaSoRe's entire
//! objective is expressed against this tree: the *network distance* between
//! two machines is the number of switches on the path between them, and the
//! system tries to keep messages away from the top of the tree.
//!
//! This crate provides:
//!
//! * [`Topology`] — the cluster layout (tree or flat), machine roles,
//!   network distances, switch paths, lowest common ancestors, sub-tree
//!   enumeration and the coarse *access origins* used by DynaSoRe's
//!   statistics (§3.2);
//! * [`TrafficAccount`] — per-switch, per-tier, per-message-class traffic
//!   counters with a time series, which is what every figure and table of
//!   the evaluation reports.
//!
//! # Example
//!
//! ```
//! use dynasore_topology::{Switch, Topology};
//!
//! // The evaluation cluster of §4.3: 5 intermediate switches × 5 racks ×
//! // 10 machines (1 broker + 9 servers per rack).
//! let topo = Topology::paper_tree().unwrap();
//! assert_eq!(topo.machine_count(), 250);
//! assert_eq!(topo.server_count(), 225);
//! assert_eq!(topo.broker_count(), 25);
//!
//! let a = topo.servers()[0].machine();
//! let b = topo.servers()[224].machine();
//! // Machines in different intermediate sub-trees are 5 switches apart.
//! assert_eq!(topo.distance(a, b), 5);
//! assert!(topo.path_switches(a, b).contains(&Switch::Top));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod layout;
mod traffic;

pub use layout::{Switch, Tier, Topology, TopologyKind};
pub use traffic::{TierTraffic, TrafficAccount};
