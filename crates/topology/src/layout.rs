//! Cluster layout: machines, racks, switches, distances and sub-trees.
//!
//! All per-request queries (`distance`, `access_origin`,
//! `lowest_common_ancestor`, `local_broker`, the `*_in_subtree_slice`
//! families and [`Topology::record_path`]) are answered from dense routing
//! tables precomputed at construction, so the request hot path performs only
//! table lookups — no tree walks and no heap allocation.

use dynasore_types::{
    BrokerId, ClusterEvent, Error, MachineId, MachineKind, MessageClass, RackId, Result, ServerId,
    SimTime, SubtreeId,
};

use crate::traffic::TrafficAccount;

/// A network switch, identified by its tier and index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Switch {
    /// The core (top-level) switch. A tree has exactly one; a flat topology
    /// uses it as its single switch.
    Top,
    /// An intermediate switch, connecting a group of racks.
    Intermediate(u32),
    /// A rack (edge) switch, connecting the machines of one rack.
    Rack(u32),
}

impl Switch {
    /// The tier this switch belongs to.
    pub fn tier(self) -> Tier {
        match self {
            Switch::Top => Tier::Top,
            Switch::Intermediate(_) => Tier::Intermediate,
            Switch::Rack(_) => Tier::Rack,
        }
    }
}

impl std::fmt::Display for Switch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Switch::Top => write!(f, "ST"),
            Switch::Intermediate(i) => write!(f, "SI{i}"),
            Switch::Rack(r) => write!(f, "SR{r}"),
        }
    }
}

/// The three switch tiers of the network tree (§2.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Tier {
    /// The core tier (top switch).
    Top,
    /// The intermediate tier.
    Intermediate,
    /// The edge tier (rack switches).
    Rack,
}

impl Tier {
    /// All tiers, top first.
    pub fn all() -> [Tier; 3] {
        [Tier::Top, Tier::Intermediate, Tier::Rack]
    }

    /// Dense index used by traffic accounting tables.
    pub fn index(self) -> usize {
        match self {
            Tier::Top => 0,
            Tier::Intermediate => 1,
            Tier::Rack => 2,
        }
    }
}

impl std::fmt::Display for Tier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Tier::Top => write!(f, "top"),
            Tier::Intermediate => write!(f, "intermediate"),
            Tier::Rack => write!(f, "rack"),
        }
    }
}

/// Whether the cluster is the paper's three-level tree or the flat
/// single-switch layout of §4.5.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TopologyKind {
    /// Three-level tree: top switch → intermediate switches → rack switches.
    Tree,
    /// All machines behind a single switch; every machine is both a server
    /// and a broker.
    Flat,
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct MachineInfo {
    rack: u32,
    is_server: bool,
    is_broker: bool,
}

/// Dense per-machine routing tables, precomputed once at topology
/// construction so every hot-path query is an array lookup.
///
/// Machines are numbered rack by rack, so the machine-ordered `servers` and
/// `brokers` vectors are contiguous per rack and per intermediate switch;
/// the `*_range` tables store those contiguous index ranges and turn every
/// "servers/brokers under this sub-tree" query into a slice borrow.
#[derive(Debug, Clone, PartialEq, Eq)]
struct RoutingTables {
    /// machine → rack index.
    machine_rack: Vec<u32>,
    /// machine → intermediate-switch index (the LCA-tier table: two
    /// machines share a rack, an intermediate, or only the root, which is
    /// exactly the 0/1/3/5 hop-class of the paper's tree).
    machine_intermediate: Vec<u32>,
    /// rack → intermediate-switch index (no division on the hot path).
    rack_intermediate: Vec<u32>,
    /// machine → position in `Topology::servers` (`u32::MAX` for brokers).
    server_ordinal: Vec<u32>,
    /// machine → position in `Topology::brokers` (`u32::MAX` for servers).
    broker_ordinal: Vec<u32>,
    /// rack → `(start, end)` range in `Topology::servers`.
    rack_servers: Vec<(u32, u32)>,
    /// rack → `(start, end)` range in `Topology::brokers`.
    rack_brokers: Vec<(u32, u32)>,
    /// intermediate → `(start, end)` range in `Topology::servers`.
    inter_servers: Vec<(u32, u32)>,
    /// intermediate → `(start, end)` range in `Topology::brokers`.
    inter_brokers: Vec<(u32, u32)>,
    /// rack → its first broker (the default proxy deployment site).
    rack_first_broker: Vec<BrokerId>,
}

impl RoutingTables {
    fn build(
        machines: &[MachineInfo],
        servers: &[ServerId],
        brokers: &[BrokerId],
        rack_count: usize,
        racks_per_intermediate: usize,
        intermediate_count: usize,
    ) -> Self {
        let machine_rack: Vec<u32> = machines.iter().map(|m| m.rack).collect();
        let machine_intermediate: Vec<u32> = machines
            .iter()
            .map(|m| m.rack / racks_per_intermediate as u32)
            .collect();
        let rack_intermediate: Vec<u32> = (0..rack_count)
            .map(|r| (r / racks_per_intermediate) as u32)
            .collect();
        let mut server_ordinal = vec![u32::MAX; machines.len()];
        for (i, s) in servers.iter().enumerate() {
            server_ordinal[s.machine().as_usize()] = i as u32;
        }
        let mut broker_ordinal = vec![u32::MAX; machines.len()];
        for (i, b) in brokers.iter().enumerate() {
            broker_ordinal[b.machine().as_usize()] = i as u32;
        }
        // Machine-ordered role vectors are rack-contiguous; sweep once to
        // extract the per-rack ranges, then fold racks into intermediates.
        let rack_ranges = |ids: &[MachineId]| -> Vec<(u32, u32)> {
            let mut ranges = vec![(0u32, 0u32); rack_count];
            let mut pos = 0usize;
            for (rack, range) in ranges.iter_mut().enumerate() {
                let start = pos;
                while pos < ids.len() && machine_rack[ids[pos].as_usize()] == rack as u32 {
                    pos += 1;
                }
                *range = (start as u32, pos as u32);
            }
            ranges
        };
        let server_machines: Vec<MachineId> = servers.iter().map(|s| s.machine()).collect();
        let broker_machines: Vec<MachineId> = brokers.iter().map(|b| b.machine()).collect();
        let rack_servers = rack_ranges(&server_machines);
        let rack_brokers = rack_ranges(&broker_machines);
        let fold = |per_rack: &[(u32, u32)]| -> Vec<(u32, u32)> {
            (0..intermediate_count)
                .map(|i| {
                    let first = i * racks_per_intermediate;
                    let last = (first + racks_per_intermediate).min(per_rack.len()) - 1;
                    (per_rack[first].0, per_rack[last].1)
                })
                .collect()
        };
        let inter_servers = fold(&rack_servers);
        let inter_brokers = fold(&rack_brokers);
        let rack_first_broker = rack_brokers
            .iter()
            .map(|&(start, end)| {
                debug_assert!(start < end, "every rack holds at least one broker");
                brokers[start as usize]
            })
            .collect();
        RoutingTables {
            machine_rack,
            machine_intermediate,
            rack_intermediate,
            server_ordinal,
            broker_ordinal,
            rack_servers,
            rack_brokers,
            inter_servers,
            inter_brokers,
            rack_first_broker,
        }
    }
}

/// The cluster layout.
///
/// Machines are numbered densely, rack by rack; within a rack the brokers
/// come first. Racks are numbered densely, intermediate switch by
/// intermediate switch, so `intermediate = rack / racks_per_intermediate`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Topology {
    kind: TopologyKind,
    intermediate_count: usize,
    racks_per_intermediate: usize,
    machines_per_rack: usize,
    brokers_per_rack: usize,
    rack_count: usize,
    machines: Vec<MachineInfo>,
    servers: Vec<ServerId>,
    brokers: Vec<BrokerId>,
    tables: RoutingTables,
    /// Liveness mask over the dense machine table. All machines start live;
    /// [`Topology::set_live`] flips entries when the cluster-dynamics layer
    /// kills or revives machines. Hot-path queries stay mask-free (engines
    /// maintain the invariant that replica lists only reference live
    /// machines); placement-decision paths consult [`Topology::is_live`] in
    /// O(1).
    live: Vec<bool>,
    live_machines: usize,
    /// rack → its first *live* broker, kept in sync by [`Topology::set_live`]
    /// so the per-request proxy-placement walk stays an O(1) table lookup
    /// even while machines are down. `None` when every broker of the rack is
    /// dead.
    rack_first_live_broker: Vec<Option<BrokerId>>,
    /// rack → permanently decommissioned ([`Topology::remove_rack`]).
    /// Retired racks keep their dense indices — machine ids, server
    /// ordinals and table shapes never shift — but their machines are dead
    /// forever: [`Topology::set_live`] refuses to revive them and
    /// `RackUp`/`MachineUp` events targeting them are ignored.
    retired_racks: Vec<bool>,
}

impl Topology {
    /// Builds the paper's evaluation tree (§4.3): 5 intermediate switches,
    /// 5 racks each, 10 machines per rack of which 1 is a broker and 9 are
    /// servers — 225 servers and 25 brokers in total.
    pub fn paper_tree() -> Result<Self> {
        Topology::tree(5, 5, 10, 1)
    }

    /// Builds the paper's flat evaluation cluster (§4.5): 250 machines
    /// behind a single switch, each acting as both cache and broker.
    pub fn paper_flat() -> Result<Self> {
        Topology::flat(250)
    }

    /// Builds a three-level tree.
    ///
    /// * `intermediate_count` — number of intermediate switches;
    /// * `racks_per_intermediate` — racks under each intermediate switch;
    /// * `machines_per_rack` — machines in each rack;
    /// * `brokers_per_rack` — how many of those machines are brokers (the
    ///   rest are view servers).
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] if any count is zero or a rack would
    /// contain no servers.
    pub fn tree(
        intermediate_count: usize,
        racks_per_intermediate: usize,
        machines_per_rack: usize,
        brokers_per_rack: usize,
    ) -> Result<Self> {
        if intermediate_count == 0 || racks_per_intermediate == 0 || machines_per_rack == 0 {
            return Err(Error::invalid_config(
                "tree topology dimensions must be positive",
            ));
        }
        if brokers_per_rack == 0 {
            return Err(Error::invalid_config("each rack needs at least one broker"));
        }
        if brokers_per_rack >= machines_per_rack {
            return Err(Error::invalid_config(
                "each rack needs at least one server (brokers_per_rack < machines_per_rack)",
            ));
        }
        let rack_count = intermediate_count * racks_per_intermediate;
        let mut machines = Vec::with_capacity(rack_count * machines_per_rack);
        let mut servers = Vec::new();
        let mut brokers = Vec::new();
        for rack in 0..rack_count {
            for slot in 0..machines_per_rack {
                let id = MachineId::new(machines.len() as u32);
                let is_broker = slot < brokers_per_rack;
                machines.push(MachineInfo {
                    rack: rack as u32,
                    is_server: !is_broker,
                    is_broker,
                });
                if is_broker {
                    brokers.push(BrokerId::new(id));
                } else {
                    servers.push(ServerId::new(id));
                }
            }
        }
        let tables = RoutingTables::build(
            &machines,
            &servers,
            &brokers,
            rack_count,
            racks_per_intermediate,
            intermediate_count,
        );
        let live = vec![true; machines.len()];
        let live_machines = machines.len();
        let rack_first_live_broker = tables.rack_first_broker.iter().copied().map(Some).collect();
        let retired_racks = vec![false; rack_count];
        Ok(Topology {
            kind: TopologyKind::Tree,
            intermediate_count,
            racks_per_intermediate,
            machines_per_rack,
            brokers_per_rack,
            rack_count,
            machines,
            servers,
            brokers,
            tables,
            live,
            live_machines,
            rack_first_live_broker,
            retired_racks,
        })
    }

    /// Builds a flat topology: `machine_count` machines behind one switch,
    /// each machine acting as both a server and a broker (§4.5).
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] if `machine_count` is zero.
    pub fn flat(machine_count: usize) -> Result<Self> {
        if machine_count == 0 {
            return Err(Error::invalid_config("flat topology needs machines"));
        }
        let mut machines = Vec::with_capacity(machine_count);
        let mut servers = Vec::with_capacity(machine_count);
        let mut brokers = Vec::with_capacity(machine_count);
        for i in 0..machine_count {
            let id = MachineId::new(i as u32);
            machines.push(MachineInfo {
                rack: 0,
                is_server: true,
                is_broker: true,
            });
            servers.push(ServerId::new(id));
            brokers.push(BrokerId::new(id));
        }
        let tables = RoutingTables::build(&machines, &servers, &brokers, 1, 1, 1);
        let live = vec![true; machines.len()];
        let live_machines = machines.len();
        let rack_first_live_broker = tables.rack_first_broker.iter().copied().map(Some).collect();
        let retired_racks = vec![false];
        Ok(Topology {
            kind: TopologyKind::Flat,
            intermediate_count: 1,
            racks_per_intermediate: 1,
            machines_per_rack: machine_count,
            brokers_per_rack: machine_count,
            rack_count: 1,
            machines,
            servers,
            brokers,
            tables,
            live,
            live_machines,
            rack_first_live_broker,
            retired_racks,
        })
    }

    /// Whether this is a tree or flat layout.
    pub fn kind(&self) -> TopologyKind {
        self.kind
    }

    /// Total number of machines (servers + brokers).
    pub fn machine_count(&self) -> usize {
        self.machines.len()
    }

    /// Number of view servers.
    pub fn server_count(&self) -> usize {
        self.servers.len()
    }

    /// Number of brokers.
    pub fn broker_count(&self) -> usize {
        self.brokers.len()
    }

    /// Number of racks.
    pub fn rack_count(&self) -> usize {
        self.rack_count
    }

    /// Number of intermediate switches.
    pub fn intermediate_count(&self) -> usize {
        self.intermediate_count
    }

    /// Number of racks under each intermediate switch.
    pub fn racks_per_intermediate(&self) -> usize {
        self.racks_per_intermediate
    }

    /// All view servers, in machine order.
    pub fn servers(&self) -> &[ServerId] {
        &self.servers
    }

    /// All brokers, in machine order.
    pub fn brokers(&self) -> &[BrokerId] {
        &self.brokers
    }

    /// Whether `machine` exists in this topology.
    pub fn contains(&self, machine: MachineId) -> bool {
        machine.as_usize() < self.machines.len()
    }

    fn info(&self, machine: MachineId) -> Result<&MachineInfo> {
        self.machines
            .get(machine.as_usize())
            .ok_or(Error::UnknownMachine(machine))
    }

    /// The roles of `machine` (a flat-topology machine is both).
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownMachine`] for out-of-range ids.
    pub fn kinds_of(&self, machine: MachineId) -> Result<Vec<MachineKind>> {
        let info = self.info(machine)?;
        let mut kinds = Vec::with_capacity(2);
        if info.is_server {
            kinds.push(MachineKind::Server);
        }
        if info.is_broker {
            kinds.push(MachineKind::Broker);
        }
        Ok(kinds)
    }

    /// Whether `machine` stores views.
    pub fn is_server(&self, machine: MachineId) -> bool {
        self.machines
            .get(machine.as_usize())
            .map(|m| m.is_server)
            .unwrap_or(false)
    }

    /// Whether `machine` executes requests.
    pub fn is_broker(&self, machine: MachineId) -> bool {
        self.machines
            .get(machine.as_usize())
            .map(|m| m.is_broker)
            .unwrap_or(false)
    }

    /// The rack a machine belongs to.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownMachine`] for out-of-range ids.
    pub fn rack_of(&self, machine: MachineId) -> Result<RackId> {
        Ok(RackId::new(self.info(machine)?.rack))
    }

    /// The intermediate switch above a rack.
    pub fn intermediate_of_rack(&self, rack: RackId) -> u32 {
        self.tables
            .rack_intermediate
            .get(rack.as_usize())
            .copied()
            .unwrap_or_else(|| rack.index() / self.racks_per_intermediate as u32)
    }

    /// The intermediate switch above a machine.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownMachine`] for out-of-range ids.
    pub fn intermediate_of(&self, machine: MachineId) -> Result<u32> {
        self.info(machine)?;
        Ok(self.tables.machine_intermediate[machine.as_usize()])
    }

    /// The brokers located in `rack`, in machine order.
    pub fn brokers_in_rack(&self, rack: RackId) -> Vec<BrokerId> {
        self.brokers_in_rack_slice(rack).to_vec()
    }

    /// The brokers located in `rack`, as a borrowed slice (machine order).
    pub fn brokers_in_rack_slice(&self, rack: RackId) -> &[BrokerId] {
        match self.tables.rack_brokers.get(rack.as_usize()) {
            Some(&(start, end)) => &self.brokers[start as usize..end as usize],
            None => &[],
        }
    }

    /// The servers located in `rack`, in machine order.
    pub fn servers_in_rack(&self, rack: RackId) -> Vec<ServerId> {
        self.servers_in_rack_slice(rack).to_vec()
    }

    /// The servers located in `rack`, as a borrowed slice (machine order).
    pub fn servers_in_rack_slice(&self, rack: RackId) -> &[ServerId] {
        match self.tables.rack_servers.get(rack.as_usize()) {
            Some(&(start, end)) => &self.servers[start as usize..end as usize],
            None => &[],
        }
    }

    /// The position of `machine` in [`Topology::servers`], if it is a
    /// server. Engines that mirror the server list (one state entry per
    /// server, in the same order) use this to map machines to their dense
    /// state index without a hash lookup.
    pub fn server_ordinal(&self, machine: MachineId) -> Option<usize> {
        match self.tables.server_ordinal.get(machine.as_usize()) {
            Some(&ord) if ord != u32::MAX => Some(ord as usize),
            _ => None,
        }
    }

    /// The position of `machine` in [`Topology::brokers`], if it is a
    /// broker.
    pub fn broker_ordinal(&self, machine: MachineId) -> Option<usize> {
        match self.tables.broker_ordinal.get(machine.as_usize()) {
            Some(&ord) if ord != u32::MAX => Some(ord as usize),
            _ => None,
        }
    }

    /// Network distance between two machines: the number of switches on the
    /// path connecting them (§2.2, *Locality*). Zero when `a == b`.
    ///
    /// This is the pairwise *hop class* of the tree — 0 (same machine),
    /// 1 (same rack), 3 (same intermediate) or 5 (across the core) — read
    /// from the per-machine rack/intermediate tables.
    ///
    /// # Panics
    ///
    /// Panics if either machine is out of range.
    pub fn distance(&self, a: MachineId, b: MachineId) -> u32 {
        if a == b {
            return 0;
        }
        match self.kind {
            TopologyKind::Flat => 1,
            TopologyKind::Tree => {
                if self.tables.machine_rack[a.as_usize()] == self.tables.machine_rack[b.as_usize()]
                {
                    1
                } else if self.tables.machine_intermediate[a.as_usize()]
                    == self.tables.machine_intermediate[b.as_usize()]
                {
                    3
                } else {
                    5
                }
            }
        }
    }

    /// Writes the switches a message from `a` to `b` traverses into `buf`
    /// (path order) and returns how many were written. Zero when `a == b`.
    ///
    /// Either endpoint may be [`MachineId::PERSISTENT`]: the durable store
    /// attaches above the core switch, so its messages cross the top switch
    /// and then descend through the other endpoint's intermediate and rack
    /// switches.
    fn fill_path(&self, a: MachineId, b: MachineId, buf: &mut [Switch; 5]) -> usize {
        if a == b {
            return 0;
        }
        if a.is_persistent() || b.is_persistent() {
            let machine = if a.is_persistent() { b } else { a };
            if machine.is_persistent() {
                return 0;
            }
            match self.kind {
                TopologyKind::Flat => {
                    buf[0] = Switch::Top;
                    return 1;
                }
                TopologyKind::Tree => {
                    let rack = self.tables.machine_rack[machine.as_usize()];
                    let inter = self.tables.machine_intermediate[machine.as_usize()];
                    if a.is_persistent() {
                        buf[0] = Switch::Top;
                        buf[1] = Switch::Intermediate(inter);
                        buf[2] = Switch::Rack(rack);
                    } else {
                        buf[0] = Switch::Rack(rack);
                        buf[1] = Switch::Intermediate(inter);
                        buf[2] = Switch::Top;
                    }
                    return 3;
                }
            }
        }
        match self.kind {
            TopologyKind::Flat => {
                buf[0] = Switch::Top;
                1
            }
            TopologyKind::Tree => {
                let ra = self.tables.machine_rack[a.as_usize()];
                let rb = self.tables.machine_rack[b.as_usize()];
                let ia = self.tables.machine_intermediate[a.as_usize()];
                let ib = self.tables.machine_intermediate[b.as_usize()];
                if ra == rb {
                    buf[0] = Switch::Rack(ra);
                    1
                } else if ia == ib {
                    buf[0] = Switch::Rack(ra);
                    buf[1] = Switch::Intermediate(ia);
                    buf[2] = Switch::Rack(rb);
                    3
                } else {
                    buf[0] = Switch::Rack(ra);
                    buf[1] = Switch::Intermediate(ia);
                    buf[2] = Switch::Top;
                    buf[3] = Switch::Intermediate(ib);
                    buf[4] = Switch::Rack(rb);
                    5
                }
            }
        }
    }

    /// The switches a message from `a` to `b` traverses, in path order.
    /// Empty when `a == b` (local delivery).
    ///
    /// Hot paths should prefer [`Topology::record_path`], which charges a
    /// [`TrafficAccount`] directly without materializing this vector.
    ///
    /// # Panics
    ///
    /// Panics if either machine is out of range.
    pub fn path_switches(&self, a: MachineId, b: MachineId) -> Vec<Switch> {
        let mut buf = [Switch::Top; 5];
        let len = self.fill_path(a, b, &mut buf);
        buf[..len].to_vec()
    }

    /// Charges one message from `from` to `to` to every switch on its path,
    /// without materializing the path. Local messages (`from == to`) cost
    /// nothing and are not counted.
    ///
    /// # Panics
    ///
    /// Panics if either machine is out of range.
    pub fn record_path(
        &self,
        from: MachineId,
        to: MachineId,
        class: MessageClass,
        time: SimTime,
        account: &mut TrafficAccount,
    ) {
        self.record_path_timed(from, to, class, time, account);
    }

    /// Like [`Topology::record_path`], but returns the message's end-to-end
    /// latency sample under the account's [`dynasore_types::NetworkModel`]:
    /// per hop, the model's forwarding latency plus the wait behind that
    /// switch's queued work plus the transmission time. Local messages (and
    /// every message under the infinite model) sample zero. Allocation-free.
    ///
    /// # Panics
    ///
    /// Panics if either machine is out of range.
    pub fn record_path_timed(
        &self,
        from: MachineId,
        to: MachineId,
        class: MessageClass,
        time: SimTime,
        account: &mut TrafficAccount,
    ) -> dynasore_types::Latency {
        let mut buf = [Switch::Top; 5];
        let len = self.fill_path(from, to, &mut buf);
        account.record_timed(&buf[..len], class, time)
    }

    /// Lowest common ancestor of two machines in the switch tree, expressed
    /// as a [`SubtreeId`]. Used by the routing policy: among the servers
    /// storing a view, a broker picks the one with which it shares the
    /// lowest common ancestor (§3.2, *Routing policy*). A table lookup: the
    /// LCA tier follows directly from whether the machines share a rack or
    /// an intermediate switch.
    pub fn lowest_common_ancestor(&self, a: MachineId, b: MachineId) -> SubtreeId {
        if a == b {
            return SubtreeId::Machine(a.index());
        }
        match self.kind {
            TopologyKind::Flat => SubtreeId::Root,
            TopologyKind::Tree => {
                let ra = self.tables.machine_rack[a.as_usize()];
                let rb = self.tables.machine_rack[b.as_usize()];
                if ra == rb {
                    return SubtreeId::Rack(ra);
                }
                let ia = self.tables.machine_intermediate[a.as_usize()];
                let ib = self.tables.machine_intermediate[b.as_usize()];
                if ia == ib {
                    SubtreeId::Intermediate(ia)
                } else {
                    SubtreeId::Root
                }
            }
        }
    }

    /// The sub-tree containing exactly `machine`.
    pub fn machine_subtree(&self, machine: MachineId) -> SubtreeId {
        SubtreeId::Machine(machine.index())
    }

    /// Whether `machine` lies under `subtree`.
    pub fn subtree_contains(&self, subtree: SubtreeId, machine: MachineId) -> bool {
        if !self.contains(machine) {
            return false;
        }
        match subtree {
            SubtreeId::Root => true,
            SubtreeId::Intermediate(i) => {
                self.kind == TopologyKind::Tree
                    && self.tables.machine_intermediate[machine.as_usize()] == i
            }
            SubtreeId::Rack(r) => self.tables.machine_rack[machine.as_usize()] == r,
            SubtreeId::Machine(m) => machine.index() == m,
        }
    }

    /// The parent of a sub-tree (the root's parent is the root itself).
    pub fn parent(&self, subtree: SubtreeId) -> SubtreeId {
        match subtree {
            SubtreeId::Root => SubtreeId::Root,
            SubtreeId::Intermediate(_) => SubtreeId::Root,
            SubtreeId::Rack(r) => match self.kind {
                TopologyKind::Flat => SubtreeId::Root,
                TopologyKind::Tree => {
                    SubtreeId::Intermediate(r / self.racks_per_intermediate as u32)
                }
            },
            SubtreeId::Machine(m) => {
                let rack = self.machines[m as usize].rack;
                SubtreeId::Rack(rack)
            }
        }
    }

    /// Child sub-trees of `subtree`, in index order. Machines have no
    /// children.
    pub fn children(&self, subtree: SubtreeId) -> Vec<SubtreeId> {
        match (self.kind, subtree) {
            (TopologyKind::Flat, SubtreeId::Root) => (0..self.machines.len() as u32)
                .map(SubtreeId::Machine)
                .collect(),
            (TopologyKind::Flat, SubtreeId::Rack(_))
            | (TopologyKind::Flat, SubtreeId::Intermediate(_)) => Vec::new(),
            (TopologyKind::Tree, SubtreeId::Root) => (0..self.intermediate_count as u32)
                .map(SubtreeId::Intermediate)
                .collect(),
            (TopologyKind::Tree, SubtreeId::Intermediate(i)) => {
                // The last intermediate switch may hold fewer racks after
                // elastic growth, so clamp to the actual rack count.
                let first = i * self.racks_per_intermediate as u32;
                let last = (first + self.racks_per_intermediate as u32).min(self.rack_count as u32);
                (first..last).map(SubtreeId::Rack).collect()
            }
            (TopologyKind::Tree, SubtreeId::Rack(r)) => self
                .machines
                .iter()
                .enumerate()
                .filter(|(_, m)| m.rack == r)
                .map(|(i, _)| SubtreeId::Machine(i as u32))
                .collect(),
            (_, SubtreeId::Machine(_)) => Vec::new(),
        }
    }

    /// All machines under a sub-tree.
    pub fn machines_in_subtree(&self, subtree: SubtreeId) -> Vec<MachineId> {
        (0..self.machines.len() as u32)
            .map(MachineId::new)
            .filter(|&m| self.subtree_contains(subtree, m))
            .collect()
    }

    /// All view servers under a sub-tree.
    pub fn servers_in_subtree(&self, subtree: SubtreeId) -> Vec<ServerId> {
        self.servers_in_subtree_slice(subtree).to_vec()
    }

    /// The view servers under a sub-tree, as a borrowed slice in machine
    /// order. Because machines are numbered rack by rack, every sub-tree's
    /// servers are contiguous in [`Topology::servers`], so this is a range
    /// lookup with no allocation — the form the request hot path uses.
    pub fn servers_in_subtree_slice(&self, subtree: SubtreeId) -> &[ServerId] {
        match subtree {
            SubtreeId::Root => &self.servers,
            SubtreeId::Intermediate(i) => {
                if self.kind != TopologyKind::Tree {
                    return &[];
                }
                match self.tables.inter_servers.get(i as usize) {
                    Some(&(start, end)) => &self.servers[start as usize..end as usize],
                    None => &[],
                }
            }
            SubtreeId::Rack(r) => self.servers_in_rack_slice(RackId::new(r)),
            SubtreeId::Machine(m) => match self.server_ordinal(MachineId::new(m)) {
                Some(ord) => &self.servers[ord..ord + 1],
                None => &[],
            },
        }
    }

    /// All brokers under a sub-tree.
    pub fn brokers_in_subtree(&self, subtree: SubtreeId) -> Vec<BrokerId> {
        self.brokers_in_subtree_slice(subtree).to_vec()
    }

    /// The brokers under a sub-tree, as a borrowed slice in machine order.
    pub fn brokers_in_subtree_slice(&self, subtree: SubtreeId) -> &[BrokerId] {
        match subtree {
            SubtreeId::Root => &self.brokers,
            SubtreeId::Intermediate(i) => {
                if self.kind != TopologyKind::Tree {
                    return &[];
                }
                match self.tables.inter_brokers.get(i as usize) {
                    Some(&(start, end)) => &self.brokers[start as usize..end as usize],
                    None => &[],
                }
            }
            SubtreeId::Rack(r) => self.brokers_in_rack_slice(RackId::new(r)),
            SubtreeId::Machine(m) => match self.broker_ordinal(MachineId::new(m)) {
                Some(ord) => &self.brokers[ord..ord + 1],
                None => &[],
            },
        }
    }

    /// The coarse *origin* a server records for an access coming from
    /// `requester` (§3.2, *Access statistics*).
    ///
    /// A server keeps one counter per rack switch under its own intermediate
    /// switch (including its own rack) and one counter per sibling
    /// intermediate switch — `m − 1 + n` origins instead of `m × n`. In a
    /// flat topology the origin is the requesting machine itself.
    pub fn access_origin(&self, server: MachineId, requester: MachineId) -> SubtreeId {
        match self.kind {
            TopologyKind::Flat => SubtreeId::Machine(requester.index()),
            TopologyKind::Tree => {
                let is_ = self.tables.machine_intermediate[server.as_usize()];
                let ir = self.tables.machine_intermediate[requester.as_usize()];
                if is_ == ir {
                    SubtreeId::Rack(self.tables.machine_rack[requester.as_usize()])
                } else {
                    SubtreeId::Intermediate(ir)
                }
            }
        }
    }

    /// All origins a server may observe, own rack first. Useful for
    /// pre-sizing statistics tables.
    pub fn possible_origins(&self, server: MachineId) -> Vec<SubtreeId> {
        match self.kind {
            TopologyKind::Flat => (0..self.machines.len() as u32)
                .map(SubtreeId::Machine)
                .collect(),
            TopologyKind::Tree => {
                let rs = self.machines[server.as_usize()].rack;
                let is_ = rs / self.racks_per_intermediate as u32;
                let mut origins = Vec::new();
                let first_rack = is_ * self.racks_per_intermediate as u32;
                let last_rack =
                    (first_rack + self.racks_per_intermediate as u32).min(self.rack_count as u32);
                for r in first_rack..last_rack {
                    origins.push(SubtreeId::Rack(r));
                }
                for i in 0..self.intermediate_count as u32 {
                    if i != is_ {
                        origins.push(SubtreeId::Intermediate(i));
                    }
                }
                origins
            }
        }
    }

    /// Number of switches a message crosses between `machine` and a
    /// representative machine of `origin`. Used when estimating the network
    /// cost of serving an origin's reads from a given server (Algorithm 1).
    pub fn origin_distance(&self, machine: MachineId, origin: SubtreeId) -> u32 {
        match self.kind {
            TopologyKind::Flat => match origin {
                SubtreeId::Machine(m) if m == machine.index() => 0,
                _ => 1,
            },
            TopologyKind::Tree => {
                let rm = self.tables.machine_rack[machine.as_usize()];
                let im = self.tables.machine_intermediate[machine.as_usize()];
                match origin {
                    SubtreeId::Machine(m) => self.distance(machine, MachineId::new(m)),
                    SubtreeId::Rack(r) => {
                        if r == rm {
                            1
                        } else if self.tables.rack_intermediate.get(r as usize) == Some(&im) {
                            3
                        } else {
                            5
                        }
                    }
                    SubtreeId::Intermediate(i) => {
                        if i == im {
                            3
                        } else {
                            5
                        }
                    }
                    SubtreeId::Root => 5,
                }
            }
        }
    }

    /// The first broker in the same rack as `machine` — the default place to
    /// deploy a user's proxies when her view lives on `machine`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownMachine`] if the machine is out of range.
    pub fn local_broker(&self, machine: MachineId) -> Result<BrokerId> {
        let rack = self.rack_of(machine)?;
        if self.kind == TopologyKind::Flat {
            // In a flat topology every machine is its own broker.
            return Ok(BrokerId::new(machine));
        }
        self.tables
            .rack_first_broker
            .get(rack.as_usize())
            .copied()
            .ok_or(Error::UnknownMachine(machine))
    }

    /// The first broker of `rack` (the broker a rack's proxies deploy on),
    /// if the rack exists. Ignores liveness — use
    /// [`Topology::first_live_broker_in_rack`] on paths that must route
    /// around failures.
    pub fn first_broker_in_rack(&self, rack: RackId) -> Option<BrokerId> {
        self.tables.rack_first_broker.get(rack.as_usize()).copied()
    }

    // --- Liveness and elasticity -------------------------------------------
    //
    // The queries below power the cluster-dynamics subsystem. The mask
    // itself is a dense per-machine bit vector; the derived per-rack
    // first-live-broker table is maintained eagerly by `set_live` so the
    // per-request proxy-placement walk stays an O(1) lookup while machines
    // are down.

    /// Whether `machine` is currently live. Unknown machines (including
    /// [`MachineId::PERSISTENT`]) report `false`.
    #[inline]
    pub fn is_live(&self, machine: MachineId) -> bool {
        self.live.get(machine.as_usize()).copied().unwrap_or(false)
    }

    /// Marks `machine` live or dead, updating the derived first-live-broker
    /// table. Setting the current state again is a no-op.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownMachine`] for out-of-range ids and
    /// [`Error::InvalidConfig`] when reviving a machine of a retired rack —
    /// decommissioned capacity never comes back.
    pub fn set_live(&mut self, machine: MachineId, live: bool) -> Result<()> {
        let info = self.info(machine)?.clone();
        if live && self.retired_racks[info.rack as usize] {
            return Err(Error::invalid_config(format!(
                "cannot revive {machine}: rack{} is retired",
                info.rack
            )));
        }
        let entry = &mut self.live[machine.as_usize()];
        if *entry == live {
            return Ok(());
        }
        *entry = live;
        if live {
            self.live_machines += 1;
        } else {
            self.live_machines -= 1;
        }
        if info.is_broker {
            let first_live = self
                .brokers_in_rack_slice(RackId::new(info.rack))
                .iter()
                .copied()
                .find(|b| self.live[b.machine().as_usize()]);
            self.rack_first_live_broker[info.rack as usize] = first_live;
        }
        Ok(())
    }

    /// Number of machines currently live.
    pub fn live_machine_count(&self) -> usize {
        self.live_machines
    }

    /// Whether `rack` has been permanently decommissioned by
    /// [`Topology::remove_rack`]. Unknown racks report `false`.
    #[inline]
    pub fn is_rack_retired(&self, rack: RackId) -> bool {
        self.retired_racks
            .get(rack.as_usize())
            .copied()
            .unwrap_or(false)
    }

    /// Whether `machine` belongs to a retired rack (and therefore can never
    /// come back). Unknown machines report `false`.
    #[inline]
    pub fn is_retired(&self, machine: MachineId) -> bool {
        self.machines
            .get(machine.as_usize())
            .is_some_and(|info| self.retired_racks[info.rack as usize])
    }

    /// Number of racks still in service (total minus retired).
    pub fn active_rack_count(&self) -> usize {
        self.rack_count - self.retired_racks.iter().filter(|&&r| r).count()
    }

    /// The first *live* broker of `rack`, an O(1) lookup in the liveness
    /// table. `None` when the rack does not exist or all its brokers are
    /// dead.
    #[inline]
    pub fn first_live_broker_in_rack(&self, rack: RackId) -> Option<BrokerId> {
        self.rack_first_live_broker
            .get(rack.as_usize())
            .copied()
            .flatten()
    }

    /// The live broker closest to `machine`: the first live broker of its
    /// own rack, then of the sibling racks under its intermediate switch
    /// (index order), then of any rack. Used to re-home proxies after a
    /// broker failure. `None` only when every broker in the cluster is dead
    /// or `machine` is unknown.
    pub fn closest_live_broker(&self, machine: MachineId) -> Option<BrokerId> {
        let info = self.machines.get(machine.as_usize())?;
        if self.kind == TopologyKind::Flat {
            if self.is_live(machine) {
                return Some(BrokerId::new(machine));
            }
            return self
                .brokers
                .iter()
                .copied()
                .find(|b| self.is_live(b.machine()));
        }
        let rack = info.rack as usize;
        if let Some(broker) = self.first_live_broker_in_rack(RackId::new(info.rack)) {
            return Some(broker);
        }
        let inter = self.tables.rack_intermediate[rack] as usize;
        let first = inter * self.racks_per_intermediate;
        let last = (first + self.racks_per_intermediate).min(self.rack_count);
        for r in first..last {
            if let Some(broker) = self.first_live_broker_in_rack(RackId::new(r as u32)) {
                return Some(broker);
            }
        }
        (0..self.rack_count).find_map(|r| self.first_live_broker_in_rack(RackId::new(r as u32)))
    }

    /// Appends one rack of machines — same shape as the existing racks
    /// (`machines_per_rack` machines of which `brokers_per_rack` are
    /// brokers) — to the tree, rebuilding the dense routing tables. The new
    /// rack lands under the last intermediate switch if it has room,
    /// otherwise a new intermediate switch is created. New machines start
    /// live and get the highest machine ids, so existing ids, server
    /// ordinals and rack indices are unchanged.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] on a flat topology, which has no
    /// rack structure to extend.
    pub fn add_rack(&mut self) -> Result<RackId> {
        if self.kind != TopologyKind::Tree {
            return Err(Error::invalid_config(
                "only tree topologies can grow by racks",
            ));
        }
        let rack = self.rack_count as u32;
        for slot in 0..self.machines_per_rack {
            let id = MachineId::new(self.machines.len() as u32);
            let is_broker = slot < self.brokers_per_rack;
            self.machines.push(MachineInfo {
                rack,
                is_server: !is_broker,
                is_broker,
            });
            if is_broker {
                self.brokers.push(BrokerId::new(id));
            } else {
                self.servers.push(ServerId::new(id));
            }
            self.live.push(true);
            self.live_machines += 1;
        }
        self.retired_racks.push(false);
        self.rack_count += 1;
        self.intermediate_count = self.rack_count.div_ceil(self.racks_per_intermediate);
        self.tables = RoutingTables::build(
            &self.machines,
            &self.servers,
            &self.brokers,
            self.rack_count,
            self.racks_per_intermediate,
            self.intermediate_count,
        );
        // Rebuild the live-broker table from scratch: the broker slices may
        // have shifted and the new rack's brokers are all live.
        self.rack_first_live_broker = (0..self.rack_count)
            .map(|r| {
                self.brokers_in_rack_slice(RackId::new(r as u32))
                    .iter()
                    .copied()
                    .find(|b| self.live[b.machine().as_usize()])
            })
            .collect();
        Ok(RackId::new(rack))
    }

    /// Permanently decommissions `rack` — the reverse of
    /// [`Topology::add_rack`]. The rack keeps its dense index (machine ids,
    /// server ordinals and routing-table shapes never shift); its machines
    /// are marked dead and the rack is flagged retired so nothing can revive
    /// them. Callers that hold state (placement engines, the live store)
    /// evacuate the rack's views *before* applying this.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] on a flat topology, for an unknown or
    /// already-retired rack, and when `rack` is the last rack still in
    /// service — a cluster cannot shrink to nothing.
    pub fn remove_rack(&mut self, rack: RackId) -> Result<()> {
        if self.kind != TopologyKind::Tree {
            return Err(Error::invalid_config(
                "only tree topologies can shrink by racks",
            ));
        }
        if rack.as_usize() >= self.rack_count {
            return Err(Error::invalid_config(format!(
                "{rack} does not exist in this topology"
            )));
        }
        if self.retired_racks[rack.as_usize()] {
            return Err(Error::invalid_config(format!("{rack} is already retired")));
        }
        if self.active_rack_count() <= 1 {
            return Err(Error::invalid_config(
                "cannot remove the last rack in service",
            ));
        }
        for i in 0..self.machines.len() {
            if self.machines[i].rack == rack.index() {
                self.set_live(MachineId::new(i as u32), false)?;
            }
        }
        self.retired_racks[rack.as_usize()] = true;
        Ok(())
    }

    /// Applies a [`ClusterEvent`] to this topology's liveness mask and (for
    /// [`ClusterEvent::AddRack`]) its shape. Engines and drivers each own a
    /// topology clone; both apply the same event stream so their views stay
    /// in sync. Draining a machine marks it dead here — the graceful part
    /// (migrating state first) is the engine's job.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownMachine`] for events naming machines outside
    /// the topology and [`Error::InvalidConfig`] for growth events the
    /// topology kind does not support.
    pub fn apply_cluster_event(&mut self, event: ClusterEvent) -> Result<()> {
        match event {
            ClusterEvent::MachineDown { machine } | ClusterEvent::DrainMachine { machine } => {
                self.set_live(machine, false)
            }
            ClusterEvent::MachineUp { machine } => {
                // Repairs scheduled before a decommission may still name a
                // retired machine; they are stale, not errors.
                if self.is_retired(machine) {
                    return Ok(());
                }
                self.set_live(machine, true)
            }
            ClusterEvent::RackDown { rack } | ClusterEvent::RackUp { rack } => {
                let live = matches!(event, ClusterEvent::RackUp { .. });
                if rack.as_usize() >= self.rack_count {
                    return Err(Error::invalid_config(format!(
                        "{rack} does not exist in this topology"
                    )));
                }
                if live && self.retired_racks[rack.as_usize()] {
                    return Ok(());
                }
                for i in 0..self.machines.len() {
                    if self.machines[i].rack == rack.index() {
                        self.set_live(MachineId::new(i as u32), live)?;
                    }
                }
                Ok(())
            }
            ClusterEvent::AddRack => self.add_rack().map(|_| ()),
            ClusterEvent::RemoveRack { rack } => self.remove_rack(rack),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(i: u32) -> MachineId {
        MachineId::new(i)
    }

    #[test]
    fn paper_tree_dimensions() {
        let t = Topology::paper_tree().unwrap();
        assert_eq!(t.kind(), TopologyKind::Tree);
        assert_eq!(t.machine_count(), 250);
        assert_eq!(t.server_count(), 225);
        assert_eq!(t.broker_count(), 25);
        assert_eq!(t.rack_count(), 25);
        assert_eq!(t.intermediate_count(), 5);
        assert_eq!(t.racks_per_intermediate(), 5);
    }

    #[test]
    fn invalid_configurations_are_rejected() {
        assert!(Topology::tree(0, 5, 10, 1).is_err());
        assert!(Topology::tree(5, 0, 10, 1).is_err());
        assert!(Topology::tree(5, 5, 0, 1).is_err());
        assert!(Topology::tree(5, 5, 10, 0).is_err());
        assert!(Topology::tree(5, 5, 2, 2).is_err());
        assert!(Topology::flat(0).is_err());
    }

    #[test]
    fn machine_roles_follow_rack_layout() {
        let t = Topology::tree(2, 2, 3, 1).unwrap();
        // Machines 0..3 are rack 0: machine 0 is the broker.
        assert!(t.is_broker(m(0)));
        assert!(!t.is_server(m(0)));
        assert!(t.is_server(m(1)));
        assert!(t.is_server(m(2)));
        assert_eq!(t.rack_of(m(4)).unwrap(), RackId::new(1));
        assert_eq!(t.brokers_in_rack(RackId::new(1)), vec![BrokerId::new(m(3))]);
        assert_eq!(t.servers_in_rack(RackId::new(0)).len(), 2);
        assert_eq!(
            t.kinds_of(m(0)).unwrap(),
            vec![dynasore_types::MachineKind::Broker]
        );
        assert!(t.kinds_of(m(99)).is_err());
        assert!(t.rack_of(m(99)).is_err());
    }

    #[test]
    fn tree_distances_follow_the_paper() {
        let t = Topology::paper_tree().unwrap();
        // Same machine.
        assert_eq!(t.distance(m(1), m(1)), 0);
        // Same rack (machines 1 and 2 are servers of rack 0): 1 rack switch.
        assert_eq!(t.distance(m(1), m(2)), 1);
        // Same intermediate, different rack (rack 0 and rack 1): 3 switches.
        assert_eq!(t.distance(m(1), m(11)), 3);
        // Different intermediates (rack 0 and rack 5): 5 switches.
        assert_eq!(t.distance(m(1), m(51)), 5);
        // Distance is symmetric.
        assert_eq!(t.distance(m(51), m(1)), 5);
    }

    #[test]
    fn path_switches_match_distance() {
        let t = Topology::paper_tree().unwrap();
        for (a, b) in [(1u32, 1u32), (1, 2), (1, 11), (1, 51), (240, 3)] {
            let path = t.path_switches(m(a), m(b));
            assert_eq!(path.len() as u32, t.distance(m(a), m(b)), "{a}->{b}");
        }
        let cross = t.path_switches(m(1), m(51));
        assert_eq!(
            cross,
            vec![
                Switch::Rack(0),
                Switch::Intermediate(0),
                Switch::Top,
                Switch::Intermediate(1),
                Switch::Rack(5)
            ]
        );
    }

    #[test]
    fn flat_topology_is_one_hop() {
        let t = Topology::paper_flat().unwrap();
        assert_eq!(t.kind(), TopologyKind::Flat);
        assert_eq!(t.machine_count(), 250);
        // Everyone is both server and broker.
        assert_eq!(t.server_count(), 250);
        assert_eq!(t.broker_count(), 250);
        assert_eq!(t.distance(m(0), m(249)), 1);
        assert_eq!(t.distance(m(3), m(3)), 0);
        assert_eq!(t.path_switches(m(0), m(1)), vec![Switch::Top]);
        assert_eq!(t.lowest_common_ancestor(m(0), m(1)), SubtreeId::Root);
        assert_eq!(t.local_broker(m(7)).unwrap(), BrokerId::new(m(7)));
    }

    #[test]
    fn lowest_common_ancestor_levels() {
        let t = Topology::paper_tree().unwrap();
        assert_eq!(t.lowest_common_ancestor(m(1), m(1)), SubtreeId::Machine(1));
        assert_eq!(t.lowest_common_ancestor(m(1), m(2)), SubtreeId::Rack(0));
        assert_eq!(
            t.lowest_common_ancestor(m(1), m(11)),
            SubtreeId::Intermediate(0)
        );
        assert_eq!(t.lowest_common_ancestor(m(1), m(51)), SubtreeId::Root);
    }

    #[test]
    fn subtree_containment_and_children() {
        let t = Topology::tree(2, 2, 3, 1).unwrap();
        assert!(t.subtree_contains(SubtreeId::Root, m(0)));
        assert!(t.subtree_contains(SubtreeId::Intermediate(0), m(5)));
        assert!(!t.subtree_contains(SubtreeId::Intermediate(0), m(6)));
        assert!(t.subtree_contains(SubtreeId::Rack(1), m(4)));
        assert!(!t.subtree_contains(SubtreeId::Rack(1), m(7)));
        assert!(t.subtree_contains(SubtreeId::Machine(3), m(3)));
        assert!(!t.subtree_contains(SubtreeId::Machine(3), m(4)));

        assert_eq!(
            t.children(SubtreeId::Root),
            vec![SubtreeId::Intermediate(0), SubtreeId::Intermediate(1)]
        );
        assert_eq!(
            t.children(SubtreeId::Intermediate(1)),
            vec![SubtreeId::Rack(2), SubtreeId::Rack(3)]
        );
        assert_eq!(t.children(SubtreeId::Rack(0)).len(), 3);
        assert!(t.children(SubtreeId::Machine(0)).is_empty());

        assert_eq!(t.machines_in_subtree(SubtreeId::Intermediate(0)).len(), 6);
        assert_eq!(t.servers_in_subtree(SubtreeId::Rack(0)).len(), 2);
        assert_eq!(t.brokers_in_subtree(SubtreeId::Root).len(), 4);
    }

    #[test]
    fn parents_walk_up_the_tree() {
        let t = Topology::tree(2, 2, 3, 1).unwrap();
        assert_eq!(t.parent(SubtreeId::Machine(4)), SubtreeId::Rack(1));
        assert_eq!(t.parent(SubtreeId::Rack(3)), SubtreeId::Intermediate(1));
        assert_eq!(t.parent(SubtreeId::Intermediate(1)), SubtreeId::Root);
        assert_eq!(t.parent(SubtreeId::Root), SubtreeId::Root);
    }

    #[test]
    fn coarse_origins_match_the_paper() {
        // Figure 1 example: server S111 records accesses from SR11..SR1n and
        // from SI2..SIm — its sibling racks individually, remote
        // intermediates in aggregate.
        let t = Topology::paper_tree().unwrap();
        let server = m(1); // rack 0, intermediate 0
        let local_broker = m(0); // same rack
        let nearby_broker = m(10); // rack 1, same intermediate
        let far_broker = m(60); // rack 6, intermediate 1
        assert_eq!(t.access_origin(server, local_broker), SubtreeId::Rack(0));
        assert_eq!(t.access_origin(server, nearby_broker), SubtreeId::Rack(1));
        assert_eq!(
            t.access_origin(server, far_broker),
            SubtreeId::Intermediate(1)
        );
        let origins = t.possible_origins(server);
        // 5 racks under its own intermediate + 4 sibling intermediates.
        assert_eq!(origins.len(), 5 + 4);
        assert!(origins.contains(&SubtreeId::Rack(0)));
        assert!(origins.contains(&SubtreeId::Intermediate(4)));
        assert!(!origins.contains(&SubtreeId::Intermediate(0)));
    }

    #[test]
    fn origin_distance_reflects_switch_hops() {
        let t = Topology::paper_tree().unwrap();
        let server = m(1); // rack 0, intermediate 0
        assert_eq!(t.origin_distance(server, SubtreeId::Rack(0)), 1);
        assert_eq!(t.origin_distance(server, SubtreeId::Rack(1)), 3);
        assert_eq!(t.origin_distance(server, SubtreeId::Rack(6)), 5);
        assert_eq!(t.origin_distance(server, SubtreeId::Intermediate(0)), 3);
        assert_eq!(t.origin_distance(server, SubtreeId::Intermediate(3)), 5);
        assert_eq!(t.origin_distance(server, SubtreeId::Root), 5);
        assert_eq!(t.origin_distance(server, SubtreeId::Machine(1)), 0);
        assert_eq!(t.origin_distance(server, SubtreeId::Machine(2)), 1);
    }

    #[test]
    fn local_broker_is_in_the_same_rack() {
        let t = Topology::paper_tree().unwrap();
        let server = m(13); // rack 1
        let broker = t.local_broker(server).unwrap();
        assert_eq!(
            t.rack_of(broker.machine()).unwrap(),
            t.rack_of(server).unwrap()
        );
        assert!(t.is_broker(broker.machine()));
        assert!(t.local_broker(m(9_999)).is_err());
    }

    #[test]
    fn liveness_mask_tracks_machines_and_brokers() {
        let mut t = Topology::tree(2, 2, 3, 1).unwrap();
        assert_eq!(t.live_machine_count(), 12);
        assert!(t.is_live(m(0)));
        assert!(!t.is_live(MachineId::PERSISTENT));
        // Killing a server changes nothing broker-wise.
        t.set_live(m(1), false).unwrap();
        assert!(!t.is_live(m(1)));
        assert_eq!(t.live_machine_count(), 11);
        assert_eq!(
            t.first_live_broker_in_rack(RackId::new(0)),
            Some(BrokerId::new(m(0)))
        );
        // Killing rack 0's only broker empties its live-broker slot and
        // re-homes to the sibling rack under the same intermediate.
        t.set_live(m(0), false).unwrap();
        assert_eq!(t.first_live_broker_in_rack(RackId::new(0)), None);
        assert_eq!(t.closest_live_broker(m(2)), Some(BrokerId::new(m(3))));
        // Idempotent sets do not corrupt the counters.
        t.set_live(m(0), false).unwrap();
        assert_eq!(t.live_machine_count(), 10);
        t.set_live(m(0), true).unwrap();
        assert_eq!(
            t.first_live_broker_in_rack(RackId::new(0)),
            Some(BrokerId::new(m(0)))
        );
        assert!(t.set_live(m(99), false).is_err());
    }

    #[test]
    fn closest_live_broker_escalates_to_remote_intermediates() {
        let mut t = Topology::tree(2, 2, 3, 1).unwrap();
        // Kill every broker under intermediate 0 (racks 0 and 1).
        t.set_live(m(0), false).unwrap();
        t.set_live(m(3), false).unwrap();
        assert_eq!(t.closest_live_broker(m(1)), Some(BrokerId::new(m(6))));
        // Kill the rest: no live broker anywhere.
        t.set_live(m(6), false).unwrap();
        t.set_live(m(9), false).unwrap();
        assert_eq!(t.closest_live_broker(m(1)), None);
        assert_eq!(t.closest_live_broker(m(999)), None);
    }

    #[test]
    fn flat_closest_live_broker_prefers_self() {
        let mut t = Topology::flat(4).unwrap();
        assert_eq!(t.closest_live_broker(m(2)), Some(BrokerId::new(m(2))));
        t.set_live(m(2), false).unwrap();
        assert_eq!(t.closest_live_broker(m(2)), Some(BrokerId::new(m(0))));
    }

    #[test]
    fn persistent_tier_paths_cross_the_top_switch() {
        let t = Topology::paper_tree().unwrap();
        let down = t.path_switches(MachineId::PERSISTENT, m(51));
        assert_eq!(
            down,
            vec![Switch::Top, Switch::Intermediate(1), Switch::Rack(5)]
        );
        let up = t.path_switches(m(51), MachineId::PERSISTENT);
        assert_eq!(
            up,
            vec![Switch::Rack(5), Switch::Intermediate(1), Switch::Top]
        );
        let flat = Topology::flat(3).unwrap();
        assert_eq!(
            flat.path_switches(MachineId::PERSISTENT, m(1)),
            vec![Switch::Top]
        );
    }

    #[test]
    fn add_rack_grows_the_tree_without_renumbering() {
        let mut t = Topology::tree(2, 2, 3, 1).unwrap();
        let before_servers: Vec<_> = t.servers().to_vec();
        // 4 racks over 2 intermediates: the next rack opens intermediate 2.
        let rack = t.add_rack().unwrap();
        assert_eq!(rack, RackId::new(4));
        assert_eq!(t.rack_count(), 5);
        assert_eq!(t.intermediate_count(), 3);
        assert_eq!(t.machine_count(), 15);
        assert_eq!(t.live_machine_count(), 15);
        // Existing ids and ordinals are untouched; new machines append.
        assert_eq!(&t.servers()[..before_servers.len()], &before_servers[..]);
        assert_eq!(t.rack_of(m(12)).unwrap(), RackId::new(4));
        assert!(t.is_broker(m(12)));
        assert!(t.is_server(m(13)));
        assert_eq!(t.intermediate_of(m(13)).unwrap(), 2);
        assert_eq!(t.servers_in_rack(RackId::new(4)).len(), 2);
        assert_eq!(
            t.first_live_broker_in_rack(RackId::new(4)),
            Some(BrokerId::new(m(12)))
        );
        // Partial intermediate 2 holds only the new rack.
        assert_eq!(
            t.children(SubtreeId::Intermediate(2)),
            vec![SubtreeId::Rack(4)]
        );
        assert_eq!(t.servers_in_subtree(SubtreeId::Intermediate(2)).len(), 2);
        // Distances to the new rack cross the core.
        assert_eq!(t.distance(m(1), m(13)), 5);
        // Origins of a server in the partial intermediate stay consistent.
        let origins = t.possible_origins(m(13));
        assert!(origins.contains(&SubtreeId::Rack(4)));
        assert!(!origins.contains(&SubtreeId::Rack(5)));
        // Flat topologies cannot grow by racks.
        assert!(Topology::flat(3).unwrap().add_rack().is_err());
    }

    #[test]
    fn apply_cluster_event_updates_the_mask_and_shape() {
        let mut t = Topology::tree(2, 2, 3, 1).unwrap();
        t.apply_cluster_event(ClusterEvent::MachineDown { machine: m(1) })
            .unwrap();
        assert!(!t.is_live(m(1)));
        t.apply_cluster_event(ClusterEvent::MachineUp { machine: m(1) })
            .unwrap();
        assert!(t.is_live(m(1)));
        t.apply_cluster_event(ClusterEvent::RackDown {
            rack: RackId::new(1),
        })
        .unwrap();
        assert!((3..6).all(|i| !t.is_live(m(i))));
        assert_eq!(t.live_machine_count(), 9);
        t.apply_cluster_event(ClusterEvent::RackUp {
            rack: RackId::new(1),
        })
        .unwrap();
        assert_eq!(t.live_machine_count(), 12);
        t.apply_cluster_event(ClusterEvent::DrainMachine { machine: m(4) })
            .unwrap();
        assert!(!t.is_live(m(4)));
        t.apply_cluster_event(ClusterEvent::AddRack).unwrap();
        assert_eq!(t.rack_count(), 5);
        assert!(t
            .apply_cluster_event(ClusterEvent::RackDown {
                rack: RackId::new(99)
            })
            .is_err());
    }

    #[test]
    fn remove_rack_retires_without_renumbering() {
        let mut t = Topology::tree(2, 2, 3, 1).unwrap();
        let servers_before: Vec<_> = t.servers().to_vec();
        t.remove_rack(RackId::new(1)).unwrap();
        assert!(t.is_rack_retired(RackId::new(1)));
        assert!(!t.is_rack_retired(RackId::new(0)));
        assert_eq!(t.active_rack_count(), 3);
        // Dense shape is untouched: ids, ordinals and counts stay put.
        assert_eq!(t.rack_count(), 4);
        assert_eq!(t.machine_count(), 12);
        assert_eq!(t.servers(), &servers_before[..]);
        // All of rack 1's machines are dead and flagged retired.
        assert!((3..6).all(|i| !t.is_live(m(i)) && t.is_retired(m(i))));
        assert!(!t.is_retired(m(0)));
        assert_eq!(t.live_machine_count(), 9);
        assert_eq!(t.first_live_broker_in_rack(RackId::new(1)), None);
        // Retired capacity never comes back.
        assert!(t.set_live(m(4), true).is_err());
        t.apply_cluster_event(ClusterEvent::MachineUp { machine: m(4) })
            .unwrap();
        t.apply_cluster_event(ClusterEvent::RackUp {
            rack: RackId::new(1),
        })
        .unwrap();
        assert!(!t.is_live(m(4)));
        // Double removal and unknown racks are rejected.
        assert!(t.remove_rack(RackId::new(1)).is_err());
        assert!(t.remove_rack(RackId::new(99)).is_err());
        // Growth after shrink appends a fresh rack with new ids.
        let rack = t.add_rack().unwrap();
        assert_eq!(rack, RackId::new(4));
        assert!(!t.is_rack_retired(rack));
        assert_eq!(t.active_rack_count(), 4);
    }

    #[test]
    fn remove_rack_rejects_the_last_rack_in_service() {
        let mut t = Topology::tree(1, 2, 3, 1).unwrap();
        t.remove_rack(RackId::new(0)).unwrap();
        let err = t.remove_rack(RackId::new(1)).unwrap_err();
        assert!(err.to_string().contains("last rack"));
        // Flat topologies cannot shrink at all.
        assert!(Topology::flat(3)
            .unwrap()
            .remove_rack(RackId::new(0))
            .is_err());
    }

    #[test]
    fn switch_and_tier_helpers() {
        assert_eq!(Switch::Top.tier(), Tier::Top);
        assert_eq!(Switch::Intermediate(2).tier(), Tier::Intermediate);
        assert_eq!(Switch::Rack(4).tier(), Tier::Rack);
        assert_eq!(Switch::Top.to_string(), "ST");
        assert_eq!(Switch::Intermediate(1).to_string(), "SI1");
        assert_eq!(Switch::Rack(3).to_string(), "SR3");
        assert_eq!(Tier::all().map(|t| t.index()), [0, 1, 2]);
        assert_eq!(Tier::Top.to_string(), "top");
    }
}
