//! Property tests for flow-budget semantics: `spent` is monotone
//! non-decreasing and `limit` monotone non-increasing under arbitrary
//! interleavings of charges, restrictions and merges; merges converge
//! regardless of order; and a throttled user's requests generate zero
//! engine messages.

use dynasore_serve::{
    Backend, FlowBudgetStage, PipelineExecutor, RequestEnvelope, ResponseBody, ResponseEnvelope,
};
use dynasore_types::{FlowBudget, StatusCode, UserId};
use proptest::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// One ledger operation, decoded from a `(selector, (a, b))` tuple.
fn apply(ledger: &mut FlowBudget, op: (u8, (u64, u64))) {
    let (sel, (a, b)) = op;
    match sel % 3 {
        0 => {
            let _ = ledger.charge(a % 1_000);
        }
        1 => ledger.restrict(a),
        _ => {
            let mut remote = FlowBudget::new(a);
            let _ = remote.charge(b.min(a));
            ledger.merge(&remote);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `spent` never decreases and `limit` never increases, no matter how
    /// charges, restrictions and merges interleave.
    #[test]
    fn ledger_is_monotone_under_arbitrary_operations(
        initial_limit in 0u64..10_000,
        ops in proptest::collection::vec((0u8..3, (0u64..10_000, 0u64..10_000)), 0..60),
    ) {
        let mut ledger = FlowBudget::new(initial_limit);
        let mut prev = ledger;
        for op in ops {
            apply(&mut ledger, op);
            prop_assert!(ledger.spent() >= prev.spent(),
                "spent decreased: {prev:?} -> {ledger:?}");
            prop_assert!(ledger.limit() <= prev.limit(),
                "limit increased: {prev:?} -> {ledger:?}");
            prev = ledger;
        }
    }

    /// Merging the same set of replica ledgers in any order (forward,
    /// reverse, with duplicates) converges to the same state.
    #[test]
    fn merge_is_order_independent(
        initial_limit in 0u64..10_000,
        replicas in proptest::collection::vec((0u64..10_000, 0u64..10_000), 1..20),
        rotate_by in 0usize..20,
    ) {
        let replicas: Vec<FlowBudget> = replicas
            .into_iter()
            .map(|(limit, spent)| {
                let mut b = FlowBudget::new(limit);
                let _ = b.charge(spent.min(limit));
                b
            })
            .collect();

        let merge_all = |order: &[FlowBudget]| {
            let mut acc = FlowBudget::new(initial_limit);
            for r in order {
                acc.merge(r);
            }
            acc
        };

        let forward = merge_all(&replicas);

        let mut reversed = replicas.clone();
        reversed.reverse();
        prop_assert_eq!(merge_all(&reversed), forward);

        let mut rotated = replicas.clone();
        let pivot = rotate_by % rotated.len().max(1);
        rotated.rotate_left(pivot);
        prop_assert_eq!(merge_all(&rotated), forward);

        // Idempotence: merging everything twice changes nothing.
        let mut doubled = replicas.clone();
        doubled.extend(replicas.iter().copied());
        prop_assert_eq!(merge_all(&doubled), forward);
    }
}

/// Counts every request that reaches the engine side of the pipeline.
struct CountingBackend {
    calls: Arc<AtomicU64>,
}

impl Backend for CountingBackend {
    fn handle(&self, _req: &RequestEnvelope) -> ResponseEnvelope {
        self.calls.fetch_add(1, Ordering::SeqCst);
        ResponseEnvelope::ok(ResponseBody::Empty)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Exactly `limit` unit-cost requests reach the backend; every request
    /// after exhaustion is `Throttled` and generates zero engine messages.
    #[test]
    fn throttled_requests_generate_zero_engine_messages(
        limit in 0u64..20,
        extra in 1u64..30,
    ) {
        let calls = Arc::new(AtomicU64::new(0));
        let mut pipeline = PipelineExecutor::new(CountingBackend {
            calls: Arc::clone(&calls),
        })
        .with_stage(Box::new(FlowBudgetStage::new(limit)));

        let user = UserId::new(1);
        let mut throttled = 0u64;
        for _ in 0..(limit + extra) {
            let resp = pipeline.execute(RequestEnvelope::write(user, vec![]));
            if resp.status == StatusCode::Throttled {
                throttled += 1;
            }
        }
        prop_assert_eq!(calls.load(Ordering::SeqCst), limit);
        prop_assert_eq!(throttled, extra);
    }
}
