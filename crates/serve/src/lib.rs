//! The serving front-end: a protocol-agnostic envelope pipeline over the
//! live store (layer 6).
//!
//! `store::Cluster` is a library; this crate makes it a service. A
//! [`RequestEnvelope`] enters the [`PipelineExecutor`], flows through the
//! composable [`Middleware`] stages, reaches the cluster backend if every
//! stage accepts it, and returns as a [`ResponseEnvelope`] with a typed
//! [`dynasore_types::StatusCode`]:
//!
//! ```text
//!             ┌──────────────────── PipelineExecutor ───────────────────┐
//! client ──▶  │ tracing ─▶ token-auth ─▶ admission ─▶ flow-budget ─▶ ═╗ │
//!             │                                                       ║ │
//!             │            store::Cluster (read/write/read_feed)  ◀───╝ │
//!             │                                                       ║ │
//! client ◀──  │ tracing ◀─ token-auth ◀─ admission ◀─ flow-budget ◀─ ═╝ │
//!             └─────────────────────────────────────────────────────────┘
//! ```
//!
//! The four production stages:
//!
//! * **[`TracingStage`]** — one `envelope-served` flight-recorder event per
//!   envelope through the shared [`dynasore_store::StoreObs`], folded into
//!   the same metrics registry the `/metrics` endpoint renders.
//! * **[`TokenAuth`]** — credential check; failures are
//!   [`dynasore_types::StatusCode::Unauthorized`] and *only* credential
//!   failures are (harmony's 401-vs-500 rule, see [`StageError::status`]).
//! * **[`AdmissionControl`]** — sheds load with
//!   [`dynasore_types::StatusCode::Overloaded`] when the live in-flight
//!   gauge exceeds the ceiling, before requests queue on the engine.
//! * **[`FlowBudgetStage`]** — monotone per-user
//!   [`dynasore_types::FlowBudget`] ledgers (`limit` merges by min, `spent`
//!   by max); a spammy user is rejected with
//!   [`dynasore_types::StatusCode::Throttled`] and generates **zero** engine
//!   messages.
//!
//! The in-process transport is [`LoopbackServer`]: spawn, serve from any
//! thread, probe `/healthz`, scrape `/metrics`, and shut down gracefully —
//! draining in-flight envelopes, then flushing and syncing the durable tier
//! through [`dynasore_store::Cluster::shutdown`].
//!
//! # Example
//!
//! ```
//! use dynasore_graph::{GraphPreset, SocialGraph};
//! use dynasore_serve::{LoopbackServer, RequestEnvelope, ServeConfig};
//! use dynasore_store::StoreConfig;
//! use dynasore_topology::Topology;
//! use dynasore_types::UserId;
//!
//! # fn main() -> dynasore_types::Result<()> {
//! let graph = SocialGraph::generate(GraphPreset::TwitterLike, 60, 7)?;
//! let topology = Topology::tree(2, 1, 2, 1)?;
//! let server = LoopbackServer::spawn(
//!     &graph,
//!     topology,
//!     StoreConfig::default(),
//!     ServeConfig::default(),
//! )?;
//! assert!(server.healthz().ready);
//! let resp = server.handle(RequestEnvelope::write(UserId::new(1), b"post".to_vec()));
//! assert!(resp.is_success());
//! server.shutdown()?;
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod envelope;
mod middleware;
mod pipeline;
mod server;

pub use envelope::{RequestEnvelope, RequestOp, ResponseBody, ResponseEnvelope};
pub use middleware::{
    AdmissionControl, FlowBudgetStage, LoadProbe, Middleware, StageError, TokenAuth, TracingStage,
};
pub use pipeline::{backend_status, Backend, PipelineExecutor};
pub use server::{Health, LoopbackServer, ServeConfig};
