//! Protocol-agnostic request/response envelopes.
//!
//! An envelope is the unit the pipeline moves: a [`RequestEnvelope`] enters,
//! flows through the middleware stages, reaches the backend if every stage
//! accepts it, and comes back out as a [`ResponseEnvelope`] with a typed
//! [`StatusCode`]. Nothing in here knows about wire formats — an HTTP or
//! RPC transport would translate at the edge and hand the same envelopes to
//! the same pipeline.

use dynasore_types::{Event, StatusCode, UserId, View};

/// What the caller wants the store to do.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RequestOp {
    /// Fetch the views of `targets` (the caller's social connections).
    Read {
        /// View owners to fetch.
        targets: Vec<UserId>,
    },
    /// Fetch the caller's merged, newest-first feed.
    ReadFeed,
    /// Append `payload` as a new event in the caller's own view.
    Write {
        /// Opaque event payload.
        payload: Vec<u8>,
    },
}

impl RequestOp {
    /// Stable kebab-case name for traces and diagnostics.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            RequestOp::Read { .. } => "read",
            RequestOp::ReadFeed => "read-feed",
            RequestOp::Write { .. } => "write",
        }
    }

    /// Flow-budget cost of the operation: one unit per view touched, so a
    /// wide fan-out read spends proportionally more budget than a write.
    #[must_use]
    pub fn flow_cost(&self) -> u64 {
        match self {
            RequestOp::Read { targets } => targets.len().max(1) as u64,
            RequestOp::ReadFeed | RequestOp::Write { .. } => 1,
        }
    }
}

/// One request travelling through the pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestEnvelope {
    /// The user the request is submitted on behalf of.
    pub user: UserId,
    /// Credential presented by the caller, checked by the auth stage.
    pub token: Option<String>,
    /// The operation to perform.
    pub op: RequestOp,
}

impl RequestEnvelope {
    /// A read of `targets`' views on behalf of `user`.
    #[must_use]
    pub fn read(user: UserId, targets: Vec<UserId>) -> Self {
        RequestEnvelope {
            user,
            token: None,
            op: RequestOp::Read { targets },
        }
    }

    /// A feed read on behalf of `user`.
    #[must_use]
    pub fn read_feed(user: UserId) -> Self {
        RequestEnvelope {
            user,
            token: None,
            op: RequestOp::ReadFeed,
        }
    }

    /// A write of `payload` into `user`'s own view.
    #[must_use]
    pub fn write(user: UserId, payload: Vec<u8>) -> Self {
        RequestEnvelope {
            user,
            token: None,
            op: RequestOp::Write { payload },
        }
    }

    /// Attaches a credential token.
    #[must_use]
    pub fn with_token(mut self, token: impl Into<String>) -> Self {
        self.token = Some(token.into());
        self
    }
}

/// Payload of a response envelope.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum ResponseBody {
    /// No payload (writes, rejections).
    #[default]
    Empty,
    /// The requested views, in request-target order.
    Views(Vec<View>),
    /// The caller's merged feed, newest first.
    Feed(Vec<Event>),
}

/// One response travelling back out of the pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResponseEnvelope {
    /// Outcome of the request.
    pub status: StatusCode,
    /// Response payload; [`ResponseBody::Empty`] unless the request was a
    /// served read.
    pub body: ResponseBody,
    /// Human-readable diagnostic for non-ok statuses.
    pub detail: Option<String>,
}

impl ResponseEnvelope {
    /// A successful response carrying `body`.
    #[must_use]
    pub fn ok(body: ResponseBody) -> Self {
        ResponseEnvelope {
            status: StatusCode::Ok,
            body,
            detail: None,
        }
    }

    /// A rejection with `status` and a diagnostic message.
    #[must_use]
    pub fn rejected(status: StatusCode, detail: impl Into<String>) -> Self {
        ResponseEnvelope {
            status,
            body: ResponseBody::Empty,
            detail: Some(detail.into()),
        }
    }

    /// Whether the request was served.
    #[must_use]
    pub fn is_success(&self) -> bool {
        self.status.is_success()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flow_cost_scales_with_read_fanout() {
        let targets: Vec<UserId> = (0..7).map(UserId::new).collect();
        assert_eq!(RequestOp::Read { targets }.flow_cost(), 7);
        // An empty read still costs one unit — envelopes are never free.
        assert_eq!(RequestOp::Read { targets: vec![] }.flow_cost(), 1);
        assert_eq!(RequestOp::ReadFeed.flow_cost(), 1);
        assert_eq!(RequestOp::Write { payload: vec![] }.flow_cost(), 1);
    }

    #[test]
    fn constructors_and_token_attachment() {
        let req = RequestEnvelope::write(UserId::new(3), b"hi".to_vec()).with_token("secret");
        assert_eq!(req.user, UserId::new(3));
        assert_eq!(req.token.as_deref(), Some("secret"));
        assert_eq!(req.op.name(), "write");
        assert_eq!(
            RequestEnvelope::read_feed(UserId::new(0)).op.name(),
            "read-feed"
        );
        assert_eq!(
            RequestEnvelope::read(UserId::new(0), vec![]).op.name(),
            "read"
        );
    }

    #[test]
    fn response_helpers() {
        assert!(ResponseEnvelope::ok(ResponseBody::Empty).is_success());
        let rej = ResponseEnvelope::rejected(StatusCode::Throttled, "budget exhausted");
        assert!(!rej.is_success());
        assert_eq!(rej.body, ResponseBody::Empty);
        assert_eq!(rej.detail.as_deref(), Some("budget exhausted"));
    }
}
