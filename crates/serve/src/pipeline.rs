//! The pipeline executor: stages composed around a backend.

use dynasore_types::StatusCode;

use crate::envelope::{RequestEnvelope, ResponseEnvelope};
use crate::middleware::Middleware;

/// What the pipeline fronts: anything that turns an accepted request into a
/// response. The loopback transport implements this over
/// [`dynasore_store::Cluster`]; tests implement it with counting mocks.
pub trait Backend: Send {
    /// Serves one request that every middleware stage accepted.
    fn handle(&self, req: &RequestEnvelope) -> ResponseEnvelope;
}

/// Runs requests through the middleware chain and the backend.
///
/// Incoming order is installation order; outgoing order is the reverse,
/// over exactly the stages whose `on_request` ran (so an early-rejecting
/// stage still observes its own rejection, and stages after it never see
/// the envelope at all).
pub struct PipelineExecutor<B> {
    stages: Vec<Box<dyn Middleware>>,
    backend: B,
}

impl<B: Backend> PipelineExecutor<B> {
    /// An executor with no stages over `backend`.
    #[must_use]
    pub fn new(backend: B) -> Self {
        PipelineExecutor {
            stages: Vec::new(),
            backend,
        }
    }

    /// Appends a stage (builder form).
    #[must_use]
    pub fn with_stage(mut self, stage: Box<dyn Middleware>) -> Self {
        self.stages.push(stage);
        self
    }

    /// Appends a stage.
    pub fn push_stage(&mut self, stage: Box<dyn Middleware>) {
        self.stages.push(stage);
    }

    /// Installed stage names, in incoming order.
    #[must_use]
    pub fn stage_names(&self) -> Vec<&'static str> {
        self.stages.iter().map(|s| s.name()).collect()
    }

    /// The backend behind the stages.
    #[must_use]
    pub fn backend(&self) -> &B {
        &self.backend
    }

    /// Mutable access to a stage by name (operator surface: tighten a flow
    /// limit, rotate a token) — `None` if no stage has that name.
    pub fn stage_mut(&mut self, name: &str) -> Option<&mut (dyn Middleware + 'static)> {
        self.stages
            .iter_mut()
            .find(|s| s.name() == name)
            .map(|s| &mut **s)
    }

    /// Executes one envelope end to end.
    pub fn execute(&mut self, mut req: RequestEnvelope) -> ResponseEnvelope {
        let mut entered = 0usize;
        let mut rejection = None;
        for stage in self.stages.iter_mut() {
            entered += 1;
            if let Err(err) = stage.on_request(&mut req) {
                rejection = Some(ResponseEnvelope::rejected(err.status(), err.detail()));
                break;
            }
        }
        let mut resp = match rejection {
            Some(resp) => resp,
            None => self.backend.handle(&req),
        };
        for stage in self.stages[..entered].iter_mut().rev() {
            stage.on_response(&req, &mut resp);
        }
        resp
    }
}

impl<B> std::fmt::Debug for PipelineExecutor<B> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PipelineExecutor")
            .field(
                "stages",
                &self.stages.iter().map(|s| s.name()).collect::<Vec<_>>(),
            )
            .finish_non_exhaustive()
    }
}

/// Maps a backend [`dynasore_types::Error`] to a response status: unknown
/// users are the caller's fault ([`StatusCode::NotFound`]), a shut-down
/// cluster is a lifecycle condition ([`StatusCode::Unavailable`]), and
/// everything else — I/O, corruption, capacity — is
/// [`StatusCode::Internal`].
#[must_use]
pub fn backend_status(err: &dynasore_types::Error) -> StatusCode {
    match err {
        dynasore_types::Error::UnknownUser(_) => StatusCode::NotFound,
        dynasore_types::Error::ClusterShutdown => StatusCode::Unavailable,
        _ => StatusCode::Internal,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::envelope::ResponseBody;
    use crate::middleware::{FlowBudgetStage, StageError};
    use dynasore_types::{Error, UserId};
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    struct CountingBackend {
        calls: Arc<AtomicU64>,
    }

    impl Backend for CountingBackend {
        fn handle(&self, _req: &RequestEnvelope) -> ResponseEnvelope {
            self.calls.fetch_add(1, Ordering::SeqCst);
            ResponseEnvelope::ok(ResponseBody::Empty)
        }
    }

    /// A stage that fails internally on every request — the "misconfigured
    /// transform" of the satellite test.
    struct BrokenStage;

    impl Middleware for BrokenStage {
        fn name(&self) -> &'static str {
            "broken"
        }
        fn on_request(&mut self, _req: &mut RequestEnvelope) -> Result<(), StageError> {
            Err(StageError::Internal("stage misconfigured".into()))
        }
    }

    /// Records response statuses it observed on the way out.
    struct StatusRecorder {
        seen: Arc<AtomicU64>,
    }

    impl Middleware for StatusRecorder {
        fn name(&self) -> &'static str {
            "status-recorder"
        }
        fn on_request(&mut self, _req: &mut RequestEnvelope) -> Result<(), StageError> {
            Ok(())
        }
        fn on_response(&mut self, _req: &RequestEnvelope, _resp: &mut ResponseEnvelope) {
            self.seen.fetch_add(1, Ordering::SeqCst);
        }
    }

    #[test]
    fn rejection_short_circuits_the_backend() {
        let calls = Arc::new(AtomicU64::new(0));
        let seen = Arc::new(AtomicU64::new(0));
        let mut pipeline = PipelineExecutor::new(CountingBackend {
            calls: Arc::clone(&calls),
        })
        .with_stage(Box::new(StatusRecorder {
            seen: Arc::clone(&seen),
        }))
        .with_stage(Box::new(FlowBudgetStage::new(0)))
        .with_stage(Box::new(BrokenStage));

        let resp = pipeline.execute(RequestEnvelope::write(UserId::new(1), vec![]));
        assert_eq!(resp.status, dynasore_types::StatusCode::Throttled);
        // The backend and the stage after the rejection never ran; the
        // recorder before it still observed the response.
        assert_eq!(calls.load(Ordering::SeqCst), 0);
        assert_eq!(seen.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn internal_stage_failure_is_internal_not_unauthorized() {
        let calls = Arc::new(AtomicU64::new(0));
        let mut pipeline = PipelineExecutor::new(CountingBackend {
            calls: Arc::clone(&calls),
        })
        .with_stage(Box::new(BrokenStage));
        let resp = pipeline.execute(RequestEnvelope::write(UserId::new(1), vec![]));
        assert_eq!(resp.status, dynasore_types::StatusCode::Internal);
        assert_eq!(calls.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn accepted_requests_reach_the_backend_once() {
        let calls = Arc::new(AtomicU64::new(0));
        let mut pipeline = PipelineExecutor::new(CountingBackend {
            calls: Arc::clone(&calls),
        })
        .with_stage(Box::new(FlowBudgetStage::new(10)));
        let resp = pipeline.execute(RequestEnvelope::write(UserId::new(1), vec![]));
        assert!(resp.is_success());
        assert_eq!(calls.load(Ordering::SeqCst), 1);
        assert_eq!(pipeline.stage_names(), vec!["flow-budget"]);
        assert!(pipeline.stage_mut("flow-budget").is_some());
        assert!(pipeline.stage_mut("nope").is_none());
    }

    /// Satellite: the backend error → status table.
    #[test]
    fn backend_error_status_table() {
        let table: Vec<(Error, StatusCode)> = vec![
            (Error::UnknownUser(UserId::new(9)), StatusCode::NotFound),
            (Error::ClusterShutdown, StatusCode::Unavailable),
            (Error::io("disk on fire"), StatusCode::Internal),
            (Error::invalid_config("bad topology"), StatusCode::Internal),
        ];
        for (err, expected) in table {
            assert_eq!(backend_status(&err), expected, "error {err:?}");
        }
    }
}
