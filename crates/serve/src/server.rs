//! The loopback/in-process transport: a [`LoopbackServer`] owns a live
//! [`Cluster`], fronts it with the standard pipeline, and exposes the
//! operational surface — `/healthz`, `/metrics`, graceful shutdown.

use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;

use dynasore_graph::SocialGraph;
use dynasore_store::{Cluster, PersistentStore, StoreConfig, StoreObs, StoreStats};
use dynasore_topology::Topology;
use dynasore_types::{Result, StatusCode, TraceEventKind, UserId};
use parking_lot::{Mutex, RwLock};

use crate::envelope::{RequestEnvelope, RequestOp, ResponseBody, ResponseEnvelope};
use crate::middleware::{AdmissionControl, FlowBudgetStage, TokenAuth, TracingStage};
use crate::pipeline::{backend_status, Backend, PipelineExecutor};

/// Serving-side configuration of a [`LoopbackServer`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// `(token, user)` registrations for the auth stage. An empty list
    /// installs no auth stage (an open cluster); a non-empty list rejects
    /// every unregistered envelope with [`StatusCode::Unauthorized`].
    pub tokens: Vec<(String, UserId)>,
    /// Flow-budget units granted to every user.
    pub default_flow_limit: u64,
    /// Per-user limit overrides, applied as restrictions (they can only
    /// tighten the default).
    pub flow_limits: Vec<(UserId, u64)>,
    /// Admission ceiling on concurrently in-flight envelopes.
    pub max_inflight: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            tokens: Vec::new(),
            default_flow_limit: u64::MAX,
            flow_limits: Vec::new(),
            max_inflight: 1_024,
        }
    }
}

/// `/healthz` probe result.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Health {
    /// Liveness: the process serves *something* (flips false only after
    /// shutdown completes).
    pub live: bool,
    /// Readiness: the pipeline accepts new envelopes (true between spawn
    /// and the start of draining).
    pub ready: bool,
}

// Lifecycle states of the server.
const STATE_READY: u8 = 0;
const STATE_DRAINING: u8 = 1;
const STATE_DOWN: u8 = 2;

/// The [`Backend`] adapter: serves accepted envelopes from the cluster.
///
/// Holds the cluster behind a read lock so many envelopes proceed
/// concurrently while graceful shutdown's write lock waits for all of them.
struct ClusterBackend {
    cluster: Arc<RwLock<Cluster>>,
}

impl Backend for ClusterBackend {
    fn handle(&self, req: &RequestEnvelope) -> ResponseEnvelope {
        let cluster = self.cluster.read();
        let result = match &req.op {
            RequestOp::Write { payload } => cluster
                .write(req.user, payload.clone())
                .map(|()| ResponseBody::Empty),
            RequestOp::Read { targets } => cluster.read(req.user, targets).map(ResponseBody::Views),
            RequestOp::ReadFeed => cluster.read_feed(req.user).map(ResponseBody::Feed),
        };
        match result {
            Ok(body) => ResponseEnvelope::ok(body),
            Err(err) => ResponseEnvelope::rejected(backend_status(&err), err.to_string()),
        }
    }
}

/// An in-process ingress over a live [`Cluster`]: the loopback equivalent
/// of a network listener. Clients call [`LoopbackServer::handle`] from any
/// thread; every envelope runs the tracing → auth → admission → flow-budget
/// pipeline before it may touch the engine.
pub struct LoopbackServer {
    cluster: Arc<RwLock<Cluster>>,
    pipeline: Mutex<PipelineExecutor<ClusterBackend>>,
    state: AtomicU8,
    inflight: Arc<AtomicU64>,
    obs: StoreObs,
}

impl LoopbackServer {
    /// Spawns a cluster with the in-memory mock persistent tier and fronts
    /// it with the standard pipeline. The server is ready (accepting
    /// envelopes, `/healthz` ready) when this returns.
    pub fn spawn(
        graph: &SocialGraph,
        topology: Topology,
        store_config: StoreConfig,
        serve_config: ServeConfig,
    ) -> Result<Self> {
        let cluster = Cluster::spawn(graph, topology, store_config)?;
        Ok(Self::over_cluster(cluster, serve_config))
    }

    /// Like [`LoopbackServer::spawn`] but over a caller-provided durable
    /// tier, so acknowledged writes survive a cold reopen of its files.
    pub fn spawn_with_store(
        graph: &SocialGraph,
        topology: Topology,
        store_config: StoreConfig,
        serve_config: ServeConfig,
        store: Arc<dyn PersistentStore>,
    ) -> Result<Self> {
        let cluster = Cluster::spawn_with_store(graph, topology, store_config, store)?;
        Ok(Self::over_cluster(cluster, serve_config))
    }

    /// Fronts an already-spawned cluster.
    pub fn over_cluster(mut cluster: Cluster, config: ServeConfig) -> Self {
        let obs = StoreObs::default();
        cluster.set_observer(obs.clone());
        let cluster = Arc::new(RwLock::new(cluster));
        let inflight = Arc::new(AtomicU64::new(0));

        let mut pipeline = PipelineExecutor::new(ClusterBackend {
            cluster: Arc::clone(&cluster),
        })
        // Tracing first: its on_response sees every outcome, rejections
        // from later stages included.
        .with_stage(Box::new(TracingStage::new(obs.clone())));
        if !config.tokens.is_empty() {
            pipeline.push_stage(Box::new(TokenAuth::new(config.tokens)));
        }
        pipeline.push_stage(Box::new(AdmissionControl::new(
            Box::new(Arc::clone(&inflight)),
            config.max_inflight,
        )));
        let mut budgets = FlowBudgetStage::new(config.default_flow_limit);
        for (user, limit) in config.flow_limits {
            budgets.restrict(user, limit);
        }
        pipeline.push_stage(Box::new(budgets));

        LoopbackServer {
            cluster,
            pipeline: Mutex::new(pipeline),
            state: AtomicU8::new(STATE_READY),
            inflight,
            obs,
        }
    }

    /// Serves one envelope. Safe to call from many threads; the in-flight
    /// gauge feeds the admission stage and graceful shutdown's drain.
    pub fn handle(&self, req: RequestEnvelope) -> ResponseEnvelope {
        self.inflight.fetch_add(1, Ordering::SeqCst);
        let resp = if self.state.load(Ordering::SeqCst) == STATE_READY {
            self.pipeline.lock().execute(req)
        } else {
            let resp = ResponseEnvelope::rejected(StatusCode::Unavailable, "server is draining");
            // Rejected before the pipeline — trace it here so the timeline
            // still has one event per envelope.
            self.obs.trace(TraceEventKind::EnvelopeServed {
                user: req.user,
                status: resp.status,
            });
            resp
        };
        self.inflight.fetch_sub(1, Ordering::SeqCst);
        resp
    }

    /// `/healthz`: liveness and readiness in one probe.
    #[must_use]
    pub fn healthz(&self) -> Health {
        let state = self.state.load(Ordering::SeqCst);
        Health {
            live: state != STATE_DOWN,
            ready: state == STATE_READY,
        }
    }

    /// `/metrics`: the shared registry (pipeline and store tiers fold into
    /// the same [`StoreObs`]) in Prometheus text exposition format. The
    /// output passes [`dynasore_types::lint_prometheus`].
    #[must_use]
    pub fn metrics(&self) -> String {
        self.obs.render_prometheus()
    }

    /// The flight-recorder timeline as JSONL (one envelope/store event per
    /// line).
    #[must_use]
    pub fn trace_jsonl(&self) -> String {
        self.obs.to_jsonl()
    }

    /// Envelopes currently inside [`LoopbackServer::handle`].
    #[must_use]
    pub fn inflight(&self) -> u64 {
        self.inflight.load(Ordering::SeqCst)
    }

    /// Runtime counters of the backing cluster.
    #[must_use]
    pub fn store_stats(&self) -> StoreStats {
        self.cluster.read().stats()
    }

    /// Graceful shutdown: stop admitting (`/healthz` ready flips false),
    /// wait for in-flight envelopes to finish, then flush/sync the durable
    /// tier and join the cluster's threads via [`Cluster::shutdown`].
    /// Idempotent once it has succeeded.
    pub fn shutdown(&self) -> Result<()> {
        let _ = self.state.compare_exchange(
            STATE_READY,
            STATE_DRAINING,
            Ordering::SeqCst,
            Ordering::SeqCst,
        );
        while self.inflight.load(Ordering::SeqCst) > 0 {
            std::thread::yield_now();
        }
        self.cluster.write().shutdown()?;
        self.state.store(STATE_DOWN, Ordering::SeqCst);
        Ok(())
    }
}

impl std::fmt::Debug for LoopbackServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LoopbackServer")
            .field("health", &self.healthz())
            .field("inflight", &self.inflight())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynasore_graph::GraphPreset;
    use dynasore_types::lint_prometheus;

    fn u(i: u32) -> UserId {
        UserId::new(i)
    }

    fn server(config: ServeConfig) -> LoopbackServer {
        let graph = SocialGraph::generate(GraphPreset::TwitterLike, 120, 11).unwrap();
        let topology = Topology::tree(2, 2, 3, 1).unwrap();
        LoopbackServer::spawn(&graph, topology, StoreConfig::default(), config).unwrap()
    }

    #[test]
    fn serves_reads_and_writes_over_loopback() {
        let srv = server(ServeConfig::default());
        assert_eq!(
            srv.healthz(),
            Health {
                live: true,
                ready: true
            }
        );

        let resp = srv.handle(RequestEnvelope::write(u(3), b"hello".to_vec()));
        assert!(resp.is_success(), "{resp:?}");
        let resp = srv.handle(RequestEnvelope::read(u(0), vec![u(3)]));
        match resp.body {
            ResponseBody::Views(views) => {
                assert_eq!(views.len(), 1);
                assert_eq!(views[0].len(), 1);
            }
            other => panic!("expected views, got {other:?}"),
        }
        srv.shutdown().unwrap();
    }

    #[test]
    fn auth_is_enforced_when_tokens_are_registered() {
        let srv = server(ServeConfig {
            tokens: vec![("tok-7".into(), u(7)), ("tok-ghost".into(), u(10_000))],
            ..ServeConfig::default()
        });
        let denied = srv.handle(RequestEnvelope::write(u(7), vec![]));
        assert_eq!(denied.status, StatusCode::Unauthorized);
        let ok = srv.handle(RequestEnvelope::write(u(7), vec![]).with_token("tok-7"));
        assert!(ok.is_success());
        // A user outside the graph fails with NotFound even when
        // authenticated — the backend mapping, not an auth failure.
        let missing = srv.handle(RequestEnvelope::read_feed(u(10_000)).with_token("tok-ghost"));
        assert_eq!(missing.status, StatusCode::NotFound);
        srv.shutdown().unwrap();
    }

    #[test]
    fn metrics_lint_clean_and_count_rejections() {
        let srv = server(ServeConfig {
            flow_limits: vec![(u(2), 1)],
            ..ServeConfig::default()
        });
        assert!(srv
            .handle(RequestEnvelope::write(u(2), vec![]))
            .is_success());
        let throttled = srv.handle(RequestEnvelope::write(u(2), vec![]));
        assert_eq!(throttled.status, StatusCode::Throttled);

        let text = srv.metrics();
        lint_prometheus(&text).expect("metrics must lint clean");
        assert!(text.contains("dynasore_envelopes_served_total 2"), "{text}");
        assert!(
            text.contains("dynasore_throttled_envelopes_total 1"),
            "{text}"
        );
        srv.shutdown().unwrap();
    }

    #[test]
    fn shutdown_drains_flips_health_and_is_idempotent() {
        let srv = server(ServeConfig::default());
        srv.shutdown().unwrap();
        assert_eq!(
            srv.healthz(),
            Health {
                live: false,
                ready: false
            }
        );
        // Post-shutdown envelopes bounce without touching the cluster.
        let resp = srv.handle(RequestEnvelope::write(u(1), vec![]));
        assert_eq!(resp.status, StatusCode::Unavailable);
        // Idempotent.
        srv.shutdown().unwrap();
    }
}
