//! The middleware trait and the production stages.
//!
//! A stage sees every request on the way in ([`Middleware::on_request`])
//! and every response on the way out ([`Middleware::on_response`], reverse
//! order). A stage rejects a request by returning a [`StageError`]; the
//! executor maps the error to a [`StatusCode`] through one table
//! ([`StageError::status`]) so the status class is decided by *what went
//! wrong*, never by *which stage it went wrong in*:
//!
//! * only a genuine credential failure is [`StatusCode::Unauthorized`];
//! * only an exhausted flow budget is [`StatusCode::Throttled`];
//! * only an admission-ceiling breach is [`StatusCode::Overloaded`];
//! * everything else — bad stage configuration, transform bugs — is
//!   [`StatusCode::Internal`], so a misconfigured stage can never
//!   masquerade as an auth failure.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use dynasore_store::StoreObs;
use dynasore_types::{FlowBudget, StatusCode, TraceEventKind, UserId};

use crate::envelope::{RequestEnvelope, ResponseEnvelope};

/// Why a stage rejected a request. The variant — not the stage — decides
/// the response's status class.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StageError {
    /// The presented credential is missing, unknown, or bound to a
    /// different user.
    Unauthorized(String),
    /// The user's flow budget cannot cover the request's cost.
    Throttled {
        /// The user whose budget is exhausted.
        user: UserId,
        /// Budget units still available (less than the request's cost).
        remaining: u64,
    },
    /// Live load is above the admission ceiling.
    Overloaded {
        /// Load observed by the admission probe.
        load: u64,
        /// Configured ceiling.
        ceiling: u64,
    },
    /// The stage itself failed: configuration, invariant or transform
    /// errors. Never reported as an auth failure.
    Internal(String),
}

impl StageError {
    /// The status class of this rejection — the single mapping table the
    /// executor uses (harmony's 401-vs-500 rule).
    #[must_use]
    pub fn status(&self) -> StatusCode {
        match self {
            StageError::Unauthorized(_) => StatusCode::Unauthorized,
            StageError::Throttled { .. } => StatusCode::Throttled,
            StageError::Overloaded { .. } => StatusCode::Overloaded,
            StageError::Internal(_) => StatusCode::Internal,
        }
    }

    /// Human-readable diagnostic carried into the response envelope.
    #[must_use]
    pub fn detail(&self) -> String {
        match self {
            StageError::Unauthorized(msg) => format!("unauthorized: {msg}"),
            StageError::Throttled { user, remaining } => {
                format!(
                    "throttled: user {} has {remaining} budget units remaining",
                    user.index()
                )
            }
            StageError::Overloaded { load, ceiling } => {
                format!("overloaded: load {load} above admission ceiling {ceiling}")
            }
            StageError::Internal(msg) => format!("internal: {msg}"),
        }
    }
}

/// One composable pipeline stage.
pub trait Middleware: Send {
    /// Stage name for diagnostics.
    fn name(&self) -> &'static str;

    /// Inspects (and may rewrite) the request on the way in. Returning an
    /// error short-circuits the pipeline: the backend is never reached and
    /// the error's [`StageError::status`] becomes the response status.
    fn on_request(&mut self, req: &mut RequestEnvelope) -> Result<(), StageError>;

    /// Observes (and may rewrite) the response on the way out. Runs in
    /// reverse stage order, for every stage whose `on_request` was reached —
    /// including the rejecting stage itself.
    fn on_response(&mut self, req: &RequestEnvelope, resp: &mut ResponseEnvelope) {
        let _ = (req, resp);
    }
}

/// Token authentication: the envelope must carry a token registered for
/// exactly the user it claims to act for.
///
/// All three failure shapes — missing token, unknown token, token bound to
/// another user — are genuine credential failures and map to
/// [`StatusCode::Unauthorized`]. The stage has no internal failure path by
/// construction; a stage that does fail internally must return
/// [`StageError::Internal`] instead.
#[derive(Debug, Default)]
pub struct TokenAuth {
    tokens: BTreeMap<String, UserId>,
}

impl TokenAuth {
    /// A stage accepting the given `(token, user)` registrations.
    #[must_use]
    pub fn new(tokens: impl IntoIterator<Item = (String, UserId)>) -> Self {
        TokenAuth {
            tokens: tokens.into_iter().collect(),
        }
    }

    /// Registers one token for `user`.
    pub fn register(&mut self, token: impl Into<String>, user: UserId) {
        self.tokens.insert(token.into(), user);
    }
}

impl Middleware for TokenAuth {
    fn name(&self) -> &'static str {
        "token-auth"
    }

    fn on_request(&mut self, req: &mut RequestEnvelope) -> Result<(), StageError> {
        let token = req
            .token
            .as_deref()
            .ok_or_else(|| StageError::Unauthorized("missing token".into()))?;
        match self.tokens.get(token) {
            Some(&owner) if owner == req.user => Ok(()),
            Some(_) => Err(StageError::Unauthorized(format!(
                "token not valid for user {}",
                req.user.index()
            ))),
            None => Err(StageError::Unauthorized("unknown token".into())),
        }
    }
}

/// A live load reading for the admission stage.
pub trait LoadProbe: Send {
    /// Current load in the probe's own units (the loopback server reports
    /// in-flight envelopes).
    fn current_load(&self) -> u64;
}

/// The loopback server's probe: an atomic in-flight envelope gauge shared
/// with the transport.
impl LoadProbe for Arc<AtomicU64> {
    fn current_load(&self) -> u64 {
        self.load(Ordering::SeqCst)
    }
}

impl<F: Fn() -> u64 + Send> LoadProbe for F {
    fn current_load(&self) -> u64 {
        self()
    }
}

/// Admission control: rejects with [`StatusCode::Overloaded`] while the
/// probe reads above the ceiling, shedding load before it queues on the
/// engine.
pub struct AdmissionControl {
    probe: Box<dyn LoadProbe>,
    ceiling: u64,
}

impl AdmissionControl {
    /// A stage admitting requests while `probe` reads at most `ceiling`.
    #[must_use]
    pub fn new(probe: Box<dyn LoadProbe>, ceiling: u64) -> Self {
        AdmissionControl { probe, ceiling }
    }
}

impl std::fmt::Debug for AdmissionControl {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AdmissionControl")
            .field("ceiling", &self.ceiling)
            .finish_non_exhaustive()
    }
}

impl Middleware for AdmissionControl {
    fn name(&self) -> &'static str {
        "admission-control"
    }

    fn on_request(&mut self, _req: &mut RequestEnvelope) -> Result<(), StageError> {
        let load = self.probe.current_load();
        if load > self.ceiling {
            return Err(StageError::Overloaded {
                load,
                ceiling: self.ceiling,
            });
        }
        Ok(())
    }
}

/// Per-user [`FlowBudget`] ledgers: every request charges its
/// [`crate::RequestOp::flow_cost`] against the caller's ledger *before* the
/// backend is reached, so a spammy user's requests are rejected with
/// [`StatusCode::Throttled`] and generate zero engine messages.
///
/// Ledgers are monotone (`spent` join/max, `limit` meet/min) and the map is
/// ordered, so replaying the same request sequence — or merging remote
/// ledgers in any order — lands in the same state.
#[derive(Debug)]
pub struct FlowBudgetStage {
    default_limit: u64,
    ledgers: BTreeMap<UserId, FlowBudget>,
}

impl FlowBudgetStage {
    /// A stage granting every user `default_limit` budget units.
    #[must_use]
    pub fn new(default_limit: u64) -> Self {
        FlowBudgetStage {
            default_limit,
            ledgers: BTreeMap::new(),
        }
    }

    /// Tightens one user's limit to at most `limit` (limits never loosen).
    pub fn restrict(&mut self, user: UserId, limit: u64) {
        self.ledger_mut(user).restrict(limit);
    }

    /// Merges a replica's ledger for `user` (min limit, max spent).
    pub fn merge_remote(&mut self, user: UserId, remote: &FlowBudget) {
        self.ledger_mut(user).merge(remote);
    }

    /// The user's current ledger (the untouched default if never charged).
    #[must_use]
    pub fn budget(&self, user: UserId) -> FlowBudget {
        self.ledgers
            .get(&user)
            .copied()
            .unwrap_or(FlowBudget::new(self.default_limit))
    }

    fn ledger_mut(&mut self, user: UserId) -> &mut FlowBudget {
        self.ledgers
            .entry(user)
            .or_insert(FlowBudget::new(self.default_limit))
    }
}

impl Middleware for FlowBudgetStage {
    fn name(&self) -> &'static str {
        "flow-budget"
    }

    fn on_request(&mut self, req: &mut RequestEnvelope) -> Result<(), StageError> {
        let cost = req.op.flow_cost();
        let ledger = self.ledger_mut(req.user);
        if ledger.charge(cost) {
            Ok(())
        } else {
            Err(StageError::Throttled {
                user: req.user,
                remaining: ledger.remaining(),
            })
        }
    }
}

/// Request tracing: emits one [`TraceEventKind::EnvelopeServed`] per
/// envelope into the shared [`StoreObs`] flight recorder, which also folds
/// it into the metrics registry behind the `/metrics` endpoint.
///
/// Install this stage *first* so its `on_response` observes every outcome,
/// including rejections by later stages.
#[derive(Debug, Clone)]
pub struct TracingStage {
    obs: StoreObs,
}

impl TracingStage {
    /// A stage recording into `obs`.
    #[must_use]
    pub fn new(obs: StoreObs) -> Self {
        TracingStage { obs }
    }
}

impl Middleware for TracingStage {
    fn name(&self) -> &'static str {
        "tracing"
    }

    fn on_request(&mut self, _req: &mut RequestEnvelope) -> Result<(), StageError> {
        Ok(())
    }

    fn on_response(&mut self, req: &RequestEnvelope, resp: &mut ResponseEnvelope) {
        self.obs.trace(TraceEventKind::EnvelopeServed {
            user: req.user,
            status: resp.status,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::envelope::RequestEnvelope;

    fn u(i: u32) -> UserId {
        UserId::new(i)
    }

    /// Satellite: the single error → status table, driven variant by
    /// variant. The status class depends only on the error kind.
    #[test]
    fn stage_error_status_table() {
        let table: Vec<(StageError, StatusCode)> = vec![
            (
                StageError::Unauthorized("missing token".into()),
                StatusCode::Unauthorized,
            ),
            (
                StageError::Throttled {
                    user: u(7),
                    remaining: 0,
                },
                StatusCode::Throttled,
            ),
            (
                StageError::Overloaded {
                    load: 10,
                    ceiling: 4,
                },
                StatusCode::Overloaded,
            ),
            (
                StageError::Internal("auth table failed to load".into()),
                StatusCode::Internal,
            ),
        ];
        for (err, expected) in table {
            assert_eq!(err.status(), expected, "error {err:?}");
            assert!(err
                .detail()
                .starts_with(expected.as_str().split('-').next().unwrap()));
        }
    }

    /// A stage whose *internal* failure mentions credentials must still
    /// surface as `Internal` — the misconfigured-auth masquerade the
    /// 401-vs-500 rule exists to prevent.
    #[test]
    fn misconfigured_stage_cannot_masquerade_as_auth_failure() {
        let err = StageError::Internal("token table unreadable".into());
        assert_eq!(err.status(), StatusCode::Internal);
        assert_ne!(err.status(), StatusCode::Unauthorized);
    }

    #[test]
    fn token_auth_accepts_only_the_bound_user() {
        let mut auth = TokenAuth::new([("alice-token".to_string(), u(1))]);
        auth.register("bob-token", u(2));

        let table: Vec<(RequestEnvelope, Option<StatusCode>)> = vec![
            // Right token, right user.
            (
                RequestEnvelope::write(u(1), vec![]).with_token("alice-token"),
                None,
            ),
            // Missing token.
            (
                RequestEnvelope::write(u(1), vec![]),
                Some(StatusCode::Unauthorized),
            ),
            // Unknown token.
            (
                RequestEnvelope::write(u(1), vec![]).with_token("nope"),
                Some(StatusCode::Unauthorized),
            ),
            // Someone else's token.
            (
                RequestEnvelope::write(u(1), vec![]).with_token("bob-token"),
                Some(StatusCode::Unauthorized),
            ),
        ];
        for (mut req, expected) in table {
            let got = auth.on_request(&mut req).err().map(|e| e.status());
            assert_eq!(got, expected, "request {req:?}");
        }
    }

    #[test]
    fn admission_control_rejects_above_ceiling() {
        let gauge = Arc::new(AtomicU64::new(0));
        let mut stage = AdmissionControl::new(Box::new(Arc::clone(&gauge)), 2);
        let mut req = RequestEnvelope::read_feed(u(0));
        for load in 0..=2 {
            gauge.store(load, Ordering::SeqCst);
            assert!(stage.on_request(&mut req).is_ok(), "load {load}");
        }
        gauge.store(3, Ordering::SeqCst);
        let err = stage.on_request(&mut req).unwrap_err();
        assert_eq!(err.status(), StatusCode::Overloaded);
    }

    #[test]
    fn flow_budget_stage_throttles_at_the_limit() {
        let mut stage = FlowBudgetStage::new(3);
        let mut write = RequestEnvelope::write(u(5), vec![]);
        for _ in 0..3 {
            assert!(stage.on_request(&mut write).is_ok());
        }
        let err = stage.on_request(&mut write).unwrap_err();
        assert_eq!(err.status(), StatusCode::Throttled);
        assert_eq!(stage.budget(u(5)).spent(), 3);
        // Another user is unaffected.
        let mut other = RequestEnvelope::write(u(6), vec![]);
        assert!(stage.on_request(&mut other).is_ok());
    }

    #[test]
    fn flow_budget_stage_merges_and_restricts_monotonically() {
        let mut stage = FlowBudgetStage::new(100);
        let mut req = RequestEnvelope::write(u(1), vec![]);
        assert!(stage.on_request(&mut req).is_ok());
        // A remote replica already spent 60 under a 70 cap.
        let mut remote = FlowBudget::new(70);
        for _ in 0..60 {
            assert!(remote.charge(1));
        }
        stage.merge_remote(u(1), &remote);
        assert_eq!(stage.budget(u(1)).limit(), 70);
        assert_eq!(stage.budget(u(1)).spent(), 60);
        stage.restrict(u(1), 55);
        assert!(stage.budget(u(1)).exhausted());
        assert_eq!(
            stage.on_request(&mut req).unwrap_err().status(),
            StatusCode::Throttled
        );
    }
}
