//! Social-graph substrate for DynaSoRe.
//!
//! The paper evaluates DynaSoRe on three crawled social graphs (Twitter 2009,
//! Facebook 2008, LiveJournal — Table 1). Those datasets are not
//! redistributable, so this crate provides:
//!
//! * [`SocialGraph`] — a mutable directed graph keyed by dense [`UserId`]s,
//!   storing both out-edges (the users whose views `u` reads) and in-edges
//!   (the followers whose feeds include `u`);
//! * seeded synthetic [generators](GeneratorConfig) whose degree
//!   distributions match the published datasets' density and skew, including
//!   presets ([`GraphPreset`]) for Twitter-, Facebook- and LiveJournal-like
//!   graphs;
//! * [degree and structure metrics](metrics) used to sanity-check the
//!   generators and to drive the workload generators (read/write activity is
//!   proportional to the logarithm of a user's degree, §4.2);
//! * plain-text edge-list [I/O](io) so externally obtained datasets can be
//!   plugged in unchanged.
//!
//! # Example
//!
//! ```
//! use dynasore_graph::{GraphPreset, SocialGraph};
//!
//! let graph = SocialGraph::generate(GraphPreset::TwitterLike, 1_000, 42).unwrap();
//! assert_eq!(graph.user_count(), 1_000);
//! // Twitter-like graphs are sparse: roughly 3 links per user.
//! let avg = graph.edge_count() as f64 / graph.user_count() as f64;
//! assert!(avg > 1.0 && avg < 6.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod generate;
mod graph;
pub mod io;
pub mod metrics;

pub use dynasore_types::UserId;
pub use generate::{GeneratorConfig, GraphPreset};
pub use graph::{EdgeIter, SocialGraph};
