//! Synthetic social-graph generators.
//!
//! The crawled datasets used in the paper (Table 1) cannot be redistributed,
//! so experiments run on seeded synthetic graphs that reproduce the
//! properties DynaSoRe is sensitive to:
//!
//! * **density** — average number of links per user (Twitter ≈ 2.9,
//!   Facebook ≈ 15.7, LiveJournal ≈ 14.4);
//! * **degree skew** — heavy-tailed in-degree (a few very popular users read
//!   by many), produced by preferential attachment;
//! * **community locality** — friends of friends are likely to be connected,
//!   produced by attaching part of each user's edges to neighbours of
//!   already-chosen targets (triadic closure), which is what graph
//!   partitioning (METIS/hMETIS) and SPAR exploit.
//!
//! All generators are deterministic given a seed.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use dynasore_types::{Error, Result, UserId};

use crate::graph::SocialGraph;

/// Presets matching the three datasets of Table 1 in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GraphPreset {
    /// Twitter sample, August 2009: 1.7 M users, 5 M directed links
    /// (average out-degree ≈ 2.9, strongly skewed in-degree).
    TwitterLike,
    /// Facebook sample, 2008: 3 M users, 47 M links (average degree ≈ 15.7,
    /// mutual friendships, strong community structure).
    FacebookLike,
    /// LiveJournal sample: 4.8 M users, 69 M links (average degree ≈ 14.4).
    LiveJournalLike,
}

impl GraphPreset {
    /// The generator configuration used for this preset.
    pub fn config(self) -> GeneratorConfig {
        match self {
            GraphPreset::TwitterLike => GeneratorConfig {
                mean_out_degree: 3.0,
                reciprocity: 0.2,
                closure_probability: 0.3,
                zipf_exponent: 1.2,
            },
            GraphPreset::FacebookLike => GeneratorConfig {
                mean_out_degree: 15.7,
                reciprocity: 1.0,
                closure_probability: 0.5,
                zipf_exponent: 0.9,
            },
            GraphPreset::LiveJournalLike => GeneratorConfig {
                mean_out_degree: 14.4,
                reciprocity: 0.6,
                closure_probability: 0.4,
                zipf_exponent: 1.0,
            },
        }
    }

    /// Number of users in the original dataset (Table 1), used by the
    /// benchmark harness to report the scale factor of each run.
    pub fn paper_user_count(self) -> usize {
        match self {
            GraphPreset::TwitterLike => 1_700_000,
            GraphPreset::FacebookLike => 3_000_000,
            GraphPreset::LiveJournalLike => 4_800_000,
        }
    }

    /// Number of links in the original dataset (Table 1).
    pub fn paper_link_count(self) -> usize {
        match self {
            GraphPreset::TwitterLike => 5_000_000,
            GraphPreset::FacebookLike => 47_000_000,
            GraphPreset::LiveJournalLike => 69_000_000,
        }
    }

    /// Human-readable dataset name as used in the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            GraphPreset::TwitterLike => "Twitter",
            GraphPreset::FacebookLike => "Facebook",
            GraphPreset::LiveJournalLike => "LiveJournal",
        }
    }

    /// All presets, in the order the paper lists them.
    pub fn all() -> [GraphPreset; 3] {
        [
            GraphPreset::TwitterLike,
            GraphPreset::FacebookLike,
            GraphPreset::LiveJournalLike,
        ]
    }
}

impl std::fmt::Display for GraphPreset {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Tunable parameters of the synthetic generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GeneratorConfig {
    /// Average number of outgoing links per user.
    pub mean_out_degree: f64,
    /// Probability that a link `u → v` is reciprocated by `v → u`
    /// (1.0 yields an undirected, Facebook-like friendship graph).
    pub reciprocity: f64,
    /// Probability that a new link closes a triangle (attaches to a
    /// neighbour of an existing neighbour) instead of following preferential
    /// attachment. Higher values produce stronger community structure.
    pub closure_probability: f64,
    /// Exponent of the Zipf distribution used to draw per-user out-degrees;
    /// larger values produce more skewed activity.
    pub zipf_exponent: f64,
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        GraphPreset::TwitterLike.config()
    }
}

impl GeneratorConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] if any probability is outside
    /// `[0, 1]`, the mean degree is not positive, or the Zipf exponent is
    /// negative.
    pub fn validate(&self) -> Result<()> {
        if self.mean_out_degree <= 0.0 {
            return Err(Error::invalid_config("mean_out_degree must be positive"));
        }
        if !(0.0..=1.0).contains(&self.reciprocity) {
            return Err(Error::invalid_config("reciprocity must be in [0, 1]"));
        }
        if !(0.0..=1.0).contains(&self.closure_probability) {
            return Err(Error::invalid_config(
                "closure_probability must be in [0, 1]",
            ));
        }
        if self.zipf_exponent < 0.0 {
            return Err(Error::invalid_config("zipf_exponent must be non-negative"));
        }
        Ok(())
    }

    /// Generates a graph over `user_count` users with this configuration.
    ///
    /// The generator combines preferential attachment (targets are drawn
    /// proportionally to their current in-degree plus one) with triadic
    /// closure and optional reciprocation; out-degrees follow a truncated
    /// Zipf distribution scaled to the configured mean.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] if the configuration is invalid or
    /// `user_count < 2`.
    pub fn generate(&self, user_count: usize, seed: u64) -> Result<SocialGraph> {
        self.validate()?;
        if user_count < 2 {
            return Err(Error::invalid_config(
                "a social graph needs at least two users",
            ));
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let mut graph = SocialGraph::new(user_count);

        // Draw target out-degrees from a truncated Zipf distribution and
        // rescale to the requested mean.
        let raw: Vec<f64> = (0..user_count)
            .map(|_| zipf_sample(&mut rng, self.zipf_exponent, user_count.min(10_000)))
            .collect();
        let raw_mean = raw.iter().sum::<f64>() / user_count as f64;
        // Every reciprocated edge also raises the partner's out-degree, so
        // scale the per-user target down to keep the overall mean on target.
        let effective_mean = self.mean_out_degree / (1.0 + self.reciprocity);
        let scale = effective_mean / raw_mean;
        let degrees: Vec<usize> = raw
            .iter()
            .map(|d| ((d * scale).round() as usize).max(1).min(user_count - 1))
            .collect();

        // Preferential-attachment repository: every time a user gains an
        // in-link it is pushed once more, so sampling uniformly from the
        // repository is proportional to (in-degree + 1).
        let mut repository: Vec<UserId> = (0..user_count as u32).map(UserId::new).collect();
        repository.shuffle(&mut rng);

        // Process users in random order so early ids are not favoured.
        let mut order: Vec<u32> = (0..user_count as u32).collect();
        order.shuffle(&mut rng);

        for &uraw in &order {
            let u = UserId::new(uraw);
            let want = degrees[u.as_usize()];
            let mut attempts = 0usize;
            while graph.out_degree(u) < want && attempts < want * 8 + 16 {
                attempts += 1;
                let target =
                    if !graph.followees(u).is_empty() && rng.gen_bool(self.closure_probability) {
                        // Triadic closure: pick a random followee, then one of its
                        // followees.
                        let vs = graph.followees(u);
                        let v = vs[rng.gen_range(0..vs.len())];
                        let ws = graph.followees(v);
                        if ws.is_empty() {
                            repository[rng.gen_range(0..repository.len())]
                        } else {
                            ws[rng.gen_range(0..ws.len())]
                        }
                    } else {
                        repository[rng.gen_range(0..repository.len())]
                    };
                if target == u {
                    continue;
                }
                if graph.add_edge(u, target) {
                    repository.push(target);
                    if self.reciprocity > 0.0 && rng.gen_bool(self.reciprocity) {
                        graph.add_edge(target, u);
                        repository.push(u);
                    }
                }
            }
        }

        // Guarantee that nobody is completely isolated: an isolated user
        // would never issue reads touching other servers, which is both
        // unrealistic and degenerate for placement.
        for idx in 0..user_count as u32 {
            let u = UserId::new(idx);
            if graph.out_degree(u) == 0 {
                let target = loop {
                    let t = repository[rng.gen_range(0..repository.len())];
                    if t != u {
                        break t;
                    }
                };
                graph.add_edge(u, target);
            }
        }

        Ok(graph)
    }
}

/// Draws one sample from a Zipf-like distribution over `1..=max_rank`.
fn zipf_sample(rng: &mut StdRng, exponent: f64, max_rank: usize) -> f64 {
    // Inverse-transform sampling over a bounded Pareto distribution, which
    // approximates the Zipf rank-frequency curve well enough for degree
    // generation.
    let u: f64 = rng.gen_range(0.0f64..1.0f64);
    if exponent <= 0.0 {
        return 1.0 + u * (max_rank as f64 - 1.0);
    }
    let alpha = exponent;
    let xmin = 1.0f64;
    let xmax = max_rank as f64;
    let ha = xmin.powf(1.0 - alpha);
    let hb = xmax.powf(1.0 - alpha);
    if (1.0 - alpha).abs() < 1e-9 {
        // alpha == 1: logarithmic inverse CDF.
        (xmin.ln() + u * (xmax.ln() - xmin.ln())).exp()
    } else {
        (ha + u * (hb - ha)).powf(1.0 / (1.0 - alpha))
    }
}

impl SocialGraph {
    /// Generates a synthetic graph following one of the paper's dataset
    /// presets.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] if `user_count < 2`.
    ///
    /// # Example
    ///
    /// ```
    /// use dynasore_graph::{GraphPreset, SocialGraph};
    /// let g = SocialGraph::generate(GraphPreset::FacebookLike, 500, 1).unwrap();
    /// assert_eq!(g.user_count(), 500);
    /// ```
    pub fn generate(preset: GraphPreset, user_count: usize, seed: u64) -> Result<SocialGraph> {
        preset.config().generate(user_count, seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics;

    #[test]
    fn presets_expose_paper_numbers() {
        assert_eq!(GraphPreset::TwitterLike.paper_user_count(), 1_700_000);
        assert_eq!(GraphPreset::TwitterLike.paper_link_count(), 5_000_000);
        assert_eq!(GraphPreset::FacebookLike.paper_user_count(), 3_000_000);
        assert_eq!(GraphPreset::LiveJournalLike.paper_link_count(), 69_000_000);
        assert_eq!(GraphPreset::all().len(), 3);
        assert_eq!(GraphPreset::TwitterLike.to_string(), "Twitter");
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = SocialGraph::generate(GraphPreset::TwitterLike, 300, 7).unwrap();
        let b = SocialGraph::generate(GraphPreset::TwitterLike, 300, 7).unwrap();
        let c = SocialGraph::generate(GraphPreset::TwitterLike, 300, 8).unwrap();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn generated_graphs_are_consistent() {
        for preset in GraphPreset::all() {
            let g = SocialGraph::generate(preset, 400, 3).unwrap();
            g.validate().unwrap();
            // No isolated producers/readers.
            for u in g.users() {
                assert!(g.out_degree(u) > 0, "{preset}: user {u} has no followees");
            }
        }
    }

    #[test]
    fn densities_roughly_match_presets() {
        let n = 2_000;
        let tw = SocialGraph::generate(GraphPreset::TwitterLike, n, 11).unwrap();
        let fb = SocialGraph::generate(GraphPreset::FacebookLike, n, 11).unwrap();
        let tw_avg = tw.edge_count() as f64 / n as f64;
        let fb_avg = fb.edge_count() as f64 / n as f64;
        assert!(tw_avg > 1.5 && tw_avg < 6.0, "twitter avg degree {tw_avg}");
        assert!(
            fb_avg > 9.0 && fb_avg < 25.0,
            "facebook avg degree {fb_avg}"
        );
        assert!(fb_avg > tw_avg);
    }

    #[test]
    fn in_degree_distribution_is_skewed() {
        let g = SocialGraph::generate(GraphPreset::TwitterLike, 2_000, 5).unwrap();
        let stats = metrics::degree_stats(&g);
        // The most-followed user should have far more followers than the
        // average user — the "million follower fallacy" shape.
        assert!(stats.max_in_degree as f64 > 5.0 * stats.mean_in_degree);
    }

    #[test]
    fn facebook_preset_is_mostly_reciprocal() {
        let g = SocialGraph::generate(GraphPreset::FacebookLike, 500, 9).unwrap();
        let recip = metrics::reciprocity(&g);
        assert!(recip > 0.9, "facebook reciprocity {recip}");
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let cfg = GeneratorConfig {
            mean_out_degree: 0.0,
            ..GeneratorConfig::default()
        };
        assert!(cfg.validate().is_err());
        let cfg = GeneratorConfig {
            reciprocity: 1.5,
            ..GeneratorConfig::default()
        };
        assert!(cfg.validate().is_err());
        let cfg = GeneratorConfig {
            closure_probability: -0.1,
            ..GeneratorConfig::default()
        };
        assert!(cfg.validate().is_err());
        let cfg = GeneratorConfig {
            zipf_exponent: -1.0,
            ..GeneratorConfig::default()
        };
        assert!(cfg.validate().is_err());
        assert!(GeneratorConfig::default().generate(1, 0).is_err());
    }
}
