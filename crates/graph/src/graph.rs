//! The directed social graph.

use std::collections::HashSet;

use dynasore_types::{Error, Result, UserId};

/// A directed social graph over densely numbered users.
///
/// The edge `u → v` means *"u follows v"*: a read request from `u` fetches
/// the view of `v` (together with every other user `u` follows), and a write
/// by `v` is eventually read by `u`. Both directions are indexed:
/// [`followees`](SocialGraph::followees) returns the views a user reads,
/// [`followers`](SocialGraph::followers) returns the readers of a user's
/// view.
///
/// The graph is mutable — social networks evolve over time, and both SPAR and
/// the flash-event experiment (§4.6) add and remove edges while the system is
/// running.
///
/// # Example
///
/// ```
/// use dynasore_graph::SocialGraph;
/// use dynasore_types::UserId;
///
/// let mut g = SocialGraph::new(3);
/// let (a, b, c) = (UserId::new(0), UserId::new(1), UserId::new(2));
/// g.add_edge(a, b);
/// g.add_edge(a, c);
/// g.add_edge(b, c);
/// assert_eq!(g.out_degree(a), 2);
/// assert_eq!(g.in_degree(c), 2);
/// assert_eq!(g.edge_count(), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SocialGraph {
    /// `out[u]` = users that `u` follows (sorted, deduplicated).
    out: Vec<Vec<UserId>>,
    /// `inc[v]` = users that follow `v` (sorted, deduplicated).
    inc: Vec<Vec<UserId>>,
    edge_count: usize,
}

impl SocialGraph {
    /// Creates an empty graph over `user_count` users numbered
    /// `0..user_count`.
    pub fn new(user_count: usize) -> Self {
        SocialGraph {
            out: vec![Vec::new(); user_count],
            inc: vec![Vec::new(); user_count],
            edge_count: 0,
        }
    }

    /// Builds a graph from an iterator of `(follower, followee)` pairs.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownUser`] if any endpoint is outside
    /// `0..user_count`.
    pub fn from_edges<I>(user_count: usize, edges: I) -> Result<Self>
    where
        I: IntoIterator<Item = (UserId, UserId)>,
    {
        let mut graph = SocialGraph::new(user_count);
        for (u, v) in edges {
            graph.try_add_edge(u, v)?;
        }
        Ok(graph)
    }

    /// Builds a graph from a vector of `(follower, followee)` pairs in
    /// bulk: one sort + dedup pass instead of a per-edge sorted insert,
    /// which turns multi-million-edge ingestion (public SNAP snapshots)
    /// from quadratic memmove churn into `O(E log E)`. Self-loops and
    /// duplicate edges are tolerated and skipped, exactly as
    /// [`try_add_edge`](SocialGraph::try_add_edge) skips them, so the
    /// result equals [`from_edges`](SocialGraph::from_edges) on the same
    /// input.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownUser`] if any endpoint is outside
    /// `0..user_count`.
    pub fn from_edges_bulk(user_count: usize, mut edges: Vec<(UserId, UserId)>) -> Result<Self> {
        for &(u, v) in &edges {
            if u.as_usize() >= user_count {
                return Err(Error::UnknownUser(u));
            }
            if v.as_usize() >= user_count {
                return Err(Error::UnknownUser(v));
            }
        }
        edges.retain(|&(u, v)| u != v);
        edges.sort_unstable();
        edges.dedup();
        let mut out: Vec<Vec<UserId>> = vec![Vec::new(); user_count];
        let mut inc_degree = vec![0usize; user_count];
        for &(u, v) in &edges {
            // Sorted by (follower, followee): each out list fills in
            // ascending followee order.
            out[u.as_usize()].push(v);
            inc_degree[v.as_usize()] += 1;
        }
        let mut inc: Vec<Vec<UserId>> = inc_degree.into_iter().map(Vec::with_capacity).collect();
        for &(u, v) in &edges {
            // Followers arrive in ascending order for each followee, so the
            // inc lists come out sorted too.
            inc[v.as_usize()].push(u);
        }
        Ok(SocialGraph {
            out,
            inc,
            edge_count: edges.len(),
        })
    }

    /// Number of users in the graph.
    pub fn user_count(&self) -> usize {
        self.out.len()
    }

    /// Number of directed edges currently in the graph.
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Whether the graph has no edges.
    pub fn is_empty(&self) -> bool {
        self.edge_count == 0
    }

    /// Returns an iterator over all user ids.
    pub fn users(&self) -> impl Iterator<Item = UserId> + '_ {
        (0..self.out.len() as u32).map(UserId::new)
    }

    /// Returns `true` if `user` is a valid id for this graph.
    pub fn contains_user(&self, user: UserId) -> bool {
        user.as_usize() < self.out.len()
    }

    fn check_user(&self, user: UserId) -> Result<()> {
        if self.contains_user(user) {
            Ok(())
        } else {
            Err(Error::UnknownUser(user))
        }
    }

    /// Adds the edge `follower → followee`. Returns `true` if the edge was
    /// inserted, `false` if it already existed or is a self-loop.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is out of range; use
    /// [`try_add_edge`](SocialGraph::try_add_edge) for fallible insertion.
    pub fn add_edge(&mut self, follower: UserId, followee: UserId) -> bool {
        self.try_add_edge(follower, followee)
            .expect("user id out of range")
    }

    /// Fallible version of [`add_edge`](SocialGraph::add_edge).
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownUser`] if either endpoint is out of range.
    pub fn try_add_edge(&mut self, follower: UserId, followee: UserId) -> Result<bool> {
        self.check_user(follower)?;
        self.check_user(followee)?;
        if follower == followee {
            return Ok(false);
        }
        let out = &mut self.out[follower.as_usize()];
        match out.binary_search(&followee) {
            Ok(_) => Ok(false),
            Err(pos) => {
                out.insert(pos, followee);
                let inc = &mut self.inc[followee.as_usize()];
                let ipos = inc.binary_search(&follower).unwrap_err();
                inc.insert(ipos, follower);
                self.edge_count += 1;
                Ok(true)
            }
        }
    }

    /// Removes the edge `follower → followee`. Returns `true` if the edge
    /// existed.
    pub fn remove_edge(&mut self, follower: UserId, followee: UserId) -> bool {
        if !self.contains_user(follower) || !self.contains_user(followee) {
            return false;
        }
        let out = &mut self.out[follower.as_usize()];
        if let Ok(pos) = out.binary_search(&followee) {
            out.remove(pos);
            let inc = &mut self.inc[followee.as_usize()];
            if let Ok(ipos) = inc.binary_search(&follower) {
                inc.remove(ipos);
            }
            self.edge_count -= 1;
            true
        } else {
            false
        }
    }

    /// Returns `true` if the edge `follower → followee` exists.
    pub fn contains_edge(&self, follower: UserId, followee: UserId) -> bool {
        self.contains_user(follower)
            && self.out[follower.as_usize()]
                .binary_search(&followee)
                .is_ok()
    }

    /// The users that `user` follows — the views fetched by a read request
    /// from `user` (§2.1).
    ///
    /// # Panics
    ///
    /// Panics if `user` is out of range.
    pub fn followees(&self, user: UserId) -> &[UserId] {
        &self.out[user.as_usize()]
    }

    /// The users that follow `user` — the readers affected by a write from
    /// `user`.
    ///
    /// # Panics
    ///
    /// Panics if `user` is out of range.
    pub fn followers(&self, user: UserId) -> &[UserId] {
        &self.inc[user.as_usize()]
    }

    /// Out-degree of `user` (number of views her reads fetch).
    pub fn out_degree(&self, user: UserId) -> usize {
        self.out[user.as_usize()].len()
    }

    /// In-degree of `user` (number of users whose reads fetch her view).
    pub fn in_degree(&self, user: UserId) -> usize {
        self.inc[user.as_usize()].len()
    }

    /// Iterates over every directed edge as `(follower, followee)` pairs.
    pub fn edges(&self) -> EdgeIter<'_> {
        EdgeIter {
            graph: self,
            user: 0,
            pos: 0,
        }
    }

    /// Adds a new isolated user and returns its id. Used when new users join
    /// the system (§3.3, *Managing the social network*).
    pub fn add_user(&mut self) -> UserId {
        let id = UserId::new(self.out.len() as u32);
        self.out.push(Vec::new());
        self.inc.push(Vec::new());
        id
    }

    /// Returns the undirected neighbourhood of `user`: the union of followers
    /// and followees. Used by partitioning, which operates on the undirected
    /// structure.
    pub fn neighbours(&self, user: UserId) -> Vec<UserId> {
        let mut set: HashSet<UserId> = self.out[user.as_usize()].iter().copied().collect();
        set.extend(self.inc[user.as_usize()].iter().copied());
        let mut v: Vec<UserId> = set.into_iter().collect();
        v.sort_unstable();
        v
    }

    /// Validates internal consistency (forward and reverse indices agree).
    /// Intended for tests and debug assertions; runs in `O(V + E log E)`.
    pub fn validate(&self) -> Result<()> {
        let mut forward = 0usize;
        for (u, outs) in self.out.iter().enumerate() {
            forward += outs.len();
            for &v in outs {
                if !self.contains_user(v) {
                    return Err(Error::UnknownUser(v));
                }
                if self.inc[v.as_usize()]
                    .binary_search(&UserId::new(u as u32))
                    .is_err()
                {
                    return Err(Error::invalid_config(format!(
                        "edge {u} -> {} missing from reverse index",
                        v.index()
                    )));
                }
            }
        }
        let reverse: usize = self.inc.iter().map(Vec::len).sum();
        if forward != reverse || forward != self.edge_count {
            return Err(Error::invalid_config(format!(
                "edge count mismatch: forward={forward} reverse={reverse} cached={}",
                self.edge_count
            )));
        }
        Ok(())
    }
}

/// Iterator over all directed edges of a [`SocialGraph`].
#[derive(Debug)]
pub struct EdgeIter<'a> {
    graph: &'a SocialGraph,
    user: usize,
    pos: usize,
}

impl Iterator for EdgeIter<'_> {
    type Item = (UserId, UserId);

    fn next(&mut self) -> Option<Self::Item> {
        while self.user < self.graph.out.len() {
            let outs = &self.graph.out[self.user];
            if self.pos < outs.len() {
                let item = (UserId::new(self.user as u32), outs[self.pos]);
                self.pos += 1;
                return Some(item);
            }
            self.user += 1;
            self.pos = 0;
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn u(i: u32) -> UserId {
        UserId::new(i)
    }

    #[test]
    fn new_graph_is_empty() {
        let g = SocialGraph::new(5);
        assert_eq!(g.user_count(), 5);
        assert_eq!(g.edge_count(), 0);
        assert!(g.is_empty());
        assert_eq!(g.users().count(), 5);
    }

    #[test]
    fn add_edge_updates_both_directions() {
        let mut g = SocialGraph::new(4);
        assert!(g.add_edge(u(0), u(1)));
        assert!(g.add_edge(u(2), u(1)));
        assert_eq!(g.followees(u(0)), &[u(1)]);
        assert_eq!(g.followers(u(1)), &[u(0), u(2)]);
        assert_eq!(g.out_degree(u(0)), 1);
        assert_eq!(g.in_degree(u(1)), 2);
        g.validate().unwrap();
    }

    #[test]
    fn duplicate_and_self_edges_are_ignored() {
        let mut g = SocialGraph::new(3);
        assert!(g.add_edge(u(0), u(1)));
        assert!(!g.add_edge(u(0), u(1)));
        assert!(!g.add_edge(u(2), u(2)));
        assert_eq!(g.edge_count(), 1);
        g.validate().unwrap();
    }

    #[test]
    fn out_of_range_edges_error() {
        let mut g = SocialGraph::new(2);
        assert!(g.try_add_edge(u(0), u(5)).is_err());
        assert!(g.try_add_edge(u(5), u(0)).is_err());
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn remove_edge_round_trip() {
        let mut g = SocialGraph::new(3);
        g.add_edge(u(0), u(1));
        g.add_edge(u(0), u(2));
        assert!(g.remove_edge(u(0), u(1)));
        assert!(!g.remove_edge(u(0), u(1)));
        assert!(!g.contains_edge(u(0), u(1)));
        assert!(g.contains_edge(u(0), u(2)));
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.followers(u(1)), &[] as &[UserId]);
        g.validate().unwrap();
    }

    #[test]
    fn remove_edge_out_of_range_is_false() {
        let mut g = SocialGraph::new(2);
        assert!(!g.remove_edge(u(0), u(9)));
        assert!(!g.remove_edge(u(9), u(0)));
    }

    #[test]
    fn from_edges_builds_graph() {
        let g = SocialGraph::from_edges(3, vec![(u(0), u(1)), (u(1), u(2)), (u(0), u(2))]).unwrap();
        assert_eq!(g.edge_count(), 3);
        assert!(g.contains_edge(u(1), u(2)));
        assert!(SocialGraph::from_edges(2, vec![(u(0), u(7))]).is_err());
    }

    #[test]
    fn edge_iterator_visits_every_edge_once() {
        let edges = vec![(u(0), u(1)), (u(0), u(2)), (u(2), u(1)), (u(3), u(0))];
        let g = SocialGraph::from_edges(4, edges.clone()).unwrap();
        let mut seen: Vec<(UserId, UserId)> = g.edges().collect();
        seen.sort();
        let mut expected = edges;
        expected.sort();
        assert_eq!(seen, expected);
    }

    #[test]
    fn add_user_grows_graph() {
        let mut g = SocialGraph::new(2);
        let id = g.add_user();
        assert_eq!(id, u(2));
        assert_eq!(g.user_count(), 3);
        g.add_edge(u(2), u(0));
        assert_eq!(g.followers(u(0)), &[u(2)]);
    }

    #[test]
    fn neighbours_are_union_of_directions() {
        let mut g = SocialGraph::new(4);
        g.add_edge(u(0), u(1));
        g.add_edge(u(2), u(0));
        g.add_edge(u(0), u(2));
        assert_eq!(g.neighbours(u(0)), vec![u(1), u(2)]);
        assert_eq!(g.neighbours(u(3)), Vec::<UserId>::new());
    }

    #[test]
    fn followees_are_sorted() {
        let mut g = SocialGraph::new(5);
        g.add_edge(u(0), u(4));
        g.add_edge(u(0), u(2));
        g.add_edge(u(0), u(3));
        assert_eq!(g.followees(u(0)), &[u(2), u(3), u(4)]);
    }
}
