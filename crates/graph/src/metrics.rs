//! Structural metrics over social graphs.
//!
//! These are used to sanity-check the synthetic generators against the
//! published dataset characteristics (Table 1) and by the workload
//! generators, which scale each user's activity with the logarithm of her
//! degree (§4.2, citing Huberman et al.).

use dynasore_types::UserId;

use crate::graph::SocialGraph;

/// Summary statistics of a graph's degree distributions.
#[derive(Debug, Clone, PartialEq)]
pub struct DegreeStats {
    /// Number of users.
    pub user_count: usize,
    /// Number of directed edges.
    pub edge_count: usize,
    /// Mean out-degree (views fetched per read).
    pub mean_out_degree: f64,
    /// Mean in-degree (readers per view).
    pub mean_in_degree: f64,
    /// Maximum out-degree.
    pub max_out_degree: usize,
    /// Maximum in-degree.
    pub max_in_degree: usize,
    /// Number of users with no followees.
    pub isolated_readers: usize,
    /// Number of users with no followers.
    pub unread_producers: usize,
}

/// Computes [`DegreeStats`] for a graph.
pub fn degree_stats(graph: &SocialGraph) -> DegreeStats {
    let n = graph.user_count();
    let mut max_out = 0usize;
    let mut max_in = 0usize;
    let mut isolated_readers = 0usize;
    let mut unread_producers = 0usize;
    for u in graph.users() {
        let od = graph.out_degree(u);
        let id = graph.in_degree(u);
        max_out = max_out.max(od);
        max_in = max_in.max(id);
        if od == 0 {
            isolated_readers += 1;
        }
        if id == 0 {
            unread_producers += 1;
        }
    }
    let e = graph.edge_count() as f64;
    DegreeStats {
        user_count: n,
        edge_count: graph.edge_count(),
        mean_out_degree: if n == 0 { 0.0 } else { e / n as f64 },
        mean_in_degree: if n == 0 { 0.0 } else { e / n as f64 },
        max_out_degree: max_out,
        max_in_degree: max_in,
        isolated_readers,
        unread_producers,
    }
}

/// Fraction of directed edges `u → v` for which the reverse edge `v → u`
/// also exists. 1.0 for an undirected (friendship) graph, lower for
/// follower-style graphs.
pub fn reciprocity(graph: &SocialGraph) -> f64 {
    if graph.edge_count() == 0 {
        return 0.0;
    }
    let mut reciprocated = 0usize;
    for (u, v) in graph.edges() {
        if graph.contains_edge(v, u) {
            reciprocated += 1;
        }
    }
    reciprocated as f64 / graph.edge_count() as f64
}

/// Histogram of a degree sequence: `histogram[d]` = number of users with
/// degree exactly `d` (clamped to `max_bucket`, with the last bucket
/// collecting the tail).
pub fn degree_histogram(degrees: impl Iterator<Item = usize>, max_bucket: usize) -> Vec<usize> {
    let mut hist = vec![0usize; max_bucket + 1];
    for d in degrees {
        let bucket = d.min(max_bucket);
        hist[bucket] += 1;
    }
    hist
}

/// In-degree histogram of a graph (see [`degree_histogram`]).
pub fn in_degree_histogram(graph: &SocialGraph, max_bucket: usize) -> Vec<usize> {
    degree_histogram(graph.users().map(|u| graph.in_degree(u)), max_bucket)
}

/// Out-degree histogram of a graph (see [`degree_histogram`]).
pub fn out_degree_histogram(graph: &SocialGraph, max_bucket: usize) -> Vec<usize> {
    degree_histogram(graph.users().map(|u| graph.out_degree(u)), max_bucket)
}

/// Estimates the global clustering tendency by sampling `samples` wedges
/// (paths u → v → w) and reporting the fraction that close into a triangle
/// (u → w exists). Deterministic given the sampling stride.
pub fn sampled_closure(graph: &SocialGraph, samples: usize) -> f64 {
    if graph.edge_count() == 0 || samples == 0 {
        return 0.0;
    }
    let n = graph.user_count();
    let mut wedges = 0usize;
    let mut closed = 0usize;
    let mut i = 0usize;
    'outer: for step in 0..n {
        let u = UserId::new(((step * 7919) % n) as u32);
        let vs = graph.followees(u);
        for &v in vs {
            for &w in graph.followees(v) {
                if w == u {
                    continue;
                }
                wedges += 1;
                if graph.contains_edge(u, w) {
                    closed += 1;
                }
                i += 1;
                if i >= samples {
                    break 'outer;
                }
            }
        }
    }
    if wedges == 0 {
        0.0
    } else {
        closed as f64 / wedges as f64
    }
}

/// The per-user activity weight used by the synthetic workload generator:
/// `ln(1 + degree)`, following Huberman et al. as adopted in §4.2.
pub fn log_activity_weight(degree: usize) -> f64 {
    (1.0 + degree as f64).ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn u(i: u32) -> UserId {
        UserId::new(i)
    }

    fn triangle() -> SocialGraph {
        let mut g = SocialGraph::new(3);
        g.add_edge(u(0), u(1));
        g.add_edge(u(1), u(2));
        g.add_edge(u(0), u(2));
        g
    }

    #[test]
    fn degree_stats_on_small_graph() {
        let g = triangle();
        let s = degree_stats(&g);
        assert_eq!(s.user_count, 3);
        assert_eq!(s.edge_count, 3);
        assert_eq!(s.max_out_degree, 2);
        assert_eq!(s.max_in_degree, 2);
        assert_eq!(s.isolated_readers, 1); // user 2 follows nobody
        assert_eq!(s.unread_producers, 1); // user 0 has no followers
        assert!((s.mean_out_degree - 1.0).abs() < 1e-9);
    }

    #[test]
    fn degree_stats_on_empty_graph() {
        let g = SocialGraph::new(0);
        let s = degree_stats(&g);
        assert_eq!(s.user_count, 0);
        assert_eq!(s.mean_out_degree, 0.0);
    }

    #[test]
    fn reciprocity_bounds() {
        let g = triangle();
        assert_eq!(reciprocity(&g), 0.0);
        let mut g2 = triangle();
        g2.add_edge(u(1), u(0));
        g2.add_edge(u(2), u(1));
        g2.add_edge(u(2), u(0));
        assert!((reciprocity(&g2) - 1.0).abs() < 1e-9);
        assert_eq!(reciprocity(&SocialGraph::new(4)), 0.0);
    }

    #[test]
    fn histograms_count_users() {
        let g = triangle();
        let hist = out_degree_histogram(&g, 4);
        assert_eq!(hist.iter().sum::<usize>(), 3);
        assert_eq!(hist[2], 1); // user 0 has out-degree 2
        assert_eq!(hist[0], 1); // user 2 has out-degree 0
        let ih = in_degree_histogram(&g, 1);
        // tail bucket collects degree-2 user
        assert_eq!(ih.iter().sum::<usize>(), 3);
        assert_eq!(ih[1], 2);
    }

    #[test]
    fn sampled_closure_detects_triangles() {
        // u0 -> u1 -> u2 and u0 -> u2 closes the wedge.
        let g = triangle();
        let c = sampled_closure(&g, 100);
        assert!(c > 0.0);
        // A pure chain has no closed wedges.
        let mut chain = SocialGraph::new(3);
        chain.add_edge(u(0), u(1));
        chain.add_edge(u(1), u(2));
        assert_eq!(sampled_closure(&chain, 100), 0.0);
        assert_eq!(sampled_closure(&SocialGraph::new(2), 10), 0.0);
    }

    #[test]
    fn log_activity_weight_is_monotone() {
        assert!(log_activity_weight(0) >= 0.0);
        assert!(log_activity_weight(10) > log_activity_weight(2));
        assert!(log_activity_weight(1000) > log_activity_weight(100));
    }
}
