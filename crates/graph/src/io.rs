//! Plain-text edge-list input/output.
//!
//! The format is one directed edge per line, `follower followee`, with `#`
//! comments and blank lines ignored — the same format distributed with the
//! SNAP versions of the datasets the paper uses, so externally obtained
//! copies of the Twitter/Facebook/LiveJournal crawls can be loaded directly.

use std::io::{BufRead, BufReader, BufWriter, Read, Write};

use dynasore_types::{Error, Result, UserId};

use crate::graph::SocialGraph;

/// Writes `graph` as an edge list to `writer`.
///
/// # Errors
///
/// Returns [`Error::Io`] if the underlying writer fails.
///
/// # Example
///
/// ```
/// use dynasore_graph::{io, SocialGraph};
/// use dynasore_types::UserId;
///
/// # fn main() -> Result<(), dynasore_types::Error> {
/// let mut g = SocialGraph::new(2);
/// g.add_edge(UserId::new(0), UserId::new(1));
/// let mut buf = Vec::new();
/// io::write_edge_list(&g, &mut buf)?;
/// let parsed = io::read_edge_list(&buf[..])?;
/// assert_eq!(parsed, g);
/// # Ok(())
/// # }
/// ```
pub fn write_edge_list<W: Write>(graph: &SocialGraph, writer: W) -> Result<()> {
    let mut out = BufWriter::new(writer);
    writeln!(out, "# dynasore edge list: {} users", graph.user_count())?;
    for (u, v) in graph.edges() {
        writeln!(out, "{} {}", u.index(), v.index())?;
    }
    out.flush()?;
    Ok(())
}

/// Reads an edge list produced by [`write_edge_list`] or any SNAP-style
/// `src dst` file: `#` comment headers and blank lines are skipped, fields
/// may be tab- or space-separated, and self-loops and duplicate edges —
/// both present in the public Twitter/Flickr/LiveJournal snapshots — are
/// tolerated and dropped.
///
/// The number of users comes from the `# dynasore edge list: N users`
/// header when present, so a round trip through [`write_edge_list`]
/// preserves trailing isolated users and edgeless graphs exactly; for
/// foreign SNAP files without the header it falls back to `max id + 1`.
///
/// Construction is bulk (one sort over the whole edge vector rather than a
/// per-edge sorted insert), so multi-million-edge snapshots load in
/// `O(E log E)`.
///
/// # Errors
///
/// Returns [`Error::Io`] on malformed lines, a dynasore header whose user
/// count an edge endpoint exceeds, or reader failures.
pub fn read_edge_list<R: Read>(reader: R) -> Result<SocialGraph> {
    let buf = BufReader::new(reader);
    let mut edges: Vec<(UserId, UserId)> = Vec::new();
    let mut max_id = 0u32;
    let mut declared_users: Option<usize> = None;
    for (lineno, line) in buf.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            if declared_users.is_none() {
                declared_users = parse_user_count_header(trimmed);
            }
            continue;
        }
        let mut parts = trimmed.split_whitespace();
        let src = parts
            .next()
            .ok_or_else(|| Error::io(format!("line {}: missing source", lineno + 1)))?;
        let dst = parts
            .next()
            .ok_or_else(|| Error::io(format!("line {}: missing destination", lineno + 1)))?;
        let src: u32 = src
            .parse()
            .map_err(|_| Error::io(format!("line {}: bad source id {src:?}", lineno + 1)))?;
        let dst: u32 = dst
            .parse()
            .map_err(|_| Error::io(format!("line {}: bad destination id {dst:?}", lineno + 1)))?;
        max_id = max_id.max(src).max(dst);
        edges.push((UserId::new(src), UserId::new(dst)));
    }
    let inferred = if edges.is_empty() {
        0
    } else {
        max_id as usize + 1
    };
    let users = match declared_users {
        Some(declared) if declared < inferred => {
            return Err(Error::io(format!(
                "header declares {declared} users but an edge references user {max_id}"
            )));
        }
        Some(declared) => declared,
        None => inferred,
    };
    if edges.is_empty() {
        return Ok(SocialGraph::new(users));
    }
    SocialGraph::from_edges_bulk(users, edges)
}

/// Parses the `# dynasore edge list: N users` header [`write_edge_list`]
/// emits. Returns `None` for every other comment line (SNAP headers and the
/// like), leaving the user count to be inferred from the edges.
fn parse_user_count_header(comment: &str) -> Option<usize> {
    let rest = comment.strip_prefix("# dynasore edge list:")?;
    let count = rest.trim().strip_suffix("users")?;
    count.trim().parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn u(i: u32) -> UserId {
        UserId::new(i)
    }

    #[test]
    fn round_trip_preserves_graph() {
        let mut g = SocialGraph::new(5);
        g.add_edge(u(0), u(1));
        g.add_edge(u(3), u(4));
        g.add_edge(u(4), u(0));
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let parsed = read_edge_list(&buf[..]).unwrap();
        assert_eq!(parsed.edge_count(), g.edge_count());
        for (a, b) in g.edges() {
            assert!(parsed.contains_edge(a, b));
        }
    }

    #[test]
    fn round_trip_preserves_trailing_isolated_users() {
        // Regression: users 2..5 have no edges, so `max id + 1` inference
        // would shrink this to a 2-user graph on reopen. The dynasore
        // header must restore the exact count.
        let mut g = SocialGraph::new(5);
        g.add_edge(u(0), u(1));
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let parsed = read_edge_list(&buf[..]).unwrap();
        assert_eq!(parsed, g);
        assert_eq!(parsed.user_count(), 5);
    }

    #[test]
    fn round_trip_preserves_edgeless_graph() {
        let g = SocialGraph::new(7);
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let parsed = read_edge_list(&buf[..]).unwrap();
        assert_eq!(parsed, g);
        assert_eq!(parsed.user_count(), 7);
        assert_eq!(parsed.edge_count(), 0);

        // The empty graph also survives.
        let empty = SocialGraph::new(0);
        let mut buf = Vec::new();
        write_edge_list(&empty, &mut buf).unwrap();
        assert_eq!(read_edge_list(&buf[..]).unwrap(), empty);
    }

    #[test]
    fn header_smaller_than_edge_ids_is_rejected() {
        let text = "# dynasore edge list: 2 users\n0 1\n3 1\n";
        assert!(read_edge_list(text.as_bytes()).is_err());
    }

    #[test]
    fn foreign_snap_headers_do_not_declare_a_count() {
        // A SNAP `# Nodes: 4 Edges: 5` header is not a dynasore header;
        // the count still comes from the edges.
        let text = "# Nodes: 9 Edges: 1\n0 1\n";
        let g = read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(g.user_count(), 2);
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let text = "# header\n\n0 1\n  # another\n1 2\n";
        let g = read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(g.user_count(), 3);
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    fn malformed_lines_error() {
        assert!(read_edge_list("0\n".as_bytes()).is_err());
        assert!(read_edge_list("a b\n".as_bytes()).is_err());
        assert!(read_edge_list("1 x\n".as_bytes()).is_err());
    }

    #[test]
    fn empty_input_yields_empty_graph() {
        let g = read_edge_list("# nothing\n".as_bytes()).unwrap();
        assert_eq!(g.user_count(), 0);
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn snap_style_input_is_tolerated() {
        // Tab separators, a self-loop, and a duplicate edge — all present
        // in real SNAP snapshots.
        let text = "# Directed graph: ./twitter_combined.txt\n\
                    # Nodes: 4 Edges: 5\n\
                    0\t1\n\
                    2\t2\n\
                    0\t1\n\
                    3 1\n\
                    1\t0\n";
        let g = read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(g.user_count(), 4);
        // Self-loop and duplicate dropped: 0→1, 3→1, 1→0 remain.
        assert_eq!(g.edge_count(), 3);
        assert!(g.contains_edge(u(0), u(1)));
        assert!(g.contains_edge(u(1), u(0)));
        assert!(g.contains_edge(u(3), u(1)));
        assert!(!g.contains_edge(u(2), u(2)));
    }

    #[test]
    fn bulk_construction_matches_incremental() {
        let edges = vec![
            (u(4), u(0)),
            (u(0), u(1)),
            (u(0), u(1)), // duplicate
            (u(3), u(3)), // self-loop
            (u(3), u(4)),
            (u(1), u(2)),
            (u(0), u(3)),
        ];
        let bulk = SocialGraph::from_edges_bulk(5, edges.clone()).unwrap();
        let incremental =
            SocialGraph::from_edges(5, edges.into_iter().filter(|(a, b)| a != b)).unwrap();
        assert_eq!(bulk, incremental);
        for user in bulk.users() {
            assert_eq!(bulk.followees(user), incremental.followees(user));
            assert_eq!(bulk.followers(user), incremental.followers(user));
        }
    }
}
