//! Plain-text edge-list input/output.
//!
//! The format is one directed edge per line, `follower followee`, with `#`
//! comments and blank lines ignored — the same format distributed with the
//! SNAP versions of the datasets the paper uses, so externally obtained
//! copies of the Twitter/Facebook/LiveJournal crawls can be loaded directly.

use std::io::{BufRead, BufReader, BufWriter, Read, Write};

use dynasore_types::{Error, Result, UserId};

use crate::graph::SocialGraph;

/// Writes `graph` as an edge list to `writer`.
///
/// # Errors
///
/// Returns [`Error::Io`] if the underlying writer fails.
///
/// # Example
///
/// ```
/// use dynasore_graph::{io, SocialGraph};
/// use dynasore_types::UserId;
///
/// # fn main() -> Result<(), dynasore_types::Error> {
/// let mut g = SocialGraph::new(2);
/// g.add_edge(UserId::new(0), UserId::new(1));
/// let mut buf = Vec::new();
/// io::write_edge_list(&g, &mut buf)?;
/// let parsed = io::read_edge_list(&buf[..])?;
/// assert_eq!(parsed, g);
/// # Ok(())
/// # }
/// ```
pub fn write_edge_list<W: Write>(graph: &SocialGraph, writer: W) -> Result<()> {
    let mut out = BufWriter::new(writer);
    writeln!(out, "# dynasore edge list: {} users", graph.user_count())?;
    for (u, v) in graph.edges() {
        writeln!(out, "{} {}", u.index(), v.index())?;
    }
    out.flush()?;
    Ok(())
}

/// Reads an edge list produced by [`write_edge_list`] or any SNAP-style
/// `src dst` file: `#` comment headers and blank lines are skipped, fields
/// may be tab- or space-separated, and self-loops and duplicate edges —
/// both present in the public Twitter/Flickr/LiveJournal snapshots — are
/// tolerated and dropped. The number of users is `max id + 1`.
///
/// Construction is bulk (one sort over the whole edge vector rather than a
/// per-edge sorted insert), so multi-million-edge snapshots load in
/// `O(E log E)`.
///
/// # Errors
///
/// Returns [`Error::Io`] on malformed lines or reader failures.
pub fn read_edge_list<R: Read>(reader: R) -> Result<SocialGraph> {
    let buf = BufReader::new(reader);
    let mut edges: Vec<(UserId, UserId)> = Vec::new();
    let mut max_id = 0u32;
    for (lineno, line) in buf.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut parts = trimmed.split_whitespace();
        let src = parts
            .next()
            .ok_or_else(|| Error::io(format!("line {}: missing source", lineno + 1)))?;
        let dst = parts
            .next()
            .ok_or_else(|| Error::io(format!("line {}: missing destination", lineno + 1)))?;
        let src: u32 = src
            .parse()
            .map_err(|_| Error::io(format!("line {}: bad source id {src:?}", lineno + 1)))?;
        let dst: u32 = dst
            .parse()
            .map_err(|_| Error::io(format!("line {}: bad destination id {dst:?}", lineno + 1)))?;
        max_id = max_id.max(src).max(dst);
        edges.push((UserId::new(src), UserId::new(dst)));
    }
    if edges.is_empty() {
        return Ok(SocialGraph::new(0));
    }
    SocialGraph::from_edges_bulk(max_id as usize + 1, edges)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn u(i: u32) -> UserId {
        UserId::new(i)
    }

    #[test]
    fn round_trip_preserves_graph() {
        let mut g = SocialGraph::new(5);
        g.add_edge(u(0), u(1));
        g.add_edge(u(3), u(4));
        g.add_edge(u(4), u(0));
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let parsed = read_edge_list(&buf[..]).unwrap();
        assert_eq!(parsed.edge_count(), g.edge_count());
        for (a, b) in g.edges() {
            assert!(parsed.contains_edge(a, b));
        }
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let text = "# header\n\n0 1\n  # another\n1 2\n";
        let g = read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(g.user_count(), 3);
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    fn malformed_lines_error() {
        assert!(read_edge_list("0\n".as_bytes()).is_err());
        assert!(read_edge_list("a b\n".as_bytes()).is_err());
        assert!(read_edge_list("1 x\n".as_bytes()).is_err());
    }

    #[test]
    fn empty_input_yields_empty_graph() {
        let g = read_edge_list("# nothing\n".as_bytes()).unwrap();
        assert_eq!(g.user_count(), 0);
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn snap_style_input_is_tolerated() {
        // Tab separators, a self-loop, and a duplicate edge — all present
        // in real SNAP snapshots.
        let text = "# Directed graph: ./twitter_combined.txt\n\
                    # Nodes: 4 Edges: 5\n\
                    0\t1\n\
                    2\t2\n\
                    0\t1\n\
                    3 1\n\
                    1\t0\n";
        let g = read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(g.user_count(), 4);
        // Self-loop and duplicate dropped: 0→1, 3→1, 1→0 remain.
        assert_eq!(g.edge_count(), 3);
        assert!(g.contains_edge(u(0), u(1)));
        assert!(g.contains_edge(u(1), u(0)));
        assert!(g.contains_edge(u(3), u(1)));
        assert!(!g.contains_edge(u(2), u(2)));
    }

    #[test]
    fn bulk_construction_matches_incremental() {
        let edges = vec![
            (u(4), u(0)),
            (u(0), u(1)),
            (u(0), u(1)), // duplicate
            (u(3), u(3)), // self-loop
            (u(3), u(4)),
            (u(1), u(2)),
            (u(0), u(3)),
        ];
        let bulk = SocialGraph::from_edges_bulk(5, edges.clone()).unwrap();
        let incremental =
            SocialGraph::from_edges(5, edges.into_iter().filter(|(a, b)| a != b)).unwrap();
        assert_eq!(bulk, incremental);
        for user in bulk.users() {
            assert_eq!(bulk.followees(user), incremental.followees(user));
            assert_eq!(bulk.followers(user), incremental.followers(user));
        }
    }
}
