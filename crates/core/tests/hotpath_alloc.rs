//! Allocation-counting proof of the zero-allocation hot path: once the
//! placement has converged, `handle_read` and `handle_write` must not touch
//! the heap at all — replica routing, transfer tallies, statistics updates
//! and proxy placement all run on reused buffers.
//!
//! A counting global allocator wraps the system allocator; the workload is
//! replayed until the engine stops changing placement, then the same
//! requests are measured with the counter armed.
//!
//! The sink also carries a pre-allocated [`FlightRecorder`] and a
//! [`MetricsRegistry`] and folds every engine trace into both, so the
//! measurement covers observability-enabled mode: recording a trace event
//! must be as alloc-free as the read/write paths it rides on.
#![allow(unsafe_code)] // the GlobalAlloc trait is unsafe by construction

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use dynasore_core::{DynaSoReEngine, InitialPlacement};
use dynasore_graph::{GraphPreset, SocialGraph};
use dynasore_topology::Topology;
use dynasore_types::{
    FlightRecorder, MemoryBudget, Message, MetricsRegistry, PlacementEngine, SimTime,
    TraceEventKind, TrafficSink, UserId,
};

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

struct CountingAllocator;

// SAFETY: delegates every operation to the system allocator unchanged; the
// counter is a relaxed atomic side effect.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

/// A sink that counts messages and records every trace event into a
/// pre-allocated flight recorder + metrics registry — the
/// observability-enabled configuration, with storage charged up front so
/// steady-state recording costs nothing.
struct CountingSink {
    messages: u64,
    traces: u64,
    recorder: FlightRecorder,
    registry: MetricsRegistry,
}

impl TrafficSink for CountingSink {
    fn record(&mut self, _message: Message) {
        self.messages += 1;
    }

    fn trace(&mut self, kind: TraceEventKind) {
        self.traces += 1;
        self.registry.apply(kind);
        self.recorder.record(self.traces, kind);
    }
}

/// Single test on purpose: the allocation counter is process-global, and a
/// sibling test running concurrently would pollute the measured window.
#[test]
fn steady_state_reads_and_writes_do_not_allocate() {
    let users = 400usize;
    let graph = SocialGraph::generate(GraphPreset::FacebookLike, users, 11).unwrap();
    let topology = Topology::tree(2, 2, 5, 1).unwrap();
    let mut engine = DynaSoReEngine::builder()
        .topology(topology)
        .budget(MemoryBudget::with_extra_percent(users, 30))
        .initial_placement(InitialPlacement::Random { seed: 1 })
        .build(&graph)
        .unwrap();

    let mut sink = CountingSink {
        messages: 0,
        traces: 0,
        recorder: FlightRecorder::new(4096),
        registry: MetricsRegistry::new(),
    };
    // Every view is read by exactly one reader (u reads u+1), so once the
    // read proxies migrate to the data and the placement settles there is
    // no cross-rack read pressure left and the engine reaches a fixed
    // point. (Fan-in workloads keep migrating replicas between equally good
    // positions forever — by design — and replica moves may allocate.)
    let workload: Vec<(UserId, Vec<UserId>)> = (0..users as u32)
        .step_by(3)
        .map(UserId::new)
        .map(|u| (u, vec![UserId::new((u.index() + 1) % users as u32)]))
        .collect();

    // Warm up until the placement reaches its fixed point: replicas get
    // created and migrated while the engine adapts, after which repeating
    // the identical workload changes nothing.
    for _ in 0..30 {
        for (user, targets) in &workload {
            engine.handle_read(*user, targets, SimTime::from_secs(5), &mut sink);
            engine.handle_write(*user, SimTime::from_secs(5), &mut sink);
        }
    }

    let warmup_traces = sink.traces;

    // Measure the same workload with the counter armed. Steady state emits
    // no organic trace events (nothing changes placement any more), so the
    // recording path is exercised explicitly inside the armed window: a
    // full ring's worth of events through the same sink, wrapping the ring
    // at least once.
    let before = ALLOCATIONS.load(Ordering::SeqCst);
    for _ in 0..3 {
        for (user, targets) in &workload {
            engine.handle_read(*user, targets, SimTime::from_secs(6), &mut sink);
            engine.handle_write(*user, SimTime::from_secs(6), &mut sink);
        }
    }
    for tick_secs in 0..8192u64 {
        sink.trace(TraceEventKind::TickSample {
            tick_secs,
            unreachable_reads: 0,
        });
    }
    let allocations = ALLOCATIONS.load(Ordering::SeqCst) - before;
    assert!(sink.messages > 0, "the workload produced no traffic");
    assert!(
        warmup_traces > 0,
        "placement convergence traced no decisions during warmup"
    );
    assert!(
        !sink.recorder.is_empty(),
        "the flight recorder stayed empty"
    );
    assert_eq!(
        allocations, 0,
        "steady-state handle_read/handle_write/trace allocated {allocations} times"
    );
}
