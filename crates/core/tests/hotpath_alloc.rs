//! Allocation-counting proof of the zero-allocation hot path: once the
//! placement has converged, `handle_read` and `handle_write` must not touch
//! the heap at all — replica routing, transfer tallies, statistics updates
//! and proxy placement all run on reused buffers.
//!
//! A counting global allocator wraps the system allocator; the workload is
//! replayed until the engine stops changing placement, then the same
//! requests are measured with the counter armed.
#![allow(unsafe_code)] // the GlobalAlloc trait is unsafe by construction

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use dynasore_core::{DynaSoReEngine, InitialPlacement};
use dynasore_graph::{GraphPreset, SocialGraph};
use dynasore_topology::Topology;
use dynasore_types::{MemoryBudget, Message, PlacementEngine, SimTime, TrafficSink, UserId};

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

struct CountingAllocator;

// SAFETY: delegates every operation to the system allocator unchanged; the
// counter is a relaxed atomic side effect.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

/// A sink that only counts, so measuring the engine does not charge the
/// sink's own storage to the hot path.
struct CountingSink {
    messages: u64,
}

impl TrafficSink for CountingSink {
    fn record(&mut self, _message: Message) {
        self.messages += 1;
    }
}

/// Single test on purpose: the allocation counter is process-global, and a
/// sibling test running concurrently would pollute the measured window.
#[test]
fn steady_state_reads_and_writes_do_not_allocate() {
    let users = 400usize;
    let graph = SocialGraph::generate(GraphPreset::FacebookLike, users, 11).unwrap();
    let topology = Topology::tree(2, 2, 5, 1).unwrap();
    let mut engine = DynaSoReEngine::builder()
        .topology(topology)
        .budget(MemoryBudget::with_extra_percent(users, 30))
        .initial_placement(InitialPlacement::Random { seed: 1 })
        .build(&graph)
        .unwrap();

    let mut sink = CountingSink { messages: 0 };
    // Every view is read by exactly one reader (u reads u+1), so once the
    // read proxies migrate to the data and the placement settles there is
    // no cross-rack read pressure left and the engine reaches a fixed
    // point. (Fan-in workloads keep migrating replicas between equally good
    // positions forever — by design — and replica moves may allocate.)
    let workload: Vec<(UserId, Vec<UserId>)> = (0..users as u32)
        .step_by(3)
        .map(UserId::new)
        .map(|u| (u, vec![UserId::new((u.index() + 1) % users as u32)]))
        .collect();

    // Warm up until the placement reaches its fixed point: replicas get
    // created and migrated while the engine adapts, after which repeating
    // the identical workload changes nothing.
    for _ in 0..30 {
        for (user, targets) in &workload {
            engine.handle_read(*user, targets, SimTime::from_secs(5), &mut sink);
            engine.handle_write(*user, SimTime::from_secs(5), &mut sink);
        }
    }

    // Measure the same workload with the counter armed.
    let before = ALLOCATIONS.load(Ordering::SeqCst);
    for _ in 0..3 {
        for (user, targets) in &workload {
            engine.handle_read(*user, targets, SimTime::from_secs(6), &mut sink);
            engine.handle_write(*user, SimTime::from_secs(6), &mut sink);
        }
    }
    let allocations = ALLOCATIONS.load(Ordering::SeqCst) - before;
    assert!(sink.messages > 0, "the workload produced no traffic");
    assert_eq!(
        allocations, 0,
        "steady-state handle_read/handle_write allocated {allocations} times"
    );
}
