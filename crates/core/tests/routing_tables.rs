//! Property test: the table-backed routing policy (`closest_replica`) must
//! agree with a naive reference that recomputes switch distances by walking
//! the tree, on random topologies and random replica sets.

use dynasore_core::routing::closest_replica;
use dynasore_topology::Topology;
use dynasore_types::MachineId;
use proptest::prelude::*;

/// Naive switch distance: derived from the dense rack-by-rack machine
/// numbering, independent of the `Topology` tables.
fn naive_distance(machines_per_rack: usize, racks_per_intermediate: usize, a: u32, b: u32) -> u32 {
    if a == b {
        return 0;
    }
    let ra = a / machines_per_rack as u32;
    let rb = b / machines_per_rack as u32;
    if ra == rb {
        return 1;
    }
    if ra / racks_per_intermediate as u32 == rb / racks_per_intermediate as u32 {
        return 3;
    }
    5
}

/// Naive routing policy: minimise (distance, machine id) by brute force.
fn naive_closest(
    machines_per_rack: usize,
    racks_per_intermediate: usize,
    broker: u32,
    replicas: &[u32],
) -> Option<u32> {
    replicas.iter().copied().min_by_key(|&r| {
        (
            naive_distance(machines_per_rack, racks_per_intermediate, broker, r),
            r,
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn closest_replica_matches_naive_reference(
        inter in 1usize..6,
        racks in 1usize..6,
        machines in 2usize..8,
        broker_pick in 0usize..10_000,
        replica_picks in proptest::collection::vec(0usize..10_000, 0..12),
    ) {
        let topo = Topology::tree(inter, racks, machines, 1).unwrap();
        let n = topo.machine_count();
        let broker = (broker_pick % n) as u32;
        let replicas: Vec<MachineId> = replica_picks
            .iter()
            .map(|&p| MachineId::new((p % n) as u32))
            .collect();
        let raw: Vec<u32> = replicas.iter().map(|m| m.index()).collect();

        let expected = naive_closest(machines, racks, broker, &raw);
        let got = closest_replica(&topo, MachineId::new(broker), &replicas);
        prop_assert_eq!(got.map(|m| m.index()), expected);
    }
}
