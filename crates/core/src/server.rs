//! Per-server storage state.
//!
//! A DynaSoRe server is "an in-memory key-value store implementing a memory
//! management policy. A server has a fixed memory capacity, expressed as the
//! number of views it can store" (§3.2, *Storage management*). Alongside
//! each stored view the server keeps the replica's access statistics and an
//! admission threshold that gates the creation of new replicas on it.

use std::collections::BTreeMap;

use dynasore_types::{MachineId, UserId};

use crate::stats::ReplicaStats;

/// The storage state of one view server.
///
/// Views are kept in a `BTreeMap` so that iteration order — and therefore
/// eviction-victim tie-breaking and every other decision derived from a scan
/// of the stored views — is deterministic across runs. A `HashMap` here made
/// whole-simulation outcomes depend on the process's random hash seed.
#[derive(Debug, Clone)]
pub struct ServerState {
    machine: MachineId,
    capacity: usize,
    window_slots: usize,
    views: BTreeMap<UserId, ReplicaStats>,
    admission_threshold: f64,
}

impl ServerState {
    /// Creates an empty server with room for `capacity` views, using
    /// rotating statistics windows of `window_slots` periods.
    pub fn new(machine: MachineId, capacity: usize, window_slots: usize) -> Self {
        ServerState {
            machine,
            capacity,
            window_slots,
            views: BTreeMap::new(),
            admission_threshold: 0.0,
        }
    }

    /// The machine this server runs on.
    pub fn machine(&self) -> MachineId {
        self.machine
    }

    /// Maximum number of views this server can hold.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of views currently stored.
    pub fn len(&self) -> usize {
        self.views.len()
    }

    /// Whether the server stores no views.
    pub fn is_empty(&self) -> bool {
        self.views.is_empty()
    }

    /// Whether the server has reached its capacity.
    pub fn is_full(&self) -> bool {
        self.views.len() >= self.capacity
    }

    /// Fraction of the capacity in use.
    pub fn occupancy(&self) -> f64 {
        if self.capacity == 0 {
            1.0
        } else {
            self.views.len() as f64 / self.capacity as f64
        }
    }

    /// Whether a replica of `view` is stored here.
    pub fn contains(&self, view: UserId) -> bool {
        self.views.contains_key(&view)
    }

    /// Stores a new (empty-statistics) replica of `view`. Returns `false` if
    /// the view was already present.
    ///
    /// Capacity is *not* enforced here: the engine decides whether to evict
    /// first or to refuse the replica, because only it knows which views are
    /// safe to evict.
    pub fn insert(&mut self, view: UserId) -> bool {
        if self.views.contains_key(&view) {
            return false;
        }
        self.views
            .insert(view, ReplicaStats::new(self.window_slots));
        true
    }

    /// Removes the replica of `view`. Returns `false` if it was not stored.
    pub fn remove(&mut self, view: UserId) -> bool {
        self.views.remove(&view).is_some()
    }

    /// The statistics of the replica of `view`, if stored here.
    pub fn stats(&self, view: UserId) -> Option<&ReplicaStats> {
        self.views.get(&view)
    }

    /// Mutable statistics of the replica of `view`, if stored here.
    pub fn stats_mut(&mut self, view: UserId) -> Option<&mut ReplicaStats> {
        self.views.get_mut(&view)
    }

    /// Iterates over the stored views and their statistics.
    pub fn views(&self) -> impl Iterator<Item = (UserId, &ReplicaStats)> {
        self.views.iter().map(|(&u, s)| (u, s))
    }

    /// The ids of the stored views.
    pub fn view_ids(&self) -> Vec<UserId> {
        self.views.keys().copied().collect()
    }

    /// Rotates the access counters of every stored replica.
    pub fn rotate_counters(&mut self) {
        for stats in self.views.values_mut() {
            stats.rotate();
        }
    }

    /// The current admission threshold: the minimum utility a new replica
    /// must have to be admitted to this server (§3.2, *Replication of
    /// views*).
    pub fn admission_threshold(&self) -> f64 {
        self.admission_threshold
    }

    /// Updates the admission threshold from the sorted utilities of the
    /// views currently stored: the threshold is chosen so that
    /// `fill_target` of the memory is occupied by views whose utility is
    /// above it, and 0 if less memory than that is used.
    pub fn update_admission_threshold(&mut self, mut utilities: Vec<f64>, fill_target: f64) {
        let protected = ((self.capacity as f64) * fill_target).floor() as usize;
        if protected == 0 || utilities.len() < protected {
            self.admission_threshold = 0.0;
            return;
        }
        utilities.sort_by(|a, b| b.partial_cmp(a).unwrap_or(std::cmp::Ordering::Equal));
        let threshold = utilities[protected - 1];
        self.admission_threshold = if threshold.is_finite() {
            threshold.max(0.0)
        } else {
            0.0
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynasore_types::SubtreeId;

    fn server(cap: usize) -> ServerState {
        ServerState::new(MachineId::new(7), cap, 4)
    }

    #[test]
    fn insert_remove_contains() {
        let mut s = server(2);
        assert!(s.is_empty());
        assert!(s.insert(UserId::new(1)));
        assert!(!s.insert(UserId::new(1)));
        assert!(s.insert(UserId::new(2)));
        assert!(s.is_full());
        assert_eq!(s.len(), 2);
        assert!(s.contains(UserId::new(1)));
        assert!((s.occupancy() - 1.0).abs() < 1e-12);
        assert!(s.remove(UserId::new(1)));
        assert!(!s.remove(UserId::new(1)));
        assert_eq!(s.len(), 1);
        assert_eq!(s.machine(), MachineId::new(7));
        assert_eq!(s.capacity(), 2);
        assert_eq!(s.view_ids(), vec![UserId::new(2)]);
    }

    #[test]
    fn stats_are_per_view_and_rotate_together() {
        let mut s = server(4);
        s.insert(UserId::new(1));
        s.insert(UserId::new(2));
        s.stats_mut(UserId::new(1))
            .unwrap()
            .record_read(SubtreeId::Rack(0));
        s.stats_mut(UserId::new(2)).unwrap().record_write();
        assert_eq!(s.stats(UserId::new(1)).unwrap().total_reads(), 1);
        assert_eq!(s.stats(UserId::new(2)).unwrap().total_writes(), 1);
        assert!(s.stats(UserId::new(3)).is_none());
        for _ in 0..4 {
            s.rotate_counters();
        }
        assert!(s.stats(UserId::new(1)).unwrap().is_idle());
        assert!(s.stats(UserId::new(2)).unwrap().is_idle());
        assert_eq!(s.views().count(), 2);
    }

    #[test]
    fn zero_capacity_server_reports_full_occupancy() {
        let s = server(0);
        assert!((s.occupancy() - 1.0).abs() < 1e-12);
        assert!(s.is_full());
    }

    #[test]
    fn admission_threshold_protects_the_fill_target() {
        let mut s = server(10);
        // 9 views stored with utilities 1..=9; fill target 0.9 → protect 9
        // views → threshold = 9th highest utility = 1.
        let utilities: Vec<f64> = (1..=9).map(|v| v as f64).collect();
        for i in 0..9 {
            s.insert(UserId::new(i));
        }
        s.update_admission_threshold(utilities, 0.9);
        assert!((s.admission_threshold() - 1.0).abs() < 1e-12);

        // With fewer views than the protected amount the threshold is 0.
        s.update_admission_threshold(vec![5.0, 6.0], 0.9);
        assert_eq!(s.admission_threshold(), 0.0);

        // Infinite utilities (sole replicas) never become the threshold.
        s.update_admission_threshold(vec![f64::INFINITY; 9], 0.9);
        assert_eq!(s.admission_threshold(), 0.0);

        // Negative thresholds are clamped to zero.
        s.update_admission_threshold(vec![-5.0; 9], 0.9);
        assert_eq!(s.admission_threshold(), 0.0);
    }
}
