//! Per-server storage state.
//!
//! A DynaSoRe server is "an in-memory key-value store implementing a memory
//! management policy. A server has a fixed memory capacity, expressed as the
//! number of views it can store" (§3.2, *Storage management*). Alongside
//! each stored view the server keeps the replica's access statistics and an
//! admission threshold that gates the creation of new replicas on it.

use dynasore_types::{MachineId, UserId};

use crate::stats::ReplicaStats;

/// Sentinel for "user has no replica here" in the dense user → slot map.
const NO_SLOT: u32 = u32::MAX;

#[derive(Debug, Clone)]
struct SlotEntry {
    view: UserId,
    stats: ReplicaStats,
}

/// The storage state of one view server.
///
/// Views live in a dense slab: `slots` is indexed by a stable slot number,
/// freed slots are recycled through a free list, and a dense user → slot
/// map (`u32::MAX` = absent) makes `contains`/`stats` O(1) array lookups.
/// Iteration is by slot order, which is fully determined by the (seeded,
/// deterministic) sequence of inserts and removes — so every decision
/// derived from a scan of the stored views is reproducible across runs,
/// preserving the determinism guarantee the `BTreeMap` predecessor provided.
/// Scans that pick a victim additionally tie-break by [`UserId`] so the
/// chosen view is independent of slot layout.
///
/// Steady-state operations (`contains`, `stats`, `stats_mut`, `insert` into
/// a recycled slot, `remove`) perform no heap allocation.
#[derive(Debug, Clone)]
pub struct ServerState {
    machine: MachineId,
    capacity: usize,
    window_slots: usize,
    slots: Vec<Option<SlotEntry>>,
    free: Vec<u32>,
    user_slot: Vec<u32>,
    len: usize,
    admission_threshold: f64,
}

impl ServerState {
    /// Creates an empty server with room for `capacity` views, using
    /// rotating statistics windows of `window_slots` periods. `user_count`
    /// sizes the dense user → slot map (ids beyond it grow the map on
    /// demand).
    pub fn new(
        machine: MachineId,
        capacity: usize,
        window_slots: usize,
        user_count: usize,
    ) -> Self {
        ServerState {
            machine,
            capacity,
            window_slots,
            slots: (0..capacity).map(|_| None).collect(),
            free: (0..capacity as u32).rev().collect(),
            user_slot: vec![NO_SLOT; user_count],
            len: 0,
            admission_threshold: 0.0,
        }
    }

    /// The machine this server runs on.
    pub fn machine(&self) -> MachineId {
        self.machine
    }

    /// Maximum number of views this server can hold.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of views currently stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the server stores no views.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether the server has reached its capacity.
    pub fn is_full(&self) -> bool {
        self.len >= self.capacity
    }

    /// Fraction of the capacity in use.
    pub fn occupancy(&self) -> f64 {
        if self.capacity == 0 {
            1.0
        } else {
            self.len as f64 / self.capacity as f64
        }
    }

    fn slot_of(&self, view: UserId) -> Option<usize> {
        match self.user_slot.get(view.as_usize()) {
            Some(&slot) if slot != NO_SLOT => Some(slot as usize),
            _ => None,
        }
    }

    /// Whether a replica of `view` is stored here.
    pub fn contains(&self, view: UserId) -> bool {
        self.slot_of(view).is_some()
    }

    /// Stores a new (empty-statistics) replica of `view`. Returns `false` if
    /// the view was already present.
    ///
    /// Capacity is *not* enforced here: the engine decides whether to evict
    /// first or to refuse the replica, because only it knows which views are
    /// safe to evict. Inserts beyond capacity grow the slab.
    pub fn insert(&mut self, view: UserId) -> bool {
        if self.contains(view) {
            return false;
        }
        if view.as_usize() >= self.user_slot.len() {
            self.user_slot.resize(view.as_usize() + 1, NO_SLOT);
        }
        let slot = match self.free.pop() {
            Some(slot) => slot as usize,
            None => {
                self.slots.push(None);
                self.slots.len() - 1
            }
        };
        self.slots[slot] = Some(SlotEntry {
            view,
            stats: ReplicaStats::new(self.window_slots),
        });
        self.user_slot[view.as_usize()] = slot as u32;
        self.len += 1;
        true
    }

    /// Removes the replica of `view`. Returns `false` if it was not stored.
    pub fn remove(&mut self, view: UserId) -> bool {
        let Some(slot) = self.slot_of(view) else {
            return false;
        };
        self.slots[slot] = None;
        self.free.push(slot as u32);
        self.user_slot[view.as_usize()] = NO_SLOT;
        self.len -= 1;
        true
    }

    /// The statistics of the replica of `view`, if stored here.
    pub fn stats(&self, view: UserId) -> Option<&ReplicaStats> {
        self.slot_of(view)
            .and_then(|slot| self.slots[slot].as_ref())
            .map(|entry| &entry.stats)
    }

    /// Mutable statistics of the replica of `view`, if stored here.
    pub fn stats_mut(&mut self, view: UserId) -> Option<&mut ReplicaStats> {
        let slot = self.slot_of(view)?;
        self.slots[slot].as_mut().map(|entry| &mut entry.stats)
    }

    /// Iterates over the stored views and their statistics, in slot order.
    pub fn views(&self) -> impl Iterator<Item = (UserId, &ReplicaStats)> {
        self.slots
            .iter()
            .filter_map(|entry| entry.as_ref().map(|e| (e.view, &e.stats)))
    }

    /// Number of slab slots (occupied or free); the valid range for
    /// [`ServerState::view_at`].
    pub fn slot_count(&self) -> usize {
        self.slots.len()
    }

    /// The view stored in slab slot `slot`, if occupied.
    pub fn view_at(&self, slot: usize) -> Option<UserId> {
        self.slots.get(slot)?.as_ref().map(|e| e.view)
    }

    /// The ids of the stored views, in slot order.
    pub fn view_ids(&self) -> Vec<UserId> {
        self.views().map(|(view, _)| view).collect()
    }

    /// Rotates the access counters of every stored replica.
    pub fn rotate_counters(&mut self) {
        for entry in self.slots.iter_mut().flatten() {
            entry.stats.rotate();
        }
    }

    /// The current admission threshold: the minimum utility a new replica
    /// must have to be admitted to this server (§3.2, *Replication of
    /// views*).
    pub fn admission_threshold(&self) -> f64 {
        self.admission_threshold
    }

    /// Sets the admission threshold directly. The engine computes it with
    /// [`admission_threshold_from_utilities`] over a reused scratch buffer.
    pub fn set_admission_threshold(&mut self, threshold: f64) {
        self.admission_threshold = threshold;
    }

    /// Drops every stored view and resets the slab to its freshly-built
    /// state (all slots free, threshold zero). Models a machine crash: the
    /// in-memory cache content is lost wholesale, while the server object
    /// survives so it can rejoin empty later.
    pub fn clear(&mut self) {
        let capacity = self.capacity;
        self.slots = (0..capacity).map(|_| None).collect();
        self.free = (0..capacity as u32).rev().collect();
        self.user_slot.iter_mut().for_each(|s| *s = NO_SLOT);
        self.len = 0;
        self.admission_threshold = 0.0;
    }

    /// Updates the admission threshold from the utilities of the views
    /// currently stored: the threshold is chosen so that `fill_target` of
    /// the memory is occupied by views whose utility is above it, and 0 if
    /// less memory than that is used.
    pub fn update_admission_threshold(&mut self, mut utilities: Vec<f64>, fill_target: f64) {
        self.admission_threshold =
            admission_threshold_from_utilities(&mut utilities, self.capacity, fill_target);
    }
}

/// The admission threshold protecting `fill_target` of a `capacity`-slot
/// server, given the utilities of its stored views: the `protected`-th
/// highest finite utility, clamped to be non-negative, or 0 when fewer
/// views than that are stored. Sorts `utilities` in place (descending), so
/// callers can reuse one scratch buffer across servers.
pub fn admission_threshold_from_utilities(
    utilities: &mut [f64],
    capacity: usize,
    fill_target: f64,
) -> f64 {
    let protected = ((capacity as f64) * fill_target).floor() as usize;
    if protected == 0 || utilities.len() < protected {
        return 0.0;
    }
    utilities.sort_by(|a, b| b.partial_cmp(a).unwrap_or(std::cmp::Ordering::Equal));
    let threshold = utilities[protected - 1];
    if threshold.is_finite() {
        threshold.max(0.0)
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynasore_types::SubtreeId;

    fn server(cap: usize) -> ServerState {
        ServerState::new(MachineId::new(7), cap, 4, 16)
    }

    #[test]
    fn insert_remove_contains() {
        let mut s = server(2);
        assert!(s.is_empty());
        assert!(s.insert(UserId::new(1)));
        assert!(!s.insert(UserId::new(1)));
        assert!(s.insert(UserId::new(2)));
        assert!(s.is_full());
        assert_eq!(s.len(), 2);
        assert!(s.contains(UserId::new(1)));
        assert!((s.occupancy() - 1.0).abs() < 1e-12);
        assert!(s.remove(UserId::new(1)));
        assert!(!s.remove(UserId::new(1)));
        assert_eq!(s.len(), 1);
        assert_eq!(s.machine(), MachineId::new(7));
        assert_eq!(s.capacity(), 2);
        assert_eq!(s.view_ids(), vec![UserId::new(2)]);
    }

    #[test]
    fn slots_are_recycled_without_growing_the_slab() {
        let mut s = server(2);
        s.insert(UserId::new(1));
        s.insert(UserId::new(2));
        assert_eq!(s.slot_count(), 2);
        s.remove(UserId::new(1));
        // The freed slot is reused; the slab does not grow.
        assert!(s.insert(UserId::new(3)));
        assert_eq!(s.slot_count(), 2);
        assert_eq!(s.len(), 2);
        assert!(s.contains(UserId::new(3)));
        // Slot-order iteration: user 3 took user 1's old slot 0.
        assert_eq!(s.view_ids(), vec![UserId::new(3), UserId::new(2)]);
        assert_eq!(s.view_at(0), Some(UserId::new(3)));
        assert_eq!(s.view_at(1), Some(UserId::new(2)));
        assert_eq!(s.view_at(9), None);
    }

    #[test]
    fn inserts_beyond_capacity_and_user_map_grow_on_demand() {
        let mut s = server(1);
        assert!(s.insert(UserId::new(0)));
        assert!(s.is_full());
        // Over-capacity insert is allowed (the engine polices capacity).
        assert!(s.insert(UserId::new(99)));
        assert_eq!(s.len(), 2);
        assert!(s.contains(UserId::new(99)));
        assert!(s.remove(UserId::new(99)));
        assert!(!s.contains(UserId::new(99)));
    }

    #[test]
    fn stats_are_per_view_and_rotate_together() {
        let mut s = server(4);
        s.insert(UserId::new(1));
        s.insert(UserId::new(2));
        s.stats_mut(UserId::new(1))
            .unwrap()
            .record_read(SubtreeId::Rack(0));
        s.stats_mut(UserId::new(2)).unwrap().record_write();
        assert_eq!(s.stats(UserId::new(1)).unwrap().total_reads(), 1);
        assert_eq!(s.stats(UserId::new(2)).unwrap().total_writes(), 1);
        assert!(s.stats(UserId::new(3)).is_none());
        for _ in 0..4 {
            s.rotate_counters();
        }
        assert!(s.stats(UserId::new(1)).unwrap().is_idle());
        assert!(s.stats(UserId::new(2)).unwrap().is_idle());
        assert_eq!(s.views().count(), 2);
    }

    #[test]
    fn clear_resets_to_the_freshly_built_state() {
        let mut s = server(3);
        s.insert(UserId::new(1));
        s.insert(UserId::new(2));
        s.stats_mut(UserId::new(1))
            .unwrap()
            .record_read(SubtreeId::Rack(0));
        s.set_admission_threshold(4.0);
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
        assert!(!s.contains(UserId::new(1)));
        assert!(s.stats(UserId::new(1)).is_none());
        assert_eq!(s.admission_threshold(), 0.0);
        assert_eq!(s.slot_count(), 3);
        // The slab is fully reusable after the wipe.
        assert!(s.insert(UserId::new(5)));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn zero_capacity_server_reports_full_occupancy() {
        let s = server(0);
        assert!((s.occupancy() - 1.0).abs() < 1e-12);
        assert!(s.is_full());
    }

    #[test]
    fn admission_threshold_protects_the_fill_target() {
        let mut s = server(10);
        // 9 views stored with utilities 1..=9; fill target 0.9 → protect 9
        // views → threshold = 9th highest utility = 1.
        let utilities: Vec<f64> = (1..=9).map(|v| v as f64).collect();
        for i in 0..9 {
            s.insert(UserId::new(i));
        }
        s.update_admission_threshold(utilities, 0.9);
        assert!((s.admission_threshold() - 1.0).abs() < 1e-12);

        // With fewer views than the protected amount the threshold is 0.
        s.update_admission_threshold(vec![5.0, 6.0], 0.9);
        assert_eq!(s.admission_threshold(), 0.0);

        // Infinite utilities (sole replicas) never become the threshold.
        s.update_admission_threshold(vec![f64::INFINITY; 9], 0.9);
        assert_eq!(s.admission_threshold(), 0.0);

        // Negative thresholds are clamped to zero.
        s.update_admission_threshold(vec![-5.0; 9], 0.9);
        assert_eq!(s.admission_threshold(), 0.0);

        // The scratch-buffer form matches the owned form.
        let mut scratch = vec![3.0, 1.0, 2.0, 9.0, 4.0, 5.0, 6.0, 7.0, 8.0];
        assert_eq!(
            admission_threshold_from_utilities(&mut scratch, 10, 0.9),
            1.0
        );
        s.set_admission_threshold(2.5);
        assert_eq!(s.admission_threshold(), 2.5);
    }
}
