//! The DynaSoRe view-placement engine — the primary contribution of
//! *"DynaSoRe: Efficient In-Memory Store for Social Applications"*
//! (Middleware 2013).
//!
//! DynaSoRe is an in-memory store for social feeds that dynamically adapts
//! the placement of *views* (per-user event lists) to the observed request
//! traffic. Its goal is to minimise the traffic crossing the upper tiers of
//! the data-centre network tree while respecting a cluster-wide memory
//! budget. The mechanisms, following §3 of the paper, are:
//!
//! * **Access statistics** — every replica records how often it is read from
//!   each coarse origin (sibling racks and sibling intermediate switches)
//!   and how often it is written, in a rotating window
//!   ([`RotatingCounter`], [`ReplicaStats`]).
//! * **Utility estimation** (Algorithm 1) — the benefit of a replica is the
//!   read traffic it saves compared to the next closest replica, minus the
//!   write traffic needed to keep it fresh ([`estimate_profit`]).
//! * **Replication and migration** (Algorithms 2 and 3) — when a replica is
//!   read from a distant part of the cluster, a new replica is proposed near
//!   those readers, subject to the target servers' admission thresholds;
//!   when no replica can be created the view may migrate instead.
//! * **Eviction** — servers keep ~5% of their memory free by evicting the
//!   least useful replicas; views with a single replica are never evicted.
//! * **Proxies and routing** — each user has a read proxy and a write proxy
//!   hosted on brokers; proxies migrate towards the data they access, and
//!   reads are routed to the closest replica
//!   ([`routing`](crate::routing)).
//!
//! The engine implements
//! [`PlacementEngine`](dynasore_types::PlacementEngine), so it can be driven
//! by the simulator in `dynasore-sim` and compared against the baselines in
//! `dynasore-baselines`.
//!
//! # Example
//!
//! ```
//! use dynasore_core::{DynaSoReEngine, InitialPlacement};
//! use dynasore_graph::{GraphPreset, SocialGraph};
//! use dynasore_topology::Topology;
//! use dynasore_types::{MemoryBudget, PlacementEngine, SimTime, UserId};
//!
//! # fn main() -> Result<(), dynasore_types::Error> {
//! let graph = SocialGraph::generate(GraphPreset::TwitterLike, 400, 42)?;
//! let topology = Topology::tree(2, 2, 5, 1)?;
//! let mut engine = DynaSoReEngine::builder()
//!     .topology(topology.clone())
//!     .budget(MemoryBudget::with_extra_percent(graph.user_count(), 30))
//!     .initial_placement(InitialPlacement::HierarchicalMetis { seed: 1 })
//!     .build(&graph)?;
//!
//! // Drive one read through the engine directly (the `dynasore-sim` crate
//! // automates this over a whole trace).
//! let reader = UserId::new(0);
//! let targets = graph.followees(reader).to_vec();
//! let mut messages = Vec::new();
//! engine.handle_read(reader, &targets, SimTime::from_secs(1), &mut messages);
//! assert!(engine.replica_count(reader) >= 1);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod counters;
mod engine;
pub mod placement;
pub mod routing;
mod server;
mod stats;
mod utility;

pub use config::{DynaSoReConfig, InitialPlacement};
pub use counters::RotatingCounter;
pub use engine::{DynaSoReEngine, DynaSoReEngineBuilder};
pub use server::{admission_threshold_from_utilities, ServerState};
pub use stats::ReplicaStats;
pub use utility::{estimate_creation_profit, estimate_profit, replica_utility};
