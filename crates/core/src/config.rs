//! Configuration of the DynaSoRe engine.

use dynasore_types::{Error, MemoryBudget, Result};

/// How the views are laid out before DynaSoRe starts reacting to traffic
/// (§4.4, *Initial data placement*).
///
/// "For DynaSoRe, the system is deployed on an existing social platform and
/// uses this configuration as an initial setup. It then modifies this
/// initial view placement by reacting to the request traffic."
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InitialPlacement {
    /// Views are assigned to servers uniformly at random (hash placement,
    /// like Memcached/Redis).
    Random {
        /// Seed of the random assignment.
        seed: u64,
    },
    /// Views are assigned according to a flat METIS-style partition of the
    /// social graph into one part per server.
    Metis {
        /// Seed of the partitioner.
        seed: u64,
    },
    /// Views are assigned according to a hierarchical partition following
    /// the cluster tree (intermediate switches → racks → servers).
    HierarchicalMetis {
        /// Seed of the partitioner.
        seed: u64,
    },
    /// An explicit assignment: `placement[user_index]` is the index of the
    /// server (position in `Topology::servers()`) holding the user's view.
    Explicit(Vec<u32>),
}

impl InitialPlacement {
    /// A short label used in engine names and reports.
    pub fn label(&self) -> &'static str {
        match self {
            InitialPlacement::Random { .. } => "random",
            InitialPlacement::Metis { .. } => "metis",
            InitialPlacement::HierarchicalMetis { .. } => "hmetis",
            InitialPlacement::Explicit(_) => "explicit",
        }
    }
}

/// Tuning parameters of the DynaSoRe engine. The defaults follow the values
/// given in the paper.
#[derive(Debug, Clone, PartialEq)]
pub struct DynaSoReConfig {
    /// Cluster-wide memory budget (number of views plus *x%* extra memory).
    pub budget: MemoryBudget,
    /// Number of periods in the rotating access-statistics window
    /// (24 one-hour slots in §4.3).
    pub counter_slots: usize,
    /// Fraction of a server's memory that should be occupied by views whose
    /// utility exceeds the admission threshold (0.9 in §3.2, *Replication of
    /// views*).
    pub admission_fill_target: f64,
    /// Occupancy above which the background eviction process starts
    /// removing the least useful replicas (0.95 in §3.2, *Eviction of
    /// views*).
    pub eviction_threshold: f64,
    /// Occupancy the eviction sweep tries to bring a server back to.
    pub eviction_target: f64,
    /// Congestion-aware placement: how many profit units (switch crossings
    /// saved per statistics window) one full second of queueing delay at a
    /// candidate rack's switch costs. Replica creation and migration
    /// subtract `delay_secs × this` from a candidate's estimated profit, so
    /// replicas steer away from congested racks. The congestion signal comes
    /// from the driver's [`dynasore_types::TrafficSink::congestion`]; unit
    /// count sinks report zero delay, leaving decisions untouched. Set to 0
    /// to disable entirely.
    pub congestion_penalty_per_sec: f64,
}

impl DynaSoReConfig {
    /// Creates a configuration with the paper's defaults for the given
    /// memory budget.
    pub fn new(budget: MemoryBudget) -> Self {
        DynaSoReConfig {
            budget,
            counter_slots: 24,
            admission_fill_target: 0.90,
            eviction_threshold: 0.95,
            eviction_target: 0.90,
            congestion_penalty_per_sec: 500.0,
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] if any fraction is outside `(0, 1]`,
    /// the eviction target is not below the eviction threshold, or the
    /// counter window is empty.
    pub fn validate(&self) -> Result<()> {
        if self.counter_slots == 0 {
            return Err(Error::invalid_config("counter_slots must be positive"));
        }
        for (name, value) in [
            ("admission_fill_target", self.admission_fill_target),
            ("eviction_threshold", self.eviction_threshold),
            ("eviction_target", self.eviction_target),
        ] {
            if !(0.0..=1.0).contains(&value) || value == 0.0 {
                return Err(Error::invalid_config(format!("{name} must be in (0, 1]")));
            }
        }
        if self.eviction_target > self.eviction_threshold {
            return Err(Error::invalid_config(
                "eviction_target must not exceed eviction_threshold",
            ));
        }
        if !self.congestion_penalty_per_sec.is_finite() || self.congestion_penalty_per_sec < 0.0 {
            return Err(Error::invalid_config(
                "congestion_penalty_per_sec must be finite and non-negative",
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_follow_the_paper() {
        let c = DynaSoReConfig::new(MemoryBudget::with_extra_percent(100, 30));
        assert_eq!(c.counter_slots, 24);
        assert!((c.admission_fill_target - 0.90).abs() < 1e-12);
        assert!((c.eviction_threshold - 0.95).abs() < 1e-12);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn validation_rejects_bad_fractions() {
        let budget = MemoryBudget::exact(10);
        let mut c = DynaSoReConfig::new(budget);
        c.counter_slots = 0;
        assert!(c.validate().is_err());

        let mut c = DynaSoReConfig::new(budget);
        c.admission_fill_target = 0.0;
        assert!(c.validate().is_err());

        let mut c = DynaSoReConfig::new(budget);
        c.eviction_threshold = 1.2;
        assert!(c.validate().is_err());

        let mut c = DynaSoReConfig::new(budget);
        c.eviction_target = 0.99;
        c.eviction_threshold = 0.95;
        assert!(c.validate().is_err());
    }

    #[test]
    fn congestion_penalty_is_validated() {
        let budget = MemoryBudget::exact(10);
        let mut c = DynaSoReConfig::new(budget);
        assert!((c.congestion_penalty_per_sec - 500.0).abs() < 1e-12);
        c.congestion_penalty_per_sec = -1.0;
        assert!(c.validate().is_err());
        c.congestion_penalty_per_sec = f64::NAN;
        assert!(c.validate().is_err());
        c.congestion_penalty_per_sec = 0.0;
        assert!(c.validate().is_ok());
    }

    #[test]
    fn placement_labels() {
        assert_eq!(InitialPlacement::Random { seed: 1 }.label(), "random");
        assert_eq!(InitialPlacement::Metis { seed: 1 }.label(), "metis");
        assert_eq!(
            InitialPlacement::HierarchicalMetis { seed: 1 }.label(),
            "hmetis"
        );
        assert_eq!(InitialPlacement::Explicit(vec![0, 1]).label(), "explicit");
    }
}
