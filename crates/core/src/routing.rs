//! Routing policy and proxy placement.
//!
//! * **Routing policy** (§3.2, *Routing policy*): when several servers store
//!   a view, a broker reads the one with which it shares the lowest common
//!   ancestor, i.e. the replica reached through the fewest switches; ties
//!   are broken by server identifier.
//! * **Proxy placement** (§3.2, *Proxy placement*): after executing a
//!   request, the proxy walks down from the root of the tree, at every step
//!   following the branch from which most view data was transferred, until
//!   it reaches a broker. If that broker differs from the current one, the
//!   proxy migrates.
//!
//! The per-request transfer bookkeeping uses [`TransferTally`], a dense
//! counter array with a touched-list that the engine reuses across requests,
//! so the steady-state read/write path neither hashes nor allocates.

use dynasore_topology::{Topology, TopologyKind};
use dynasore_types::{BrokerId, MachineId, RackId};

/// Selects the replica a broker should read, following the lowest-common-
/// ancestor policy with server-id tie-breaking. Returns `None` when
/// `replicas` is empty.
pub fn closest_replica(
    topology: &Topology,
    broker: MachineId,
    replicas: &[MachineId],
) -> Option<MachineId> {
    replicas
        .iter()
        .copied()
        .min_by_key(|&server| (topology.distance(broker, server), server.index()))
}

/// Reusable per-request tally of how many views were transferred from each
/// machine: a dense `units` array indexed by machine plus the list of
/// touched machines, so clearing costs O(touched) and recording costs O(1)
/// with no hashing or allocation. Two scratch arrays (per rack and per
/// intermediate switch) support the proxy-placement tree walk.
#[derive(Debug, Clone)]
pub struct TransferTally {
    units: Vec<u64>,
    touched: Vec<u32>,
    rack_units: Vec<u64>,
    inter_units: Vec<u64>,
}

impl TransferTally {
    /// Creates a tally sized for `topology`.
    pub fn new(topology: &Topology) -> Self {
        TransferTally {
            units: vec![0; topology.machine_count()],
            touched: Vec::with_capacity(32),
            rack_units: vec![0; topology.rack_count()],
            inter_units: vec![0; topology.intermediate_count()],
        }
    }

    /// Forgets every recorded transfer (O(touched), keeps capacity).
    pub fn clear(&mut self) {
        for &m in &self.touched {
            self.units[m as usize] = 0;
        }
        self.touched.clear();
    }

    /// Records `units` views transferred from `machine`. Zero-unit records
    /// are ignored.
    pub fn add(&mut self, machine: MachineId, units: u64) {
        if units == 0 {
            return;
        }
        let m = machine.as_usize();
        if self.units[m] == 0 {
            self.touched.push(m as u32);
        }
        self.units[m] += units;
    }

    /// Whether nothing was transferred.
    pub fn is_empty(&self) -> bool {
        self.touched.is_empty()
    }

    /// Units transferred from `machine`.
    pub fn units_from(&self, machine: MachineId) -> u64 {
        self.units.get(machine.as_usize()).copied().unwrap_or(0)
    }
}

/// Computes the broker that minimises network transfers for a proxy whose
/// requests fetched `tally.units_from(server)` views from each server, by
/// walking down the tree from the root along the heaviest branch (§3.2,
/// *Proxy placement*). Returns `None` if nothing was transferred. Ties are
/// broken towards the lowest-indexed branch, and in a flat cluster the
/// proxy co-locates with the heaviest server (ties by machine id).
///
/// Takes the tally mutably only to use its internal per-rack/per-
/// intermediate scratch arrays; the recorded transfers are unchanged.
pub fn optimal_proxy_broker(topology: &Topology, tally: &mut TransferTally) -> Option<BrokerId> {
    if tally.is_empty() {
        return None;
    }
    match topology.kind() {
        TopologyKind::Flat => {
            // In a flat cluster every machine is a broker: co-locate the
            // proxy with the heaviest server (ties by machine id).
            let mut best_machine = u32::MAX;
            let mut best_units = 0u64;
            for &m in &tally.touched {
                let units = tally.units[m as usize];
                if units > best_units || (units == best_units && m < best_machine) {
                    best_units = units;
                    best_machine = m;
                }
            }
            Some(BrokerId::new(MachineId::new(best_machine)))
        }
        TopologyKind::Tree => {
            // Weight each rack and intermediate switch by the views
            // transferred from the servers under it.
            for &m in &tally.touched {
                let machine = MachineId::new(m);
                let units = tally.units[m as usize];
                let rack = topology
                    .rack_of(machine)
                    .expect("tally only holds topology machines");
                let inter = topology.intermediate_of_rack(rack);
                tally.rack_units[rack.as_usize()] += units;
                tally.inter_units[inter as usize] += units;
            }
            // Walk root → heaviest intermediate → heaviest rack; a strict
            // `>` scan in index order matches the old walk's tie-breaking
            // (lowest-indexed branch wins).
            let mut best_inter = 0usize;
            let mut best_units = 0u64;
            for (i, &units) in tally.inter_units.iter().enumerate() {
                if units > best_units {
                    best_units = units;
                    best_inter = i;
                }
            }
            let first_rack = best_inter * topology.racks_per_intermediate();
            let mut best_rack = first_rack;
            let mut best_rack_units = 0u64;
            for r in first_rack
                ..(first_rack + topology.racks_per_intermediate()).min(tally.rack_units.len())
            {
                if tally.rack_units[r] > best_rack_units {
                    best_rack_units = tally.rack_units[r];
                    best_rack = r;
                }
            }
            // Reset the scratch accumulators for the next request.
            for &m in &tally.touched {
                let machine = MachineId::new(m);
                let rack = topology.rack_of(machine).expect("checked above");
                let inter = topology.intermediate_of_rack(rack);
                tally.rack_units[rack.as_usize()] = 0;
                tally.inter_units[inter as usize] = 0;
            }
            // O(1) liveness-table lookup: never migrate a proxy onto a dead
            // broker (the heaviest rack's servers can outlive its brokers).
            topology.first_live_broker_in_rack(RackId::new(best_rack as u32))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(i: u32) -> MachineId {
        MachineId::new(i)
    }

    fn tally_of(topology: &Topology, entries: &[(u32, u64)]) -> TransferTally {
        let mut tally = TransferTally::new(topology);
        for &(machine, units) in entries {
            tally.add(m(machine), units);
        }
        tally
    }

    #[test]
    fn closest_replica_prefers_lower_common_ancestor() {
        let topo = Topology::paper_tree().unwrap();
        let broker = m(0); // rack 0
                           // Candidate replicas: same rack (1), same intermediate (11), remote (51).
        let replicas = vec![m(51), m(11), m(1)];
        assert_eq!(closest_replica(&topo, broker, &replicas), Some(m(1)));
        let replicas = vec![m(51), m(11)];
        assert_eq!(closest_replica(&topo, broker, &replicas), Some(m(11)));
        assert_eq!(closest_replica(&topo, broker, &[]), None);
    }

    #[test]
    fn closest_replica_breaks_ties_by_server_id() {
        let topo = Topology::paper_tree().unwrap();
        let broker = m(0);
        // Machines 1 and 2 are both in rack 0 at distance 1.
        assert_eq!(closest_replica(&topo, broker, &[m(2), m(1)]), Some(m(1)));
    }

    #[test]
    fn proxy_walks_to_the_heaviest_rack() {
        let topo = Topology::paper_tree().unwrap();
        // 3 views transferred from rack 6 (machines 60..), 1 from rack 0.
        let mut tally = tally_of(&topo, &[(61, 2), (62, 1), (1, 1)]);
        let broker = optimal_proxy_broker(&topo, &mut tally).unwrap();
        assert_eq!(topo.rack_of(broker.machine()).unwrap().index(), 6);
        assert!(topo.is_broker(broker.machine()));
        // The walk's scratch is reset: the same tally yields the same
        // answer again.
        let again = optimal_proxy_broker(&topo, &mut tally).unwrap();
        assert_eq!(again, broker);
    }

    #[test]
    fn proxy_stays_put_when_nothing_was_transferred() {
        let topo = Topology::paper_tree().unwrap();
        let mut empty = TransferTally::new(&topo);
        assert!(optimal_proxy_broker(&topo, &mut empty).is_none());
        // Zero-unit records are ignored entirely.
        let mut zeros = TransferTally::new(&topo);
        zeros.add(m(1), 0);
        assert!(zeros.is_empty());
        assert!(optimal_proxy_broker(&topo, &mut zeros).is_none());
    }

    #[test]
    fn tally_clear_resets_counts() {
        let topo = Topology::paper_tree().unwrap();
        let mut tally = tally_of(&topo, &[(3, 5), (7, 2)]);
        assert_eq!(tally.units_from(m(3)), 5);
        assert_eq!(tally.units_from(m(7)), 2);
        tally.clear();
        assert!(tally.is_empty());
        assert_eq!(tally.units_from(m(3)), 0);
        tally.add(m(3), 1);
        assert_eq!(tally.units_from(m(3)), 1);
    }

    #[test]
    fn flat_topology_colocates_proxy_with_heaviest_server() {
        let topo = Topology::flat(10).unwrap();
        let mut tally = tally_of(&topo, &[(3, 5), (7, 2)]);
        let broker = optimal_proxy_broker(&topo, &mut tally).unwrap();
        assert_eq!(broker.machine(), m(3));
        // Ties go to the lowest machine id.
        let mut tied = tally_of(&topo, &[(8, 4), (2, 4)]);
        let broker = optimal_proxy_broker(&topo, &mut tied).unwrap();
        assert_eq!(broker.machine(), m(2));
    }
}
