//! Routing policy and proxy placement.
//!
//! * **Routing policy** (§3.2, *Routing policy*): when several servers store
//!   a view, a broker reads the one with which it shares the lowest common
//!   ancestor, i.e. the replica reached through the fewest switches; ties
//!   are broken by server identifier.
//! * **Proxy placement** (§3.2, *Proxy placement*): after executing a
//!   request, the proxy walks down from the root of the tree, at every step
//!   following the branch from which most view data was transferred, until
//!   it reaches a broker. If that broker differs from the current one, the
//!   proxy migrates.

use std::collections::HashMap;

use dynasore_topology::{Topology, TopologyKind};
use dynasore_types::{BrokerId, MachineId, SubtreeId};

/// Selects the replica a broker should read, following the lowest-common-
/// ancestor policy with server-id tie-breaking. Returns `None` when
/// `replicas` is empty.
pub fn closest_replica(
    topology: &Topology,
    broker: MachineId,
    replicas: &[MachineId],
) -> Option<MachineId> {
    replicas
        .iter()
        .copied()
        .min_by_key(|&server| (topology.distance(broker, server), server.index()))
}

/// Computes the broker that minimises network transfers for a proxy whose
/// requests fetched `transferred[server]` views from each server, by walking
/// down the tree from the root along the heaviest branch (§3.2, *Proxy
/// placement*). Returns `None` if nothing was transferred.
pub fn optimal_proxy_broker(
    topology: &Topology,
    transferred: &HashMap<MachineId, u64>,
) -> Option<BrokerId> {
    if transferred.is_empty() || transferred.values().all(|&w| w == 0) {
        return None;
    }
    match topology.kind() {
        TopologyKind::Flat => {
            // In a flat cluster every machine is a broker: co-locate the
            // proxy with the heaviest server (ties by machine id).
            let (&machine, _) = transferred
                .iter()
                .filter(|&(_, &w)| w > 0)
                .min_by_key(|&(m, &w)| (std::cmp::Reverse(w), m.index()))?;
            Some(BrokerId::new(machine))
        }
        TopologyKind::Tree => {
            let mut subtree = SubtreeId::Root;
            loop {
                let children = topology.children(subtree);
                if children.is_empty() {
                    break;
                }
                // Weight of each child = views transferred from servers
                // under it.
                let best = children
                    .into_iter()
                    .map(|child| {
                        let weight: u64 = transferred
                            .iter()
                            .filter(|&(&m, _)| topology.subtree_contains(child, m))
                            .map(|(_, &w)| w)
                            .sum();
                        (child, weight)
                    })
                    .max_by_key(|&(child, weight)| {
                        (weight, std::cmp::Reverse(subtree_order(child)))
                    })?;
                if best.1 == 0 {
                    break;
                }
                subtree = best.0;
                // Stop once we reach a rack: the proxy runs on that rack's
                // broker.
                if matches!(subtree, SubtreeId::Rack(_)) {
                    break;
                }
            }
            match subtree {
                SubtreeId::Rack(_) | SubtreeId::Intermediate(_) | SubtreeId::Root => {
                    topology.brokers_in_subtree(subtree).first().copied()
                }
                SubtreeId::Machine(m) => topology.local_broker(MachineId::new(m)).ok(),
            }
        }
    }
}

/// Stable ordering key for tie-breaking between sibling sub-trees.
fn subtree_order(subtree: SubtreeId) -> u32 {
    match subtree {
        SubtreeId::Root => 0,
        SubtreeId::Intermediate(i) => i,
        SubtreeId::Rack(r) => r,
        SubtreeId::Machine(m) => m,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(i: u32) -> MachineId {
        MachineId::new(i)
    }

    #[test]
    fn closest_replica_prefers_lower_common_ancestor() {
        let topo = Topology::paper_tree().unwrap();
        let broker = m(0); // rack 0
                           // Candidate replicas: same rack (1), same intermediate (11), remote (51).
        let replicas = vec![m(51), m(11), m(1)];
        assert_eq!(closest_replica(&topo, broker, &replicas), Some(m(1)));
        let replicas = vec![m(51), m(11)];
        assert_eq!(closest_replica(&topo, broker, &replicas), Some(m(11)));
        assert_eq!(closest_replica(&topo, broker, &[]), None);
    }

    #[test]
    fn closest_replica_breaks_ties_by_server_id() {
        let topo = Topology::paper_tree().unwrap();
        let broker = m(0);
        // Machines 1 and 2 are both in rack 0 at distance 1.
        assert_eq!(closest_replica(&topo, broker, &[m(2), m(1)]), Some(m(1)));
    }

    #[test]
    fn proxy_walks_to_the_heaviest_rack() {
        let topo = Topology::paper_tree().unwrap();
        // 3 views transferred from rack 6 (machines 60..), 1 from rack 0.
        let mut transferred = HashMap::new();
        transferred.insert(m(61), 2u64);
        transferred.insert(m(62), 1u64);
        transferred.insert(m(1), 1u64);
        let broker = optimal_proxy_broker(&topo, &transferred).unwrap();
        assert_eq!(topo.rack_of(broker.machine()).unwrap().index(), 6);
        assert!(topo.is_broker(broker.machine()));
    }

    #[test]
    fn proxy_stays_put_when_nothing_was_transferred() {
        let topo = Topology::paper_tree().unwrap();
        assert!(optimal_proxy_broker(&topo, &HashMap::new()).is_none());
        let mut zeros = HashMap::new();
        zeros.insert(m(1), 0u64);
        assert!(optimal_proxy_broker(&topo, &zeros).is_none());
    }

    #[test]
    fn flat_topology_colocates_proxy_with_heaviest_server() {
        let topo = Topology::flat(10).unwrap();
        let mut transferred = HashMap::new();
        transferred.insert(m(3), 5u64);
        transferred.insert(m(7), 2u64);
        let broker = optimal_proxy_broker(&topo, &transferred).unwrap();
        assert_eq!(broker.machine(), m(3));
    }
}
