//! View utility estimation — Algorithm 1 of the paper (*Estimate Profit*).
//!
//! The utility of storing a replica of a view on a given server is the
//! network cost saved on reads (compared to serving its readers from the
//! next closest replica) minus the network cost of keeping the replica
//! up to date on writes:
//!
//! ```text
//! serverReadCost   = Σ_origins reads(origin) · cost(origin, server)
//! nearestReadCost  = Σ_origins reads(origin) · cost(origin, nearest)
//! serverWriteCost  = writes · cost(writeProxy, server)
//! profit           = nearestReadCost − serverReadCost − serverWriteCost
//! ```
//!
//! where `cost(a, b)` is the number of switches between the two locations.

use dynasore_topology::Topology;
use dynasore_types::MachineId;

use crate::stats::ReplicaStats;

/// Estimates the profit (in switch-crossings saved per statistics window) of
/// serving the readers recorded in `stats` from `candidate` rather than from
/// `nearest`, given that writes originate at `write_proxy`.
///
/// A positive profit means the candidate location saves more read traffic
/// than the writes it would additionally cost.
pub fn estimate_profit(
    topology: &Topology,
    stats: &ReplicaStats,
    candidate: MachineId,
    nearest: MachineId,
    write_proxy: MachineId,
) -> i64 {
    let mut candidate_read_cost = 0i64;
    let mut nearest_read_cost = 0i64;
    for (origin, reads) in stats.reads() {
        candidate_read_cost += reads as i64 * topology.origin_distance(candidate, origin) as i64;
        nearest_read_cost += reads as i64 * topology.origin_distance(nearest, origin) as i64;
    }
    let write_cost = stats.total_writes() as i64 * topology.distance(write_proxy, candidate) as i64;
    nearest_read_cost - candidate_read_cost - write_cost
}

/// Estimates the profit of *adding* a new replica of the view on
/// `candidate`, while the current replica on `current` stays in place.
///
/// This "simulat[es] its addition on one of the servers" (§3.2): only the
/// origins that the routing policy would redirect to the new replica — those
/// strictly closer to `candidate` than to `current` — contribute read gains;
/// all other readers keep using the existing replica. The cost of keeping
/// the new replica up to date on writes is charged in full.
pub fn estimate_creation_profit(
    topology: &Topology,
    stats: &ReplicaStats,
    candidate: MachineId,
    current: MachineId,
    write_proxy: MachineId,
) -> i64 {
    let mut gain = 0i64;
    for (origin, reads) in stats.reads() {
        let current_cost = topology.origin_distance(current, origin) as i64;
        let candidate_cost = topology.origin_distance(candidate, origin) as i64;
        if candidate_cost < current_cost {
            gain += reads as i64 * (current_cost - candidate_cost);
        }
    }
    let write_cost = stats.total_writes() as i64 * topology.distance(write_proxy, candidate) as i64;
    gain - write_cost
}

/// The utility of keeping an existing replica on `server`: the profit of
/// serving its current readers locally instead of from `nearest_other`
/// (the closest other replica). Sole replicas have infinite utility and can
/// never be evicted (§3.2, *Eviction of views*).
pub fn replica_utility(
    topology: &Topology,
    stats: &ReplicaStats,
    server: MachineId,
    nearest_other: Option<MachineId>,
    write_proxy: MachineId,
) -> f64 {
    match nearest_other {
        None => f64::INFINITY,
        Some(nearest) => estimate_profit(topology, stats, server, nearest, write_proxy) as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynasore_types::SubtreeId;

    fn topo() -> Topology {
        Topology::paper_tree().unwrap()
    }

    fn m(i: u32) -> MachineId {
        MachineId::new(i)
    }

    #[test]
    fn profit_rewards_moving_close_to_readers() {
        let topo = topo();
        let mut stats = ReplicaStats::new(4);
        // 10 reads from intermediate 1 (racks 5..10), currently served from
        // rack 0 (intermediate 0) at distance 5 per read.
        stats.record_reads(SubtreeId::Intermediate(1), 10);
        let current = m(1); // rack 0
        let candidate = m(51); // rack 5, intermediate 1
        let write_proxy = m(0); // broker of rack 0
                                // No writes: pure read gain (5 - 3) * 10 = 20.
        let profit = estimate_profit(&topo, &stats, candidate, current, write_proxy);
        assert_eq!(profit, 20);
        // Moving "to where it already is" gains nothing.
        assert_eq!(
            estimate_profit(&topo, &stats, current, current, write_proxy),
            0
        );
    }

    #[test]
    fn profit_charges_write_traffic() {
        let topo = topo();
        let mut stats = ReplicaStats::new(4);
        stats.record_reads(SubtreeId::Intermediate(1), 4);
        for _ in 0..10 {
            stats.record_write();
        }
        let current = m(1);
        let candidate = m(51);
        let write_proxy = m(0); // rack 0: writes to the candidate cross 5 switches
                                // Read gain (5-3)*4 = 8; write cost 10*5 = 50 → clearly negative.
        let profit = estimate_profit(&topo, &stats, candidate, current, write_proxy);
        assert_eq!(profit, 8 - 50);
    }

    #[test]
    fn creation_profit_only_counts_redirected_origins() {
        let topo = topo();
        let mut stats = ReplicaStats::new(4);
        // Readers spread over the local rack (well served already) and a
        // remote intermediate (badly served).
        stats.record_reads(SubtreeId::Rack(0), 50);
        stats.record_reads(SubtreeId::Intermediate(1), 10);
        let current = m(1); // rack 0
        let candidate = m(51); // intermediate 1
        let write_proxy = m(0);
        // Full-sum profit is dominated by the 50 local reads getting worse
        // (they would not actually move), so it is negative…
        assert!(estimate_profit(&topo, &stats, candidate, current, write_proxy) < 0);
        // …but the creation profit only counts the 10 redirected reads:
        // 10 × (5 − 3) = 20, minus no writes.
        assert_eq!(
            estimate_creation_profit(&topo, &stats, candidate, current, write_proxy),
            20
        );
        // Creating a replica right next to the current one gains nothing.
        assert_eq!(
            estimate_creation_profit(&topo, &stats, m(2), current, write_proxy),
            0
        );
    }

    #[test]
    fn creation_profit_still_charges_writes() {
        let topo = topo();
        let mut stats = ReplicaStats::new(4);
        stats.record_reads(SubtreeId::Intermediate(1), 4);
        for _ in 0..10 {
            stats.record_write();
        }
        let profit = estimate_creation_profit(&topo, &stats, m(51), m(1), m(0));
        // Read gain (5−3)×4 = 8, write cost 10×5 = 50.
        assert_eq!(profit, 8 - 50);
    }

    #[test]
    fn sole_replicas_have_infinite_utility() {
        let topo = topo();
        let stats = ReplicaStats::new(4);
        let u = replica_utility(&topo, &stats, m(1), None, m(0));
        assert!(u.is_infinite() && u > 0.0);
    }

    #[test]
    fn utility_is_profit_against_the_nearest_other_replica() {
        let topo = topo();
        let mut stats = ReplicaStats::new(4);
        // 6 reads from the local rack: served here at cost 1 each, or from a
        // replica in another intermediate at cost 5 each.
        stats.record_reads(SubtreeId::Rack(0), 6);
        stats.record_write();
        let here = m(1); // rack 0
        let other = m(51); // intermediate 1
        let write_proxy = m(0); // rack 0 broker, distance 1 to here
        let u = replica_utility(&topo, &stats, here, Some(other), write_proxy);
        // Read gain (5-1)*6 = 24, write cost 1*1 = 1.
        assert!((u - 23.0).abs() < 1e-9);
    }

    #[test]
    fn idle_replicas_have_non_positive_utility_against_alternatives() {
        let topo = topo();
        let mut stats = ReplicaStats::new(4);
        for _ in 0..3 {
            stats.record_write();
        }
        // No reads at all: utility is minus the write cost.
        let u = replica_utility(&topo, &stats, m(51), Some(m(1)), m(0));
        assert!(u < 0.0);
    }
}
