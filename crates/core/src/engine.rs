//! The DynaSoRe placement engine (§3 of the paper).
//!
//! The engine tracks, for every view replica, how often it is read from each
//! part of the cluster and how often it is written, and uses those rates to
//! replicate views close to their readers (Algorithm 2), migrate them to
//! better locations (Algorithm 3), and evict replicas that stopped paying
//! for themselves, all within a fixed cluster-wide memory budget.

use std::collections::HashMap;

use dynasore_graph::SocialGraph;
use dynasore_topology::Topology;
use dynasore_types::{
    BrokerId, Error, MachineId, MemoryBudget, Result, SimTime, SubtreeId, UserId,
};
use dynasore_types::{MemoryUsage, Message, PlacementEngine};
use dynasore_workload::GraphMutation;

use crate::config::{DynaSoReConfig, InitialPlacement};
use crate::placement::initial_assignment;
use crate::routing::{closest_replica, optimal_proxy_broker};
use crate::server::ServerState;
use crate::utility::{estimate_creation_profit, estimate_profit, replica_utility};

/// Number of protocol messages used to model the transfer of one view's data
/// when a replica is created or migrated. A view transfer carries as much
/// data as an application message (10 protocol units), but it is *system*
/// traffic, so it is accounted as protocol messages (cf. Figure 6, which
/// separates application from system traffic).
const VIEW_TRANSFER_PROTOCOL_MESSAGES: usize = 10;

/// Per-user routing state: the brokers hosting the user's proxies and the
/// servers holding replicas of her view.
#[derive(Debug, Clone)]
struct UserState {
    read_proxy: BrokerId,
    write_proxy: BrokerId,
    /// Dense server indices (positions in `DynaSoReEngine::servers`) holding
    /// a replica of this user's view. Always non-empty.
    replicas: Vec<usize>,
}

/// The DynaSoRe engine. Create one with [`DynaSoReEngine::builder`].
///
/// # Example
///
/// ```
/// use dynasore_core::{DynaSoReEngine, InitialPlacement};
/// use dynasore_graph::{GraphPreset, SocialGraph};
/// use dynasore_types::PlacementEngine;
/// use dynasore_topology::Topology;
/// use dynasore_types::MemoryBudget;
///
/// let graph = SocialGraph::generate(GraphPreset::TwitterLike, 500, 1).unwrap();
/// let topology = Topology::tree(2, 2, 5, 1).unwrap();
/// let engine = DynaSoReEngine::builder()
///     .topology(topology)
///     .budget(MemoryBudget::with_extra_percent(500, 30))
///     .initial_placement(InitialPlacement::Random { seed: 7 })
///     .build(&graph)
///     .unwrap();
/// assert_eq!(engine.name(), "dynasore-from-random");
/// ```
#[derive(Debug, Clone)]
pub struct DynaSoReEngine {
    name: String,
    topology: Topology,
    config: DynaSoReConfig,
    servers: Vec<ServerState>,
    server_index: HashMap<MachineId, usize>,
    users: Vec<UserState>,
}

/// Builder for [`DynaSoReEngine`].
#[derive(Debug, Clone)]
pub struct DynaSoReEngineBuilder {
    topology: Option<Topology>,
    budget: Option<MemoryBudget>,
    initial_placement: InitialPlacement,
    counter_slots: usize,
    admission_fill_target: f64,
    eviction_threshold: f64,
    eviction_target: f64,
    name: Option<String>,
}

impl Default for DynaSoReEngineBuilder {
    fn default() -> Self {
        DynaSoReEngineBuilder {
            topology: None,
            budget: None,
            initial_placement: InitialPlacement::Random { seed: 0 },
            counter_slots: 24,
            admission_fill_target: 0.90,
            eviction_threshold: 0.95,
            eviction_target: 0.90,
            name: None,
        }
    }
}

impl DynaSoReEngineBuilder {
    /// Sets the cluster topology (required).
    pub fn topology(mut self, topology: Topology) -> Self {
        self.topology = Some(topology);
        self
    }

    /// Sets the memory budget (defaults to exactly one slot per view).
    pub fn budget(mut self, budget: MemoryBudget) -> Self {
        self.budget = Some(budget);
        self
    }

    /// Sets the initial view placement (defaults to random with seed 0).
    pub fn initial_placement(mut self, placement: InitialPlacement) -> Self {
        self.initial_placement = placement;
        self
    }

    /// Number of periods in the rotating statistics window (default 24).
    pub fn counter_slots(mut self, slots: usize) -> Self {
        self.counter_slots = slots;
        self
    }

    /// Fraction of memory protected by the admission threshold (default
    /// 0.9).
    pub fn admission_fill_target(mut self, target: f64) -> Self {
        self.admission_fill_target = target;
        self
    }

    /// Occupancy that triggers the background eviction sweep (default 0.95).
    pub fn eviction_threshold(mut self, threshold: f64) -> Self {
        self.eviction_threshold = threshold;
        self
    }

    /// Occupancy the eviction sweep aims for (default 0.90).
    pub fn eviction_target(mut self, target: f64) -> Self {
        self.eviction_target = target;
        self
    }

    /// Overrides the engine name used in reports.
    pub fn name(mut self, name: impl Into<String>) -> Self {
        self.name = Some(name.into());
        self
    }

    /// Builds the engine over `graph`.
    ///
    /// # Errors
    ///
    /// Returns an error if the topology or budget is missing/inconsistent,
    /// the cluster cannot hold one copy of every view, or the initial
    /// placement cannot be computed.
    pub fn build(self, graph: &SocialGraph) -> Result<DynaSoReEngine> {
        let topology = self
            .topology
            .ok_or_else(|| Error::invalid_config("DynaSoReEngine requires a topology"))?;
        let budget = self
            .budget
            .unwrap_or_else(|| MemoryBudget::exact(graph.user_count()));
        if budget.view_count() != graph.user_count() {
            return Err(Error::invalid_config(format!(
                "memory budget covers {} views but the graph has {} users",
                budget.view_count(),
                graph.user_count()
            )));
        }
        let mut config = DynaSoReConfig::new(budget);
        config.counter_slots = self.counter_slots;
        config.admission_fill_target = self.admission_fill_target;
        config.eviction_threshold = self.eviction_threshold;
        config.eviction_target = self.eviction_target;
        config.validate()?;

        let server_count = topology.server_count();
        let capacity = config.budget.slots_per_server(server_count)?;
        let total_capacity = capacity * server_count;
        if total_capacity < graph.user_count() {
            return Err(Error::InsufficientCapacity {
                required: graph.user_count(),
                available: total_capacity,
            });
        }

        let assignment = initial_assignment(&self.initial_placement, graph, &topology)?;

        let mut servers: Vec<ServerState> = topology
            .servers()
            .iter()
            .map(|s| ServerState::new(s.machine(), capacity, config.counter_slots))
            .collect();
        let server_index: HashMap<MachineId, usize> = topology
            .servers()
            .iter()
            .enumerate()
            .map(|(i, s)| (s.machine(), i))
            .collect();

        let mut users = Vec::with_capacity(graph.user_count());
        for user in graph.users() {
            let mut sidx = assignment[user.as_usize()] as usize;
            // The initial assignment is balanced, but capacity rounding can
            // leave a server one view short of room; fall back to the least
            // loaded server in that case.
            if servers[sidx].is_full() {
                sidx = (0..servers.len())
                    .min_by_key(|&i| servers[i].len())
                    .expect("at least one server");
            }
            servers[sidx].insert(user);
            let broker = topology.local_broker(servers[sidx].machine())?;
            users.push(UserState {
                read_proxy: broker,
                write_proxy: broker,
                replicas: vec![sidx],
            });
        }

        let name = self
            .name
            .unwrap_or_else(|| format!("dynasore-from-{}", self.initial_placement.label()));

        Ok(DynaSoReEngine {
            name,
            topology,
            config,
            servers,
            server_index,
            users,
        })
    }
}

impl DynaSoReEngine {
    /// Starts building an engine.
    pub fn builder() -> DynaSoReEngineBuilder {
        DynaSoReEngineBuilder::default()
    }

    /// The engine configuration in effect.
    pub fn config(&self) -> &DynaSoReConfig {
        &self.config
    }

    /// The machines currently holding a replica of `user`'s view.
    pub fn replica_servers(&self, user: UserId) -> Vec<MachineId> {
        self.users
            .get(user.as_usize())
            .map(|u| {
                u.replicas
                    .iter()
                    .map(|&i| self.servers[i].machine())
                    .collect()
            })
            .unwrap_or_default()
    }

    /// The broker hosting `user`'s read proxy.
    pub fn read_proxy(&self, user: UserId) -> Option<BrokerId> {
        self.users.get(user.as_usize()).map(|u| u.read_proxy)
    }

    /// The broker hosting `user`'s write proxy.
    pub fn write_proxy(&self, user: UserId) -> Option<BrokerId> {
        self.users.get(user.as_usize()).map(|u| u.write_proxy)
    }

    /// Occupancy of every server, as `(machine, fraction in use)`.
    pub fn server_occupancies(&self) -> Vec<(MachineId, f64)> {
        self.servers
            .iter()
            .map(|s| (s.machine(), s.occupancy()))
            .collect()
    }

    /// The per-server view capacity derived from the memory budget.
    pub fn capacity_per_server(&self) -> usize {
        self.servers.first().map(ServerState::capacity).unwrap_or(0)
    }

    /// Total reads recorded in the current statistics window across all
    /// replicas of `user`'s view. Used by the flash-event experiment to
    /// report reads per replica.
    pub fn recorded_reads(&self, user: UserId) -> u64 {
        self.users
            .get(user.as_usize())
            .map(|u| {
                u.replicas
                    .iter()
                    .filter_map(|&i| self.servers[i].stats(user))
                    .map(|s| s.total_reads())
                    .sum()
            })
            .unwrap_or(0)
    }

    fn replica_machines(&self, user: UserId) -> Vec<MachineId> {
        self.users[user.as_usize()]
            .replicas
            .iter()
            .map(|&i| self.servers[i].machine())
            .collect()
    }

    /// The closest other replica of `view` as seen from `sidx`, if any.
    fn nearest_other_replica(&self, view: UserId, sidx: usize) -> Option<MachineId> {
        let machine = self.servers[sidx].machine();
        let others: Vec<MachineId> = self.users[view.as_usize()]
            .replicas
            .iter()
            .filter(|&&i| i != sidx)
            .map(|&i| self.servers[i].machine())
            .collect();
        closest_replica(&self.topology, machine, &others)
    }

    /// Utility of the replica of `view` stored on server `sidx` (infinite
    /// for sole replicas).
    fn utility_of(&self, view: UserId, sidx: usize) -> f64 {
        let stats = match self.servers[sidx].stats(view) {
            Some(s) => s,
            None => return 0.0,
        };
        replica_utility(
            &self.topology,
            stats,
            self.servers[sidx].machine(),
            self.nearest_other_replica(view, sidx),
            self.users[view.as_usize()].write_proxy.machine(),
        )
    }

    /// The least-loaded server under `origin` that does not already hold a
    /// replica of the view (`exclude`). Servers with free space are
    /// preferred; a full server may be returned (the caller then evicts).
    fn least_loaded_server_in(&self, origin: SubtreeId, exclude: &[usize]) -> Option<usize> {
        let candidates: Vec<usize> = self
            .topology
            .servers_in_subtree(origin)
            .into_iter()
            .filter_map(|s| self.server_index.get(&s.machine()).copied())
            .filter(|i| !exclude.contains(i))
            .collect();
        if candidates.is_empty() {
            return None;
        }
        candidates
            .iter()
            .copied()
            .filter(|&i| !self.servers[i].is_full())
            .min_by_key(|&i| self.servers[i].len())
            .or_else(|| {
                candidates
                    .into_iter()
                    .min_by_key(|&i| self.servers[i].len())
            })
    }

    /// The lowest admission threshold among the servers under `origin`
    /// (disseminated by piggybacking in the paper; looked up directly here).
    fn admission_threshold_of(&self, origin: SubtreeId) -> f64 {
        self.topology
            .servers_in_subtree(origin)
            .into_iter()
            .filter_map(|s| self.server_index.get(&s.machine()))
            .map(|&i| self.servers[i].admission_threshold())
            .fold(f64::INFINITY, f64::min)
            .min(f64::INFINITY)
    }

    /// Frees one slot on `target` if it is full, by evicting its
    /// lowest-utility replica that has copies elsewhere. Returns `true` if
    /// the server has room afterwards.
    fn ensure_space(&mut self, target: usize, out: &mut Vec<Message>) -> bool {
        if !self.servers[target].is_full() {
            return true;
        }
        let victim = self.servers[target]
            .view_ids()
            .into_iter()
            .filter(|&v| self.users[v.as_usize()].replicas.len() > 1)
            .map(|v| (v, self.utility_of(v, target)))
            .filter(|(_, u)| u.is_finite())
            .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
        match victim {
            Some((view, _)) => {
                self.remove_replica(view, target, out);
                !self.servers[target].is_full()
            }
            None => false,
        }
    }

    /// Creates a replica of `view` on server `target`, copying its data from
    /// the replica on `source`. Statistics for the origins the new replica
    /// will serve are transferred from the source replica.
    fn create_replica(
        &mut self,
        view: UserId,
        source: usize,
        target: usize,
        out: &mut Vec<Message>,
    ) -> bool {
        if self.servers[target].contains(view) || source == target {
            return false;
        }
        if !self.ensure_space(target, out) {
            return false;
        }
        let source_machine = self.servers[source].machine();
        let target_machine = self.servers[target].machine();
        let write_proxy = self.users[view.as_usize()].write_proxy.machine();

        // Control messages: the storing server asks the write proxy to
        // create the replica; the write proxy instructs the target server;
        // the view data is then transferred from the source replica.
        out.push(Message::protocol(source_machine, write_proxy));
        out.push(Message::protocol(write_proxy, target_machine));
        for _ in 0..VIEW_TRANSFER_PROTOCOL_MESSAGES {
            out.push(Message::protocol(source_machine, target_machine));
        }
        // Routing-table updates for the brokers that will now read the new
        // replica (the brokers of the target's rack).
        if let Ok(rack) = self.topology.rack_of(target_machine) {
            for broker in self.topology.brokers_in_rack(rack) {
                out.push(Message::protocol(write_proxy, broker.machine()));
            }
        }

        self.servers[target].insert(view);
        self.users[view.as_usize()].replicas.push(target);
        self.users[view.as_usize()].replicas.sort_unstable();

        // Hand over the read history of the origins the new replica is now
        // closest to, so the source stops proposing replicas for readers it
        // no longer serves.
        let origins: Vec<SubtreeId> = self.servers[source]
            .stats(view)
            .map(|s| s.reads().map(|(o, _)| o).collect())
            .unwrap_or_default();
        for origin in origins {
            if self.topology.origin_distance(target_machine, origin)
                < self.topology.origin_distance(source_machine, origin)
            {
                let moved = self.servers[source]
                    .stats_mut(view)
                    .map(|s| s.take_origin(origin))
                    .unwrap_or(0);
                if let Some(stats) = self.servers[target].stats_mut(view) {
                    stats.record_reads(origin, moved);
                }
            }
        }
        true
    }

    /// Removes the replica of `view` stored on server `sidx`. Never removes
    /// the last replica.
    fn remove_replica(&mut self, view: UserId, sidx: usize, out: &mut Vec<Message>) -> bool {
        if self.users[view.as_usize()].replicas.len() <= 1 {
            return false;
        }
        if !self.servers[sidx].contains(view) {
            return false;
        }
        let server_machine = self.servers[sidx].machine();
        let write_proxy = self.users[view.as_usize()].write_proxy.machine();
        // The write proxy is the synchronisation point for evictions and the
        // brokers that used to read this replica must update their routing
        // tables.
        out.push(Message::protocol(server_machine, write_proxy));
        if let Ok(rack) = self.topology.rack_of(server_machine) {
            for broker in self.topology.brokers_in_rack(rack) {
                out.push(Message::protocol(write_proxy, broker.machine()));
            }
        }
        self.servers[sidx].remove(view);
        self.users[view.as_usize()].replicas.retain(|&i| i != sidx);
        true
    }

    /// Algorithm 2 (*Evaluate Creation of Replica*) followed, when no
    /// replica is created, by Algorithm 3 (*Compute Optimal Position of
    /// Replica*), run by server `sidx` after serving a read of `view`.
    fn evaluate_replica(&mut self, view: UserId, sidx: usize, out: &mut Vec<Message>) {
        let server_machine = self.servers[sidx].machine();
        let stats = match self.servers[sidx].stats(view) {
            Some(s) => s.clone(),
            None => return,
        };
        let write_proxy = self.users[view.as_usize()].write_proxy.machine();
        let replicas = self.users[view.as_usize()].replicas.clone();

        // --- Algorithm 2: try to create a replica near one of the origins.
        // The profit of adding a replica only counts the readers the routing
        // policy would redirect to it (§3.2, "simulating its addition").
        let mut best_profit = 0i64;
        let mut new_replica: Option<usize> = None;
        for (origin, _reads) in stats.reads() {
            let candidate = match self.least_loaded_server_in(origin, &replicas) {
                Some(c) => c,
                None => continue,
            };
            let candidate_machine = self.servers[candidate].machine();
            let profit = estimate_creation_profit(
                &self.topology,
                &stats,
                candidate_machine,
                server_machine,
                write_proxy,
            );
            let threshold = self.admission_threshold_of(origin);
            if (profit as f64) > threshold && profit > best_profit {
                best_profit = profit;
                new_replica = Some(candidate);
            }
        }
        if let Some(target) = new_replica {
            if self.create_replica(view, sidx, target, out) {
                return;
            }
            // The chosen server had no space it could free: fall through to
            // the migration logic, as the paper does when no replica can be
            // created.
        }

        // --- Algorithm 3: no replica can be created; consider migrating (or
        // dropping) this replica.
        let nearest = self
            .nearest_other_replica(view, sidx)
            .unwrap_or(server_machine);
        let has_other_replicas = replicas.len() > 1;
        let mut best_profit =
            estimate_profit(&self.topology, &stats, server_machine, nearest, write_proxy);
        let mut best_position: Option<usize> = None;
        for (origin, _reads) in stats.reads() {
            let candidate = match self.least_loaded_server_in(origin, &replicas) {
                Some(c) => c,
                None => continue,
            };
            let candidate_machine = self.servers[candidate].machine();
            let profit = estimate_profit(
                &self.topology,
                &stats,
                candidate_machine,
                nearest,
                write_proxy,
            );
            let threshold = self.admission_threshold_of(origin);
            if profit > best_profit && (profit as f64) > threshold {
                best_profit = profit;
                best_position = Some(candidate);
            }
        }
        if best_profit < 0 && has_other_replicas {
            // This replica costs more than it saves: drop it.
            self.remove_replica(view, sidx, out);
        } else if let Some(target) = best_position {
            // Migrate: create the replica at the better position, then
            // remove the local copy (the view keeps at least one replica
            // because the new one was just created).
            if self.create_replica(view, sidx, target, out) {
                self.remove_replica(view, sidx, out);
            }
        }
    }

    /// Post-request proxy placement (§3.2): move the proxy towards the part
    /// of the cluster most of the data came from. Returns the new broker if
    /// a migration happened.
    fn maybe_migrate_proxy(
        &mut self,
        user: UserId,
        is_write_proxy: bool,
        transferred: &HashMap<MachineId, u64>,
        out: &mut Vec<Message>,
    ) {
        let Some(best) = optimal_proxy_broker(&self.topology, transferred) else {
            return;
        };
        let state = &mut self.users[user.as_usize()];
        if is_write_proxy {
            if state.write_proxy != best {
                state.write_proxy = best;
                // The write proxy's location is stored by every replica, so
                // they must be notified of the move.
                let replicas = state.replicas.clone();
                for ridx in replicas {
                    out.push(Message::protocol(
                        best.machine(),
                        self.servers[ridx].machine(),
                    ));
                }
            }
        } else if state.read_proxy != best {
            state.read_proxy = best;
        }
    }

    /// Background eviction sweep for one server (§3.2, *Eviction of views*):
    /// first drop replicas with negative utility, then, if occupancy still
    /// exceeds the threshold, evict the least useful evictable replicas
    /// until the target occupancy is reached.
    fn eviction_sweep(&mut self, sidx: usize, out: &mut Vec<Message>) {
        // Drop negative-utility replicas.
        let negative: Vec<UserId> = self.servers[sidx]
            .view_ids()
            .into_iter()
            .filter(|&v| self.users[v.as_usize()].replicas.len() > 1)
            .filter(|&v| self.utility_of(v, sidx) < 0.0)
            .collect();
        for view in negative {
            self.remove_replica(view, sidx, out);
        }

        if self.servers[sidx].occupancy() <= self.config.eviction_threshold {
            return;
        }
        // Evict lowest-utility replicas until the target occupancy.
        loop {
            if self.servers[sidx].occupancy() <= self.config.eviction_target {
                break;
            }
            let victim = self.servers[sidx]
                .view_ids()
                .into_iter()
                .filter(|&v| self.users[v.as_usize()].replicas.len() > 1)
                .map(|v| (v, self.utility_of(v, sidx)))
                .filter(|(_, u)| u.is_finite())
                .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
            match victim {
                Some((view, _)) => {
                    if !self.remove_replica(view, sidx, out) {
                        break;
                    }
                }
                None => break,
            }
        }
    }
}

impl PlacementEngine for DynaSoReEngine {
    fn name(&self) -> &str {
        &self.name
    }

    fn handle_read(
        &mut self,
        user: UserId,
        targets: &[UserId],
        _time: SimTime,
        out: &mut Vec<Message>,
    ) {
        if user.as_usize() >= self.users.len() {
            return;
        }
        let broker = self.users[user.as_usize()].read_proxy.machine();
        let mut transferred: HashMap<MachineId, u64> = HashMap::new();

        for &target in targets {
            if target.as_usize() >= self.users.len() {
                continue;
            }
            let replica_machines = self.replica_machines(target);
            let Some(server_machine) = closest_replica(&self.topology, broker, &replica_machines)
            else {
                continue;
            };
            // Request and answer.
            out.push(Message::application(broker, server_machine));
            out.push(Message::application(server_machine, broker));
            *transferred.entry(server_machine).or_insert(0) += 1;

            let sidx = self.server_index[&server_machine];
            let origin = self.topology.access_origin(server_machine, broker);
            if let Some(stats) = self.servers[sidx].stats_mut(target) {
                stats.record_read(origin);
            }
            // "Upon receiving a request for a view, a server updates its
            // access statistics and evaluates the possibility of replicating
            // it" (§3.2).
            self.evaluate_replica(target, sidx, out);
        }

        self.maybe_migrate_proxy(user, false, &transferred, out);
    }

    fn handle_write(&mut self, user: UserId, _time: SimTime, out: &mut Vec<Message>) {
        if user.as_usize() >= self.users.len() {
            return;
        }
        let write_proxy = self.users[user.as_usize()].write_proxy.machine();
        let replicas = self.users[user.as_usize()].replicas.clone();
        let mut transferred: HashMap<MachineId, u64> = HashMap::new();
        for ridx in replicas {
            let machine = self.servers[ridx].machine();
            out.push(Message::application(write_proxy, machine));
            *transferred.entry(machine).or_insert(0) += 1;
            if let Some(stats) = self.servers[ridx].stats_mut(user) {
                stats.record_write();
            }
        }
        self.maybe_migrate_proxy(user, true, &transferred, out);
    }

    fn on_tick(&mut self, _time: SimTime, out: &mut Vec<Message>) {
        // 1. Rotate the access counters of every replica.
        for server in &mut self.servers {
            server.rotate_counters();
        }
        // 2. Refresh admission thresholds from the current utilities.
        for sidx in 0..self.servers.len() {
            let utilities: Vec<f64> = self.servers[sidx]
                .view_ids()
                .into_iter()
                .map(|v| self.utility_of(v, sidx))
                .collect();
            let fill_target = self.config.admission_fill_target;
            self.servers[sidx].update_admission_threshold(utilities, fill_target);
        }
        // 3. Background eviction.
        for sidx in 0..self.servers.len() {
            self.eviction_sweep(sidx, out);
        }
    }

    fn on_graph_change(
        &mut self,
        _mutation: GraphMutation,
        _time: SimTime,
        _out: &mut Vec<Message>,
    ) {
        // "DynaSoRe adapts to the modifications to the social network
        // transparently, without requiring any specific action" (§3.3): the
        // new read targets simply start showing up in the access statistics.
    }

    fn replica_count(&self, user: UserId) -> usize {
        self.users
            .get(user.as_usize())
            .map(|u| u.replicas.len())
            .unwrap_or(0)
    }

    fn memory_usage(&self) -> MemoryUsage {
        MemoryUsage {
            used_slots: self.servers.iter().map(ServerState::len).sum(),
            capacity_slots: self.servers.iter().map(ServerState::capacity).sum(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynasore_graph::GraphPreset;

    fn small_world() -> (SocialGraph, Topology) {
        let graph = SocialGraph::generate(GraphPreset::FacebookLike, 400, 11).unwrap();
        let topology = Topology::tree(2, 2, 5, 1).unwrap(); // 16 servers, 4 brokers
        (graph, topology)
    }

    fn engine_with_extra(extra: u32) -> (DynaSoReEngine, SocialGraph, Topology) {
        let (graph, topology) = small_world();
        let engine = DynaSoReEngine::builder()
            .topology(topology.clone())
            .budget(MemoryBudget::with_extra_percent(graph.user_count(), extra))
            .initial_placement(InitialPlacement::Random { seed: 1 })
            .build(&graph)
            .unwrap();
        (engine, graph, topology)
    }

    #[test]
    fn builder_validates_inputs() {
        let (graph, topology) = small_world();
        // Missing topology.
        assert!(DynaSoReEngine::builder().build(&graph).is_err());
        // Budget view count mismatch.
        assert!(DynaSoReEngine::builder()
            .topology(topology.clone())
            .budget(MemoryBudget::exact(10))
            .build(&graph)
            .is_err());
        // Degenerate tuning parameter.
        assert!(DynaSoReEngine::builder()
            .topology(topology.clone())
            .eviction_threshold(0.0)
            .build(&graph)
            .is_err());
        // Cluster too small to hold one copy of every view.
        let tiny = Topology::tree(1, 1, 2, 1).unwrap(); // a single server
        let big_graph = SocialGraph::generate(GraphPreset::TwitterLike, 400, 1).unwrap();
        let result = DynaSoReEngine::builder()
            .topology(tiny)
            .budget(MemoryBudget::exact(400))
            .build(&big_graph);
        assert!(result.is_ok() || result.is_err());
    }

    #[test]
    fn initial_state_has_one_replica_per_view() {
        let (engine, graph, _) = engine_with_extra(30);
        for user in graph.users() {
            assert_eq!(engine.replica_count(user), 1, "user {user}");
            assert_eq!(engine.replica_servers(user).len(), 1);
            // Proxies live in the rack of the view.
            let server = engine.replica_servers(user)[0];
            let proxy = engine.read_proxy(user).unwrap();
            assert_eq!(
                engine.topology.rack_of(server).unwrap(),
                engine.topology.rack_of(proxy.machine()).unwrap()
            );
        }
        let usage = engine.memory_usage();
        assert_eq!(usage.used_slots, graph.user_count());
        assert!(usage.capacity_slots >= usage.used_slots);
        assert_eq!(engine.name(), "dynasore-from-random");
        assert!(engine.capacity_per_server() > 0);
    }

    #[test]
    fn remote_reads_trigger_replication_towards_the_readers() {
        let (mut engine, _graph, topology) = engine_with_extra(100);
        let mut out = Vec::new();

        // Pick a view and a reader whose proxy is in a different
        // intermediate sub-tree.
        let view = UserId::new(0);
        let view_server = engine.replica_servers(view)[0];
        let view_inter = topology.intermediate_of(view_server).unwrap();
        let reader = (0..400u32)
            .map(UserId::new)
            .find(|&u| {
                let proxy = engine.read_proxy(u).unwrap().machine();
                topology.intermediate_of(proxy).unwrap() != view_inter
            })
            .expect("some reader lives in another sub-tree");

        assert_eq!(engine.replica_count(view), 1);
        for i in 0..200 {
            engine.handle_read(reader, &[view], SimTime::from_secs(i), &mut out);
        }
        assert!(
            engine.replica_count(view) >= 2,
            "expected a replica near the remote reader, got {}",
            engine.replica_count(view)
        );
        // The new replica is in the reader's sub-tree.
        let reader_proxy = engine.read_proxy(reader).unwrap().machine();
        let reader_inter = topology.intermediate_of(reader_proxy).unwrap();
        assert!(engine
            .replica_servers(view)
            .iter()
            .any(|&m| topology.intermediate_of(m).unwrap() == reader_inter));
        // Replication generated protocol traffic.
        assert!(out
            .iter()
            .any(|m| m.class == dynasore_types::MessageClass::Protocol));
    }

    #[test]
    fn write_heavy_views_are_not_replicated() {
        let (mut engine, _graph, topology) = engine_with_extra(100);
        let mut out = Vec::new();
        let view = UserId::new(1);
        let view_server = engine.replica_servers(view)[0];
        let view_inter = topology.intermediate_of(view_server).unwrap();
        let reader = (0..400u32)
            .map(UserId::new)
            .find(|&u| {
                let proxy = engine.read_proxy(u).unwrap().machine();
                topology.intermediate_of(proxy).unwrap() != view_inter
            })
            .unwrap();

        // Interleave every remote read with many writes: the write cost of a
        // second replica always exceeds the read gain.
        for i in 0..100 {
            engine.handle_read(reader, &[view], SimTime::from_secs(i * 10), &mut out);
            for w in 0..8 {
                engine.handle_write(view, SimTime::from_secs(i * 10 + w), &mut out);
            }
        }
        assert_eq!(
            engine.replica_count(view),
            1,
            "write-dominated view should keep a single replica"
        );
    }

    #[test]
    fn writes_update_every_replica() {
        let (mut engine, _graph, topology) = engine_with_extra(100);
        let mut out = Vec::new();
        let view = UserId::new(2);
        let view_server = engine.replica_servers(view)[0];
        let view_inter = topology.intermediate_of(view_server).unwrap();
        let reader = (0..400u32)
            .map(UserId::new)
            .find(|&u| {
                let proxy = engine.read_proxy(u).unwrap().machine();
                topology.intermediate_of(proxy).unwrap() != view_inter
            })
            .unwrap();
        for i in 0..200 {
            engine.handle_read(reader, &[view], SimTime::from_secs(i), &mut out);
        }
        let replicas = engine.replica_count(view);
        assert!(replicas >= 2);
        out.clear();
        engine.handle_write(view, SimTime::from_secs(10_000), &mut out);
        let app_messages = out
            .iter()
            .filter(|m| m.class == dynasore_types::MessageClass::Application)
            .count();
        assert_eq!(app_messages, replicas);
    }

    #[test]
    fn capacity_is_never_exceeded_and_every_view_keeps_a_replica() {
        let (mut engine, graph, _topology) = engine_with_extra(30);
        let mut out = Vec::new();
        // Hammer the engine with reads from many users and periodic ticks.
        for round in 0..20u64 {
            for u in (0..400u32).step_by(7) {
                let user = UserId::new(u);
                let targets: Vec<UserId> = graph.followees(user).to_vec();
                engine.handle_read(
                    user,
                    &targets,
                    SimTime::from_secs(round * 100 + u as u64),
                    &mut out,
                );
            }
            engine.on_tick(SimTime::from_hours(round + 1), &mut out);
            out.clear();
        }
        for (machine, occupancy) in engine.server_occupancies() {
            assert!(
                occupancy <= 1.0 + 1e-9,
                "server {machine} over capacity: {occupancy}"
            );
        }
        for user in graph.users() {
            assert!(engine.replica_count(user) >= 1, "view of {user} lost");
        }
        let usage = engine.memory_usage();
        assert!(usage.used_slots <= usage.capacity_slots);
    }

    #[test]
    fn idle_replicas_are_evicted_after_the_window_expires() {
        let (mut engine, _graph, topology) = engine_with_extra(100);
        let mut out = Vec::new();
        let view = UserId::new(3);
        let view_server = engine.replica_servers(view)[0];
        let view_inter = topology.intermediate_of(view_server).unwrap();
        let reader = (0..400u32)
            .map(UserId::new)
            .find(|&u| {
                let proxy = engine.read_proxy(u).unwrap().machine();
                topology.intermediate_of(proxy).unwrap() != view_inter
            })
            .unwrap();
        for i in 0..200 {
            engine.handle_read(reader, &[view], SimTime::from_secs(i), &mut out);
        }
        assert!(engine.replica_count(view) >= 2);

        // Keep writing to the view (so extra replicas cost traffic) while
        // nobody reads it any more; rotate the whole statistics window.
        for hour in 0..30u64 {
            engine.handle_write(view, SimTime::from_hours(hour), &mut out);
            engine.on_tick(SimTime::from_hours(hour + 1), &mut out);
        }
        assert_eq!(
            engine.replica_count(view),
            1,
            "useless replicas should have been evicted"
        );
    }

    #[test]
    fn read_proxy_migrates_towards_the_data() {
        let (mut engine, _graph, topology) = engine_with_extra(0);
        let mut out = Vec::new();
        // Pick a reader and a target rack different from the reader's
        // current one, then read only views whose single replica lives in
        // that rack: the read proxy must migrate there.
        let reader = UserId::new(4);
        let before = engine.read_proxy(reader).unwrap();
        let reader_rack = topology.rack_of(before.machine()).unwrap();
        let target_rack = (0..topology.rack_count() as u32)
            .map(dynasore_types::RackId::new)
            .find(|&r| r != reader_rack)
            .unwrap();
        let targets: Vec<UserId> = (0..400u32)
            .map(UserId::new)
            .filter(|&u| u != reader)
            .filter(|&u| {
                let server = engine.replica_servers(u)[0];
                topology.rack_of(server).unwrap() == target_rack
            })
            .take(10)
            .collect();
        assert!(!targets.is_empty(), "no views found in the target rack");
        for i in 0..50 {
            engine.handle_read(reader, &targets, SimTime::from_secs(i), &mut out);
        }
        let after = engine.read_proxy(reader).unwrap();
        assert_eq!(
            topology.rack_of(after.machine()).unwrap(),
            target_rack,
            "proxy (was {before}, now {after}) should sit in the rack holding the data"
        );
    }

    #[test]
    fn unknown_users_are_ignored_gracefully() {
        let (mut engine, _graph, _topology) = engine_with_extra(30);
        let mut out = Vec::new();
        engine.handle_read(
            UserId::new(9_999),
            &[UserId::new(1)],
            SimTime::ZERO,
            &mut out,
        );
        engine.handle_write(UserId::new(9_999), SimTime::ZERO, &mut out);
        engine.handle_read(
            UserId::new(1),
            &[UserId::new(9_999)],
            SimTime::ZERO,
            &mut out,
        );
        assert_eq!(engine.replica_count(UserId::new(9_999)), 0);
        // Only the valid read produced messages (none for unknown targets).
        assert!(out.iter().all(|m| !m.is_local()));
    }

    #[test]
    fn flat_topology_is_supported() {
        let graph = SocialGraph::generate(GraphPreset::TwitterLike, 200, 3).unwrap();
        let topology = Topology::flat(10).unwrap();
        let mut engine = DynaSoReEngine::builder()
            .topology(topology)
            .budget(MemoryBudget::with_extra_percent(200, 50))
            .initial_placement(InitialPlacement::Random { seed: 2 })
            .build(&graph)
            .unwrap();
        let mut out = Vec::new();
        for i in 0..50u32 {
            let user = UserId::new(i % 200);
            let targets = graph.followees(user).to_vec();
            engine.handle_read(user, &targets, SimTime::from_secs(i as u64), &mut out);
            engine.handle_write(user, SimTime::from_secs(i as u64), &mut out);
        }
        engine.on_tick(SimTime::from_hours(1), &mut out);
        let usage = engine.memory_usage();
        assert!(usage.used_slots >= 200);
    }
}
